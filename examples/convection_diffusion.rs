//! Convection-diffusion: the nonsymmetric workload of the structured
//! inner-solver layer.
//!
//! Central differencing of `−u'' + c·u'` gives rows `(−1 − p/2, 2, −1 + p/2)`
//! with mesh Péclet number `p = c·h` — nonsymmetric for any `p ≠ 0`.  The 1-D
//! operator stays tridiagonal, so `factorize` still picks the O(N) Thomas
//! elimination (it never required symmetry, only nonzero pivots); the 2-D
//! operator is a nonsymmetric CSR matrix, where `factorize` switches from
//! Jacobi-CG to Jacobi-BiCGSTAB.  Both paths exercise `matvec_transposed`,
//! as does the Lanczos condition estimate on the squared operator AᵀA.
//!
//! Run with `cargo run --release --example convection_diffusion`.

use qls::prelude::*;

fn main() {
    // --- 1-D: tridiagonal, Thomas inner solver ------------------------------
    let n1 = 4096usize;
    let peclet = 0.8;
    let a1 = convection_diffusion_1d::<f64>(n1, peclet);
    println!(
        "1-D convection-diffusion: N = {n1}, mesh Peclet {peclet} \
         (rows: {:+.2}, 2.00, {:+.2})",
        -1.0 - peclet / 2.0,
        -1.0 + peclet / 2.0
    );

    let u_true: Vector<f64> = (0..n1).map(|i| ((i + 1) as f64 * 0.002).sin()).collect();
    let b1 = a1.matvec(&u_true);
    let opts = RefinementOptions {
        target_scaled_residual: 1e-13,
        max_iterations: 40,
        ..Default::default()
    };
    let refiner1 =
        ClassicalRefiner::<f64, f32, TridiagonalMatrix<f64>>::new(&a1, opts).expect("1-D refiner");
    let (u1, h1) = refiner1.solve(&b1).expect("1-D solve");
    println!(
        "  inner solver: {}, {} iterations, final scaled residual {:.3e}, \
         forward error {:.3e}\n",
        refiner1.inner_kind(),
        h1.iterations(),
        h1.final_residual(),
        forward_error(&u1, &u_true)
    );
    assert!(forward_error(&u1, &u_true) < 1e-9);

    // --- 2-D: nonsymmetric CSR, BiCGSTAB inner solver -----------------------
    let (nx, ny) = (48usize, 48usize);
    let n2 = nx * ny;
    let (px, py) = (0.5, 0.25);
    let a2 = convection_diffusion_2d::<f64>(nx, ny, px, py);
    println!(
        "2-D convection-diffusion: {nx}x{ny} grid (N = {n2}), mesh Peclet ({px}, {py}), \
         {} CSR nonzeros",
        a2.nnz()
    );

    let u2_true: Vector<f64> = (0..n2).map(|i| (i as f64 * 0.01).cos()).collect();
    let b2 = a2.matvec(&u2_true);
    let refiner2 =
        ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&a2, opts).expect("2-D refiner");
    let (u2, h2) = refiner2.solve(&b2).expect("2-D solve");
    println!(
        "  inner solver: {}, {} iterations, final scaled residual {:.3e}, \
         forward error {:.3e}",
        refiner2.inner_kind(),
        h2.iterations(),
        h2.final_residual(),
        forward_error(&u2, &u2_true)
    );
    assert!(forward_error(&u2, &u2_true) < 1e-9);

    // The Lanczos estimate runs on AᵀA through matvec + matvec_transposed —
    // exactly the pair of kernels the transposed inner solves rely on.
    let kappa_est = cond_2_estimate(&a2, 400, 1e-10);
    println!("  matrix-free condition estimate (Lanczos on AᵀA): {kappa_est:.2}");
}
