//! Fault injection + the recovery ladder, end to end.
//!
//! A seeded [`FaultPlan`] degrades the simulated device: Gaussian amplitude
//! noise on every run, a NaN-poisoned register on run 2, and finite-shot
//! readout.  The same plan is driven through the hybrid refiner twice —
//! once with recovery disabled (the run fails or stalls, reported in-band)
//! and once with the full [`RecoveryPolicy`] ladder (the run converges and
//! the [`RecoveryLog`] shows exactly which rungs absorbed which faults).
//!
//! Run with `cargo run --release --example noisy_refinement`.

use qls::prelude::*;

fn main() {
    let mut rng = experiment_rng(77);
    let kappa = 10.0;
    let a = random_matrix_with_cond(
        16,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(16, &mut rng);

    // The degradation: mild persistent amplitude noise, one scheduled
    // NaN-poisoning transient, finite-shot readout.
    let plan = FaultPlan::new(7)
        .with_amplitude_noise(2e-4)
        .with_transient(2, TransientKind::NanPoison);
    let options = |recovery: RecoveryPolicy| HybridRefinementOptions {
        target_epsilon: 1e-6,
        epsilon_l: 1e-2,
        max_iterations: 40,
        solver: QsvtSolverOptions {
            shots: Some(2_000_000),
            ..Default::default()
        },
        recovery,
    };

    println!("16x16 system, kappa = {kappa}, target eps = 1e-6, eps_l = 1e-2");
    println!("fault plan: sigma = 2e-4 amplitude noise, NaN poison on run 2,");
    println!("            2e6-shot readout\n");

    // Pass 1: recovery disabled.  The NaN-poisoned register is caught at
    // the readout boundary and the run fails in-band — no panic, no NaN in
    // the returned iterate.
    let mut plain = HybridRefiner::new(&a, options(RecoveryPolicy::default())).expect("setup");
    plain.attach_fault_injector(FaultInjector::shared(plan.clone()));
    let mut rng = experiment_rng(1);
    let (x, history) = plain.solve(&b, &mut rng).expect("in-band failure expected");
    println!(
        "recovery disabled: {:?} after {} steps (residual {:.3e})",
        history.status,
        history.steps.len(),
        history.final_residual()
    );
    assert!(
        !history.status.reached_target(),
        "the faulted run must not converge without recovery"
    );
    assert!(
        x.iter().all(|v| v.is_finite()),
        "NaN leaked into the iterate"
    );

    // Pass 2: the same plan, replayed from scratch on a fresh injector,
    // with the full ladder armed.
    let mut healed = HybridRefiner::new(&a, options(RecoveryPolicy::full())).expect("setup");
    healed.attach_fault_injector(FaultInjector::shared(plan));
    let mut rng = experiment_rng(1);
    let (x, history) = healed.solve(&b, &mut rng).expect("recovered solve");
    println!(
        "recovery enabled:  {:?} after {} steps (residual {:.3e})",
        history.status,
        history.steps.len(),
        history.final_residual()
    );
    println!("\nrecovery log:");
    for event in &history.recovery.events {
        println!(
            "  iteration {:>2}: {:?} -> {:?} (recovered: {})",
            event.iteration, event.issue, event.action, event.recovered
        );
    }
    assert!(
        history.status.reached_target(),
        "the ladder must absorb the plan: {:?}",
        history.status
    );
    assert!(
        !history.recovery.is_empty(),
        "the log must show the actions taken"
    );
    let residual = scaled_residual(&a, &x, &b);
    assert!(residual <= 1e-6, "final residual {residual}");
    println!("\nfinal scaled residual: {residual:.3e}");
}
