//! The multi-RHS Poisson workload: one matrix, many right-hand sides.
//!
//! The 1-D Poisson operator of Section III-C4 is fixed by the grid, so its
//! block-encoding, inversion polynomial, phase factors and compiled QSVT
//! circuit never change — only the forcing term does.  This example builds
//! the hybrid refiner **once** and solves `-u'' = f_k` for several forcing
//! functions through `HybridRefiner::solve_many`, which batches every round
//! of QSVT correction solves across the still-active systems (coarse-grained
//! thread fan-out via `qls_sim::QuantumExecutor::run_batch`).
//!
//! Run with `cargo run --example poisson1d_multirhs`.

use qls::prelude::*;
use std::f64::consts::PI;

fn main() {
    let n = 16usize; // N = 16 interior grid points (4 qubits)

    // Forcing terms f_k with the analytic solutions of -u'' = f,
    // u(0) = u(1) = 0.  Deliberately *not* eigenvectors of the discrete
    // operator, so each system genuinely needs refinement iterations.
    type Pair = (
        &'static str,
        Box<dyn Fn(f64) -> f64>,
        Box<dyn Fn(f64) -> f64>,
    );
    let cases: Vec<Pair> = vec![
        (
            "constant",
            Box::new(|_x| 1.0),
            Box::new(|x| 0.5 * x * (1.0 - x)),
        ),
        (
            "linear",
            Box::new(|x| x),
            Box::new(|x| x * (1.0 - x * x) / 6.0),
        ),
        (
            "sine",
            Box::new(|x: f64| PI * PI * (PI * x).sin()),
            Box::new(|x: f64| (PI * x).sin()),
        ),
        (
            "exponential",
            Box::new(|x: f64| x.exp()),
            Box::new(|x: f64| 1.0 - x.exp() + (std::f64::consts::E - 1.0) * x),
        ),
    ];

    let tridiag = poisson_1d::<f64>(n, true);
    let a = tridiag.to_dense();
    let kappa = poisson_1d_condition_number(n);
    println!(
        "multi-RHS 1-D Poisson: N = {n}, kappa = {kappa:.2}, {} right-hand sides\n",
        cases.len()
    );

    // Compile once: block-encoding, polynomial, phases and the QSVT circuit
    // are all built here and reused by every solve below.
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        },
    )
    .expect("solver setup");

    let bs: Vec<Vector<f64>> = cases
        .iter()
        .map(|(_, f, _)| poisson_rhs::<f64>(n, f))
        .collect();

    // Batched hybrid solve: all systems share the compiled circuit, each
    // refinement round batches the correction solves of the active systems.
    let mut rng = experiment_rng(7);
    let solutions = refiner.solve_many(&bs, &mut rng).expect("batched solve");

    println!("  forcing      | iters | final residual | error vs analytic (max-norm)");
    for (((name, _, exact), b), (u, history)) in cases.iter().zip(&bs).zip(&solutions) {
        assert_eq!(history.status, HybridStatus::Converged, "forcing {name}");
        let u_exact = sample_on_grid::<f64>(n, exact);
        let max_err = u
            .iter()
            .zip(u_exact.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        println!(
            "  {name:<12} |   {}   |   {:.3e}    |  {:.3e}",
            history.iterations(),
            history.final_residual(),
            max_err
        );
        // Errors vs the analytic ODE solution are dominated by the 2nd-order
        // discretisation (h² scale); the solve itself matches the O(N)
        // Thomas reference of the *discrete* system far below that.
        assert!(max_err < 5e-2, "forcing {name}: error {max_err:.3e}");
        let u_thomas = tridiag.solve_thomas(b);
        assert!(forward_error(u, &u_thomas) < 1e-8);
    }
    assert!(
        solutions
            .iter()
            .any(|(_, history)| history.iterations() >= 1),
        "at least one system should exercise the batched refinement loop"
    );

    let total_be_calls: usize = solutions
        .iter()
        .map(|(_, history)| history.total_block_encoding_calls())
        .sum();
    println!(
        "\none compiled QSVT circuit served {} refinement solves \
         ({total_be_calls} block-encoding calls) across {} systems",
        solutions
            .iter()
            .map(|(_, history)| history.steps.len())
            .sum::<usize>(),
        cases.len()
    );
}
