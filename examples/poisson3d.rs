//! Solve the 3-D Poisson equation at N = 13 824 unknowns — a size where the
//! old densify-LU inner solver would need a 1.5 GB dense matrix and an
//! O(N³) factorisation — entirely through the structured layer: the
//! seven-point Laplacian is a matrix-free `StencilNd` (7 stored scalars), and
//! the classical mixed-precision refinement (Algorithm 1) runs its
//! low-precision correction solves with matrix-free Jacobi-CG, selected
//! automatically by `FactorizableOperator::factorize`.
//!
//! Run with `cargo run --release --example poisson3d`.

use qls::prelude::*;

fn main() {
    // 24x24x24 interior grid of the unit cube.
    let (nx, ny, nz) = (24usize, 24usize, 24usize);
    let n = nx * ny * nz;
    let a = poisson_3d::<f64>(nx, ny, nz, false);
    let kappa = poisson_3d_condition_number(nx, ny, nz);
    println!(
        "3-D Poisson problem: {nx}x{ny}x{nz} grid (N = {n}), kappa = {kappa:.2}\n\
         operator storage: 7 stencil coefficients vs {} dense entries ({:.2} GB)\n",
        n * n,
        (n * n * 8) as f64 / 1e9
    );

    // Manufactured *discrete* solution: sample a smooth field on the grid and
    // build b = A u_true, so the refined solution can be checked exactly.
    let u_true = poisson_3d_rhs::<f64>(nx, ny, nz, |x, y, z| {
        (std::f64::consts::PI * x).sin() * y * (1.0 - y) * (0.5 + z)
    });
    let b = a.matvec(&u_true);

    // Classical mixed-precision refinement, f32 inner correction solves.
    let opts = RefinementOptions {
        target_scaled_residual: 1e-13,
        max_iterations: 40,
        ..Default::default()
    };
    let refiner =
        ClassicalRefiner::<f64, f32, StencilNd<f64>>::new(&a, opts).expect("refiner setup");
    println!(
        "inner solver selected by factorize: {} (threshold for densify-LU is N <= {})",
        refiner.inner_kind(),
        DENSIFY_FALLBACK_MAX
    );
    let (u, history) = refiner.solve(&b).expect("refinement solve");
    println!(
        "refinement: {} iterations, status {:?}, final scaled residual {:.3e}",
        history.iterations(),
        history.status,
        history.final_residual()
    );
    for step in &history.steps {
        println!(
            "  iter {:2}: omega = {:.3e}",
            step.iteration, step.scaled_residual
        );
    }

    let fwd = forward_error(&u, &u_true);
    println!("forward error vs manufactured solution: {fwd:.3e} (relative)");
    assert!(
        fwd < 1e-9,
        "refined solution must match the manufactured one"
    );

    // Matrix-free Lanczos condition estimate vs the analytic Kronecker-sum
    // value — O(N) per step, no densification.
    let kappa_est = cond_2_estimate(&a, 400, 1e-10);
    println!(
        "matrix-free condition estimate: {kappa_est:.2} (analytic {kappa:.2}, \
         relative error {:.2e})",
        (kappa_est - kappa).abs() / kappa
    );
}
