//! Sharded execution of a register near the one-allocation wall: build a
//! 22-qubit (4M-amplitude, 64 MiB) brickwork circuit, run it through the
//! sharded engine at 8 shards, and report the execution model — per-shard
//! memory, how many ops stayed shard-local, and how many exchange rounds
//! the high-qubit ops were batched into.
//!
//! Run with `cargo run --release --example large_register`.

use qls::prelude::*;
use std::time::Instant;

/// Brickwork layers: per-qubit rotations, a nearest-neighbour CX ladder,
/// and one long-range entangler per layer so some ops straddle the shard
/// boundary and force exchange rounds.
fn brickwork(n: usize, layers: usize) -> Circuit {
    let mut circ = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            circ.ry(q, 0.3 + 0.1 * (q + layer) as f64);
            circ.rz(q, 0.2 - 0.05 * q as f64);
        }
        for q in (layer % 2..n - 1).step_by(2) {
            circ.cx(q, q + 1);
        }
        circ.cx(layer % (n / 2), n - 1 - layer % 3);
    }
    circ
}

fn main() {
    let n = 22;
    let shards = 8;
    let circ = brickwork(n, 3);
    println!(
        "{}-qubit brickwork circuit: {} gates, depth {}",
        n,
        circ.gate_count(),
        circ.depth()
    );

    // The compile-time plan (deterministic static cost model): where does
    // each fused op land once the register is split into 8 chunks?
    let stats = sharding_stats(&circ, shards);
    println!("\nsharded execution plan ({} shards):", stats.num_shards);
    println!(
        "  shard boundary:      qubit {} (qubits below run shard-local)",
        stats.shard_boundary
    );
    println!(
        "  per-shard memory:    {} amplitudes = {:.1} MiB",
        stats.per_shard_amplitudes,
        stats.per_shard_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  fused ops:           {} shard-local, {} exchanged, {} flat",
        stats.local_ops, stats.exchanged_ops, stats.flat_ops
    );
    println!(
        "  exchange rounds:     {} (batched; one round serves a run of high-qubit ops)",
        stats.exchange_rounds
    );

    // Run it: the sharded engine fuses with the low-support preference,
    // then executes chunk-parallel with pairwise exchanges.
    let t0 = Instant::now();
    let exec = QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Sharded { shards });
    let compile_time = t0.elapsed();
    let t1 = Instant::now();
    let state = exec.run_zero();
    let run_time = t1.elapsed();
    println!(
        "\nsharded run: compile {:.2?}, execute {:.2?}, |psi| = {:.12}",
        compile_time,
        run_time,
        state.norm()
    );

    // Bit-identity check against the engine's own flat oracle (the same
    // fused op list applied to one contiguous 64 MiB register).
    let t2 = Instant::now();
    let mut oracle = StateVector::zero_state(n);
    exec.compiled().apply(&mut oracle);
    let flat_time = t2.elapsed();
    assert_eq!(
        state.amplitudes(),
        oracle.amplitudes(),
        "sharded execution must be bit-identical to the flat oracle"
    );
    println!(
        "flat oracle: execute {:.2?} -- bit-identical to the sharded run",
        flat_time
    );
    println!(
        "\nP(qubit {} = 1) = {:.6}",
        n - 1,
        state.probability_of_one(n - 1)
    );
}
