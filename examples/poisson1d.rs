//! Solve the 1-D Poisson equation of Section III-C4 end to end:
//! discretisation (Eq. (7)), hybrid QSVT + refinement solve, comparison with
//! the O(N) Thomas solver and with the analytic solution of the ODE.
//!
//! Run with `cargo run --example poisson1d`.

use qls::prelude::*;
use std::f64::consts::PI;

fn main() {
    // -u''(x) = pi^2 sin(pi x), u(0) = u(1) = 0  =>  u(x) = sin(pi x).
    let n = 16usize; // N = 16 interior grid points (n = 4 qubits)
    let forcing = |x: f64| PI * PI * (PI * x).sin();
    let exact = |x: f64| (PI * x).sin();

    let tridiag = poisson_1d::<f64>(n, true);
    let a = tridiag.to_dense();
    let b = poisson_rhs::<f64>(n, forcing);
    let kappa = poisson_1d_condition_number(n);
    println!("1-D Poisson problem: N = {n}, condition number kappa = {kappa:.2}\n");

    // Classical O(N) reference (Thomas algorithm).
    let u_thomas = tridiag.solve_thomas(&b);

    // Hybrid QSVT + iterative refinement (Algorithm 2).
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        },
    )
    .expect("solver setup");
    let mut rng = experiment_rng(7);
    let (u_hybrid, history) = refiner.solve(&b, &mut rng).expect("hybrid solve");

    println!(
        "hybrid solver: {} refinement iterations, final scaled residual {:.3e}",
        history.iterations(),
        history.final_residual()
    );
    println!(
        "agreement with the Thomas solver: {:.3e} (relative)",
        forward_error(&u_hybrid, &u_thomas)
    );

    // Compare with the analytic solution on the grid.
    let u_exact = sample_on_grid::<f64>(n, exact);
    println!(
        "discretisation error vs analytic solution: {:.3e} (max norm)",
        u_hybrid
            .iter()
            .zip(u_exact.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    );

    // Show the grid solution.
    println!("\n    x     |  u_hybrid  |  u_exact");
    let h = 1.0 / (n as f64 + 1.0);
    for j in 0..n {
        let x = (j + 1) as f64 * h;
        println!("  {:.4}  |  {:+.5}  |  {:+.5}", x, u_hybrid[j], u_exact[j]);
    }

    // The Table-II breakdown for this use case.
    println!("\nTable-II style cost breakdown for this problem:");
    for row in poisson_cost_breakdown(PoissonCostParameters {
        n_qubits: 4,
        kappa,
        epsilon_l: 1e-3,
        epsilon: 1e-10,
    }) {
        println!(
            "  {:<12} {:<14} classical {:>10.3e} flops, quantum {:>10.3e} T gates",
            row.phase, row.task, row.classical_flops, row.quantum_t_gates
        );
    }
}
