//! Solve the 2-D Poisson equation end to end **without ever materialising
//! the matrix on the hot path**: the five-point Laplacian lives in a
//! matrix-free `StencilOperator`, every high-precision residual of the hybrid
//! refinement loop (Algorithm 2) costs O(N) instead of O(N²), and the QSVT
//! low-precision solves run on the quantum side exactly as in the 1-D
//! example.  A CSR twin of the same operator demonstrates the equivalence
//! contract: the structured matvecs are bit-identical to the dense kernel,
//! so all three operator representations produce the *same* convergence
//! history, float for float.
//!
//! Run with `cargo run --example poisson2d`.

use qls::prelude::*;

fn main() {
    // Manufactured solution u(x, y) = x(1-x)·y(1-y) (zero on the boundary):
    // -Δu = 2·y(1-y) + 2·x(1-x).  The forcing excites many eigenmodes of the
    // discrete Laplacian, so the low-precision QSVT solve genuinely needs
    // refinement iterations — and because u is quadratic in each variable,
    // the five-point stencil is *exact* for it, so the refined discrete
    // solution must match the analytic one to solver accuracy.
    let (nx, ny) = (4usize, 4usize); // 4x4 interior grid, N = 16 unknowns
    let n = nx * ny;
    let forcing = |x: f64, y: f64| 2.0 * y * (1.0 - y) + 2.0 * x * (1.0 - x);
    let exact = |x: f64, y: f64| x * (1.0 - x) * y * (1.0 - y);

    let stencil = poisson_2d::<f64>(nx, ny, true);
    let csr = stencil.to_sparse();
    let b = poisson_2d_rhs::<f64>(nx, ny, forcing);
    let kappa = poisson_2d_condition_number(nx, ny);
    println!(
        "2-D Poisson problem: {nx}x{ny} grid (N = {n}), kappa = {kappa:.2}, \
         operator storage: 5 stencil coefficients vs {} CSR nonzeros vs {} dense entries\n",
        csr.nnz(),
        n * n
    );

    // Hybrid QSVT + iterative refinement over the matrix-free operator.
    let options = HybridRefinementOptions {
        target_epsilon: 1e-10,
        epsilon_l: 1e-2,
        ..Default::default()
    };
    let refiner = HybridRefiner::new(&stencil, options).expect("stencil solver setup");
    let mut rng = experiment_rng(9);
    let (u_stencil, history) = refiner.solve(&b, &mut rng).expect("hybrid solve");
    println!(
        "matrix-free hybrid solve: {} refinement iterations, final scaled residual {:.3e}",
        history.iterations(),
        history.final_residual()
    );

    // The CSR twin reproduces the history bit for bit (same floats in, same
    // floats out — the operator layer's equivalence contract).
    let csr_refiner = HybridRefiner::new(&csr, options).expect("CSR solver setup");
    let mut rng = experiment_rng(9);
    let (u_csr, csr_history) = csr_refiner.solve(&b, &mut rng).expect("CSR solve");
    let identical = u_csr.as_slice() == u_stencil.as_slice()
        && csr_history.steps.len() == history.steps.len()
        && csr_history
            .steps
            .iter()
            .zip(&history.steps)
            .all(|(a, b)| a.scaled_residual == b.scaled_residual);
    println!("CSR operator reproduces the stencil history bit-for-bit: {identical}");
    assert!(identical, "operator representations must agree exactly");

    // Classical dense reference for the forward error.
    let u_lu = classical_lu_solve(&stencil.to_dense(), &b).expect("LU reference");
    println!(
        "agreement with the dense LU reference: {:.3e} (relative)",
        forward_error(&u_stencil, &u_lu)
    );

    // Compare with the analytic solution on the grid.
    let u_exact = poisson_2d_rhs::<f64>(nx, ny, exact);
    let disc_err = u_stencil
        .iter()
        .zip(u_exact.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!(
        "error vs analytic solution: {disc_err:.3e} (max norm; the stencil is exact \
         for this quadratic u, so only the solver tolerance remains)\n"
    );

    // Show the interior grid (rows = x lines).
    println!("u_hybrid on the interior grid:");
    for ix in 0..nx {
        let row: Vec<String> = (0..ny)
            .map(|iy| format!("{:+.5}", u_stencil[ix * ny + iy]))
            .collect();
        println!("  {}", row.join("  "));
    }

    // The matrix-free condition estimate (Lanczos on AᵀA, O(nnz) per step)
    // vs the analytic value.
    let kappa_est = cond_2_estimate(&stencil, 20_000, 1e-12);
    println!(
        "\nmatrix-free condition estimate: {kappa_est:.2} (analytic {kappa:.2}); \
         epsilon_l * kappa = {:.3} < 1, so Theorem III.1 applies",
        options.epsilon_l * kappa
    );
}
