//! Graph-Laplacian workload at N = 50 000 — two orders of magnitude beyond
//! what the densify-LU inner solver could touch (a dense copy alone would be
//! 20 GB).  The shifted Laplacian `L + shift·I` of a random connected graph
//! is SPD, so `FactorizableOperator::factorize` selects the matrix-free
//! Jacobi-CG inner solver and the whole mixed-precision refinement runs at
//! O(nnz) per step.
//!
//! Run with `cargo run --release --example graph_laplacian`.

use qls::prelude::*;
use std::time::Instant;

fn main() {
    let n = 50_000usize;
    let extra_edges = 150_000usize;
    let shift = 0.5;

    let mut rng = experiment_rng(71);
    let edges = random_connected_graph(n, extra_edges, &mut rng);
    let a: SparseMatrix<f64> = shifted_graph_laplacian(n, &edges, shift);
    println!(
        "shifted graph Laplacian: N = {n}, {} edges, {} CSR nonzeros, shift {shift}\n\
         (a dense copy would need {:.1} GB)\n",
        edges.len(),
        a.nnz(),
        (n * n * 8) as f64 / 1e9
    );

    // Known discrete solution -> right-hand side.
    let x_true: Vector<f64> = (0..n).map(|i| ((i as f64) * 1e-3).sin()).collect();
    let b = a.matvec(&x_true);

    let opts = RefinementOptions {
        target_scaled_residual: 1e-12,
        max_iterations: 40,
        ..Default::default()
    };
    let t0 = Instant::now();
    let refiner =
        ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&a, opts).expect("refiner setup");
    let setup = t0.elapsed();
    println!(
        "inner solver selected by factorize: {} (setup {:.1} ms — no densification, \
         no O(N³) factorisation)",
        refiner.inner_kind(),
        setup.as_secs_f64() * 1e3
    );

    let t1 = Instant::now();
    let (x, history) = refiner.solve(&b).expect("refinement solve");
    let solve = t1.elapsed();
    println!(
        "refinement: {} iterations in {:.1} ms, status {:?}, final scaled residual {:.3e}",
        history.iterations(),
        solve.as_secs_f64() * 1e3,
        history.status,
        history.final_residual()
    );

    let fwd = forward_error(&x, &x_true);
    println!("forward error vs known solution: {fwd:.3e} (relative)");
    assert!(fwd < 1e-8, "refined solution must match the known solution");
}
