//! Warm-cache solver construction: build the same κ = 8 circuit-mode solver
//! twice and watch the second build skip phase-factor generation and gate
//! fusion entirely — the expensive artifacts come back from the on-disk
//! cache (`~/.cache/qls`, or `QLS_CACHE_DIR` when set).
//!
//! Run with `cargo run --release --example warm_cache`.

use std::time::Instant;

use qls::prelude::*;

fn build_solver(a: &Matrix<f64>) -> QsvtLinearSolver {
    QsvtLinearSolver::new(
        a,
        QsvtSolverOptions {
            epsilon_l: 0.05,
            mode: QsvtMode::CircuitReal,
            ..Default::default()
        },
    )
    .expect("circuit-mode solver")
}

fn main() {
    let mut rng = experiment_rng(7);
    let a = random_matrix_with_cond(
        16,
        8.0,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );

    println!("building a kappa = 8 QSVT solver twice (circuit mode, eps_l = 0.05)\n");

    // First construction: generates phase factors (degree ~117) and runs the
    // fusion pass, then persists both artifacts to the cache directory.
    let (h0, m0) = (cache_hit_count(), cache_miss_count());
    let (p0, f0) = (phase_generation_count(), fusion_pass_count());
    let start = Instant::now();
    let solver = build_solver(&a);
    let cold = start.elapsed();
    println!(
        "cold build: {:>8.3} ms | cache hits +{} misses +{} | phase generations +{} | fusion passes +{}",
        cold.as_secs_f64() * 1e3,
        cache_hit_count() - h0,
        cache_miss_count() - m0,
        phase_generation_count() - p0,
        fusion_pass_count() - f0,
    );

    // Second construction of the *same* solver: every expensive artifact is a
    // disk read, so zero phase generations and zero fusion passes.
    let (h1, m1) = (cache_hit_count(), cache_miss_count());
    let (p1, f1) = (phase_generation_count(), fusion_pass_count());
    let start = Instant::now();
    let warm_solver = build_solver(&a);
    let warm = start.elapsed();
    println!(
        "warm build: {:>8.3} ms | cache hits +{} misses +{} | phase generations +{} | fusion passes +{}",
        warm.as_secs_f64() * 1e3,
        cache_hit_count() - h1,
        cache_miss_count() - m1,
        phase_generation_count() - p1,
        fusion_pass_count() - f1,
    );
    if warm.as_secs_f64() > 0.0 {
        println!(
            "\nwarm build speedup: {:.1}x",
            cold.as_secs_f64() / warm.as_secs_f64()
        );
    }
    assert_eq!(
        phase_generation_count(),
        p1,
        "warm build must not regenerate phase factors"
    );
    assert_eq!(
        fusion_pass_count(),
        f1,
        "warm build must not rerun the fusion pass"
    );

    // Both solvers are bit-identical: the cache stores exact f64 bit patterns.
    let resources = solver.quantum_resources();
    let warm_resources = warm_solver.quantum_resources();
    assert_eq!(resources.degree, warm_resources.degree);
    println!(
        "\nboth builds agree: polynomial degree {}, {} block-encoding calls",
        resources.degree, resources.block_encoding_calls
    );

    println!(
        "\nNote: the cache is a plain directory, so warmth crosses processes —\n\
         run this example a second time and the *first* build is already warm\n\
         from the artifacts this run just wrote. Set QLS_CACHE_DIR to relocate\n\
         the cache, or QLS_CACHE_DIR=\"\" (empty) to disable it for a run."
    );
}
