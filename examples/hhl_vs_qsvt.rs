//! Compare the three quantum linear-system strategies the paper discusses:
//! HHL (phase-estimation based), a single direct QSVT solve, and the
//! mixed-precision QSVT + iterative-refinement solver, on the same small
//! symmetric positive-definite system.
//!
//! Run with `cargo run --example hhl_vs_qsvt`.

use qls::prelude::*;

fn main() {
    let mut rng = experiment_rng(31);
    let a = random_matrix_with_cond(
        4,
        5.0,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::SymmetricPositiveDefinite,
        &mut rng,
    );
    let b = random_unit_vector(4, &mut rng);
    let reference = classical_lu_solve(&a, &b).expect("LU");
    let mut reference_direction = reference.clone();
    reference_direction.normalize();

    println!("4x4 symmetric positive-definite system, kappa = 5\n");

    // HHL with an 8-qubit clock register.
    let hhl = HhlSolver::new(
        &a,
        HhlOptions {
            clock_qubits: 8,
            ..Default::default()
        },
    );
    let hhl_result = hhl.solve_direction(&b);
    let hhl_err = forward_error(&hhl_result.direction, &reference_direction).min(forward_error(
        &hhl_result.direction.scaled(-1.0),
        &reference_direction,
    ));
    println!("HHL (8 clock qubits):");
    println!("  direction error:        {hhl_err:.3e}");
    println!(
        "  success probability:    {:.3e}",
        hhl_result.success_probability
    );
    println!(
        "  qubits / gates:         {} / {}",
        hhl_result.total_qubits, hhl_result.gate_count
    );

    // Direct QSVT at moderate accuracy (single solve, no refinement).
    let direct = DirectQsvtSolver::new(&a, 1e-6, QsvtMode::Emulation).expect("direct QSVT");
    let direct_result = direct.solve(&b, &mut rng).expect("solve");
    println!("\nDirect QSVT at eps = 1e-6:");
    println!(
        "  scaled residual:        {:.3e}",
        direct_result.scaled_residual
    );
    println!(
        "  block-encoding calls:   {}",
        direct.block_encoding_calls()
    );
    println!(
        "  forward error vs LU:    {:.3e}",
        forward_error(&direct_result.solution, &reference)
    );

    // Mixed-precision QSVT + iterative refinement.
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-12,
            epsilon_l: 5e-2,
            ..Default::default()
        },
    )
    .expect("refiner");
    let (x, history) = refiner.solve(&b, &mut rng).expect("solve");
    println!("\nQSVT + mixed-precision iterative refinement (eps = 1e-12, eps_l = 5e-2):");
    println!("  iterations:             {}", history.iterations());
    println!("  final scaled residual:  {:.3e}", history.final_residual());
    println!(
        "  total BE calls:         {}",
        history.total_block_encoding_calls()
    );
    println!(
        "  forward error vs LU:    {:.3e}",
        forward_error(&x, &reference)
    );

    println!("\nTakeaway: HHL's accuracy is capped by its clock resolution, the direct QSVT");
    println!("pays a high per-solve cost to reach tight accuracies, and the refined solver");
    println!("reaches the tightest accuracy of the three while running only low-precision");
    println!("quantum solves — the paper's core claim.");
}
