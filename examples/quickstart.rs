//! Quickstart: solve a random linear system with the mixed-precision
//! QSVT + iterative-refinement solver and compare against the classical LU
//! reference.
//!
//! Run with `cargo run --example quickstart`.

use qls::prelude::*;

fn main() {
    // The paper's experimental setup: N = 16, random matrix with a prescribed
    // condition number, unit-norm right-hand side.
    let mut rng = experiment_rng(2024);
    let kappa = 10.0;
    let a = random_matrix_with_cond(
        16,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(16, &mut rng);

    println!("Solving a 16x16 random system with condition number {kappa}.");
    println!("Target accuracy eps = 1e-11, QSVT accuracy eps_l = 1e-2.\n");

    // Algorithm 2: low-accuracy QSVT solves refined in high precision.
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 1e-2,
            ..Default::default()
        },
    )
    .expect("solver setup");
    let (x, history) = refiner.solve(&b, &mut rng).expect("hybrid solve");

    println!("iteration | scaled residual | Theorem III.1 bound");
    for step in &history.steps {
        println!(
            "{:>9} | {:>15.3e} | {:>15.3e}",
            step.iteration, step.scaled_residual, step.theoretical_bound
        );
    }
    println!(
        "\nconverged: {:?} after {} refinement iterations (bound: {:?})",
        history.status,
        history.iterations(),
        history.iteration_bound()
    );
    println!(
        "total block-encoding calls: {}",
        history.total_block_encoding_calls()
    );

    // Validate against the classical reference solution.
    let reference = classical_lu_solve(&a, &b).expect("LU solve");
    let forward = forward_error(&x, &reference);
    println!("relative forward error vs LU reference: {forward:.3e}");
    assert!(forward < 1e-9, "the hybrid solver should match LU closely");
    println!("\nOK — the hybrid solver reproduced the classical solution.");
}
