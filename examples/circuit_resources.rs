//! Gate-level resource report: build every block-encoding of a small system,
//! the state-preparation circuit, and the full QSVT circuit (small κ), and
//! print their fault-tolerant resource estimates together with the CPU↔QPU
//! communication budget of one refined solve.
//!
//! Run with `cargo run --example circuit_resources`.

use qls::prelude::*;

fn main() {
    let mut rng = experiment_rng(5);
    let a = random_matrix_with_cond(
        4,
        2.0,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(4, &mut rng);
    let model = TCountModel::default();

    println!("Block-encodings of a 4x4 matrix (2 data qubits):\n");
    println!("method                      | alpha  | ancillas | gates | depth | est. T count | encoding error");
    let lcu = LcuBlockEncoding::new(&a, 1e-12);
    let fable = FableBlockEncoding::new(&a, 0.0);
    let dilation = DilationBlockEncoding::new(&a, 0.0);
    for (name, circuit, alpha, ancillas, err) in [
        (
            "LCU (Pauli decomposition)",
            lcu.circuit(),
            lcu.alpha(),
            lcu.num_ancilla_qubits(),
            lcu.encoding_error(&a),
        ),
        (
            "FABLE",
            fable.circuit(),
            fable.alpha(),
            fable.num_ancilla_qubits(),
            fable.encoding_error(&a),
        ),
        (
            "unitary dilation (exact)",
            dilation.circuit(),
            dilation.alpha(),
            dilation.num_ancilla_qubits(),
            dilation.encoding_error(&a),
        ),
    ] {
        let est = estimate_resources(circuit, &model);
        println!(
            "{:<27} | {:>6.3} | {:>8} | {:>5} | {:>5} | {:>12} | {:.2e}",
            name, alpha, ancillas, est.gate_count, est.depth, est.estimated_t_count, err
        );
    }

    // State preparation of the right-hand side.
    let prep = StatePreparation::new(&b);
    let prep_circuit = prep.circuit();
    let prep_est = estimate_resources(&prep_circuit, &model);
    println!(
        "\nstate preparation of b (tree method): {} classical flops, {} gates, {} est. T",
        prep.classical_flops, prep_est.gate_count, prep_est.estimated_t_count
    );

    // Full QSVT circuit at small kappa (circuit mode).
    let solver = QsvtLinearSolver::new(
        &a,
        QsvtSolverOptions {
            epsilon_l: 0.05,
            mode: QsvtMode::CircuitReal,
            ..Default::default()
        },
    )
    .expect("circuit-mode solver");
    let resources = solver.quantum_resources();
    println!("\nfull QSVT circuit (kappa = 2, eps_l = 0.05):");
    println!("  polynomial degree:       {}", resources.degree);
    println!(
        "  block-encoding calls:    {}",
        resources.block_encoding_calls
    );
    println!(
        "  data / ancilla qubits:   {} / {}",
        resources.data_qubits, resources.ancilla_qubits
    );
    if let Some(est) = &resources.circuit_estimate {
        println!(
            "  gates {} | depth {} | rotations {} | est. T count {}",
            est.gate_count, est.depth, est.rotation_count, est.estimated_t_count
        );
    }

    // Communication budget of a full refined solve (Fig. 1).
    let schedule = CommunicationSchedule::new(CommunicationParameters {
        n_qubits: 2,
        block_encoding_gates: lcu.circuit().gate_count(),
        state_prep_gates: prep_circuit.gate_count(),
        polynomial_degree: resources.degree,
        iterations: 4,
        bytes_per_gate: 16,
        bytes_per_scalar: 8,
    });
    println!("\nCPU-QPU communication budget for a 4-iteration refined solve:");
    println!(
        "  setup (BE + phases + SP(b)): {} bytes",
        schedule.setup_bytes()
    );
    println!(
        "  per refinement iteration:    {} bytes",
        schedule.per_iteration_bytes()
    );
    println!(
        "  totals: {} bytes to the QPU, {} bytes back",
        schedule.total_bytes(Direction::CpuToQpu),
        schedule.total_bytes(Direction::QpuToCpu)
    );
}
