//! Sweep the QSVT accuracy ε_l and show the trade-off the paper's Table I
//! formalises: a looser ε_l makes every quantum solve cheaper (lower polynomial
//! degree, fewer samples) but requires more refinement iterations, and the
//! sweet spot sits well below "solve directly at full precision".
//!
//! Run with `cargo run --example precision_tradeoff`.

use qls::prelude::*;

fn main() {
    let kappa = 20.0;
    let epsilon = 1e-10;
    let mut rng = experiment_rng(99);
    let a = random_matrix_with_cond(
        16,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(16, &mut rng);

    println!("Accuracy/cost trade-off, kappa = {kappa}, target eps = {epsilon:.0e}\n");
    println!("eps_l     | iterations | degree | BE calls (total) | samples/solve | total samples");

    for &epsilon_l in &[1e-1, 1e-2, 1e-3, 1e-4, 1e-6] {
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: epsilon,
                epsilon_l,
                max_iterations: 200,
                ..Default::default()
            },
        )
        .expect("solver setup");
        let (_, history) = refiner.solve(&b, &mut rng).expect("solve");
        let degree = history.steps[0].cost.polynomial_degree;
        let samples_per_solve = history.steps[0].cost.shots;
        println!(
            "{:>9.0e} | {:>10} | {:>6} | {:>16} | {:>13} | {:>13}",
            epsilon_l,
            history.iterations(),
            degree,
            history.total_block_encoding_calls(),
            samples_per_solve,
            history.total_shots(),
        );
    }

    // The analytic Table-I comparison at a representative eps_l.
    println!("\nTable-I analytic comparison at eps_l = 1e-2:");
    let cmp = quantum_cost_comparison(CostParameters {
        kappa,
        epsilon,
        epsilon_l: 1e-2,
        block_encoding_cost: 1.0,
    });
    println!(
        "  direct QSVT:   {:>6.0} solve(s) x {:>10.3e} BE calls x {:>10.3e} samples = {:>10.3e}",
        cmp.qsvt_only.solves, cmp.qsvt_only.qsvt_cost, cmp.qsvt_only.samples, cmp.qsvt_only.total
    );
    println!(
        "  QSVT + IR:     {:>6.0} solve(s) x {:>10.3e} BE calls x {:>10.3e} samples = {:>10.3e}",
        cmp.qsvt_with_refinement.solves,
        cmp.qsvt_with_refinement.qsvt_cost,
        cmp.qsvt_with_refinement.samples,
        cmp.qsvt_with_refinement.total
    );
    println!("  speedup from refinement: {:.3e}x", cmp.speedup);
}
