//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate: a genuine ChaCha-core RNG (RFC 8439 block function with a 64-bit
//! block counter), parameterised by round count.
//!
//! Only the construction paths the workspace uses are provided
//! (`SeedableRng::from_seed` / `seed_from_u64` and the `RngCore` word
//! stream).  Streams are deterministic and portable but not bit-identical to
//! the real `rand_chacha` word order; every consumer in this repository only
//! relies on determinism, not on a specific published stream.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha random number generator performing `ROUNDS` rounds, i.e.
/// `ROUNDS/2` column+diagonal double rounds (`ROUNDS = 8/12/20` matching
/// ChaCha8/ChaCha12/ChaCha20).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// Key + nonce part of the initial state (words 4..14 fixed, 14..16 nonce).
    key: [u32; 8],
    nonce: [u32; 2],
    counter: u64,
    buffer: [u32; 16],
    /// Next unconsumed word in `buffer`; 16 means "refill".
    cursor: usize,
}

pub type ChaCha8Rng = ChaChaRng<8>;
pub type ChaCha12Rng = ChaChaRng<12>;
pub type ChaCha20Rng = ChaChaRng<20>;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }

    /// Number of 32-bit words produced so far.  `refill` pre-increments the
    /// block counter, so a live buffer belongs to block `counter - 1`.
    pub fn get_word_pos(&self) -> u128 {
        if self.cursor >= 16 {
            (self.counter as u128) * 16
        } else {
            (self.counter as u128 - 1) * 16 + self.cursor as u128
        }
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            nonce: [0, 0],
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc8439_keystream() {
        // RFC 8439 §2.3.2 test vector: key 00 01 02 .. 1f, counter 1,
        // nonce 00 00 00 09 00 00 00 4a 00 00 00 00 (we use a 64-bit counter
        // layout, so reproduce the vector with counter word splicing).
        let mut key_bytes = [0u8; 32];
        for (i, b) in key_bytes.iter_mut().enumerate() {
            *b = i as u8;
        }
        // RFC words 12..16 are (counter=1, 0x09000000, 0x4a000000, 0); our
        // state packs a 64-bit counter into words 12..14, so word 13 rides in
        // the counter's high half and words 14..16 are the two nonce words.
        let mut rng = ChaCha20Rng::from_seed(key_bytes);
        rng.nonce = [0x4a00_0000, 0];
        rng.counter = 1 | (0x0900_0000u64 << 32);
        rng.refill();
        assert_eq!(rng.buffer[0], 0xe4e7_f110);
        assert_eq!(rng.buffer[15], 0x4e3c_50a2);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn word_position_counts_consumed_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(rng.get_word_pos(), 0);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 1);
        for _ in 0..15 {
            rng.next_u32();
        }
        assert_eq!(rng.get_word_pos(), 16);
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 17);
    }

    #[test]
    fn unit_doubles_look_uniform() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
