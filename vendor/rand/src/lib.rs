//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *exact API subset* it consumes: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits and uniform range sampling via
//! [`Rng::gen_range`].  The trait shapes mirror `rand` 0.8 closely enough
//! that swapping in the real crate later is a one-line `Cargo.toml` change
//! (see ROADMAP.md "Open items").
//!
//! `seed_from_u64` expands the `u64` into the seed buffer with SplitMix64.
//! Note this is NOT the same expansion the real `rand_core` uses (a PCG32
//! step), so seeded streams WILL change if the real crates are restored —
//! expect tolerance-tuned seeded tests to need re-checking at that point.

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG that can be reproducibly constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type, e.g. `[u8; 32]` for ChaCha.
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (matching `rand` 0.8).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 round, as used by rand_core::SeedableRng.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform f32 in `[0, 1)` with 24 bits of precision.
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty sampling range");
        self.start + (self.end - self.start) * unit_f32(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping; the bias is
                // < 2^-64 for the span sizes used in this workspace.
                let word = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + word) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty sampling range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let word = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + word) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 stream for test purposes.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let k: usize = rng.gen_range(2..17);
            assert!((2..17).contains(&k));
            let s: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&s));
        }
    }
}
