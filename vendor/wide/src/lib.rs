//! Offline stand-in for the [`wide`](https://crates.io/crates/wide) crate.
//!
//! Implements exactly the API subset this workspace uses: a fixed-width
//! [`f64x4`] vector with element-wise arithmetic, lane-wise fused
//! multiply-add, and a cached runtime check for the AVX2+FMA instruction
//! set.  Everything is written in portable stable Rust — no `std::simd`,
//! no mandatory intrinsics — so every target builds:
//!
//! * The lane operations are explicit four-element expressions on an
//!   `align(32)` array.  LLVM's superword-level parallelism pass reliably
//!   turns them into packed SSE2 instructions on the x86-64 baseline and
//!   into single 256-bit instructions when the surrounding function is
//!   compiled with `#[target_feature(enable = "avx2,fma")]` (the kernel
//!   crates multiversion their hot loops this way and dispatch through
//!   [`runtime::avx2_fma_available`]).
//! * On non-x86 targets the same code compiles to whatever vector ISA the
//!   backend offers, or to scalar code — the API (and the results, which
//!   are lane-wise IEEE operations in a fixed order) is identical.
//!
//! **Numerical contract:** every operation is element-wise; there are no
//! horizontal reductions hidden inside the type, so using lane `l` of an
//! `f64x4` computes bit-for-bit what the same sequence of scalar `f64`
//! operations would.  [`f64x4::mul_add`] is a *fused* per-lane operation
//! (one rounding), matching scalar `f64::mul_add` exactly.  The only
//! reassociating helper is [`f64x4::reduce_add`], whose summation order is
//! documented and fixed.

#![allow(non_camel_case_types)] // matching the real crate's type names

use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Four `f64` lanes, 32-byte aligned.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f64x4(pub [f64; 4]);

impl f64x4 {
    /// Number of lanes.
    pub const LANES: usize = 4;

    /// All-zero vector.
    pub const ZERO: Self = Self([0.0; 4]);

    /// Build from an array (lane `l` = `a[l]`).
    #[inline(always)]
    pub const fn new(a: [f64; 4]) -> Self {
        Self(a)
    }

    /// Broadcast one value into every lane.
    #[inline(always)]
    pub const fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Load four consecutive values from a slice (panics if `s.len() < 4`).
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// Store the four lanes into the first four elements of a slice.
    #[inline(always)]
    pub fn write_to_slice(self, s: &mut [f64]) {
        s[..4].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub const fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// Borrow the lanes as an array.
    #[inline(always)]
    pub const fn as_array_ref(&self) -> &[f64; 4] {
        &self.0
    }

    /// Lane-wise **fused** multiply-add `self * a + b` (one rounding per
    /// lane, exactly like scalar `f64::mul_add`).  Inside an
    /// `avx2,fma`-enabled function this compiles to one `vfmadd` —
    /// elsewhere it falls back to the (correct, slower) libm `fma`, which
    /// is why the kernel crates multiversion their loops.
    #[inline(always)]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Self([
            self.0[0].mul_add(a.0[0], b.0[0]),
            self.0[1].mul_add(a.0[1], b.0[1]),
            self.0[2].mul_add(a.0[2], b.0[2]),
            self.0[3].mul_add(a.0[3], b.0[3]),
        ])
    }

    /// Swap the two lanes of each 128-bit pair: `[l1, l0, l3, l2]`.
    ///
    /// With lanes holding interleaved complex numbers `[re0, im0, re1, im1]`
    /// this exchanges each number's real and imaginary parts (one
    /// `vpermilpd` under AVX).
    #[inline(always)]
    pub fn swap_adjacent(self) -> Self {
        Self([self.0[1], self.0[0], self.0[3], self.0[2]])
    }

    /// Broadcast the low 128-bit pair: `[l0, l1, l0, l1]`.
    #[inline(always)]
    pub fn dup_low_pair(self) -> Self {
        Self([self.0[0], self.0[1], self.0[0], self.0[1]])
    }

    /// Broadcast the high 128-bit pair: `[l2, l3, l2, l3]`.
    #[inline(always)]
    pub fn dup_high_pair(self) -> Self {
        Self([self.0[2], self.0[3], self.0[2], self.0[3]])
    }

    /// Horizontal sum in the fixed order `(l0 + l1) + (l2 + l3)`.
    ///
    /// This is the one reassociating operation of the type: callers that
    /// need bit-identity with a sequential scalar loop must not use it on
    /// partial sums of that loop (the kernel crates assign one *output*
    /// element per lane instead — see their lane-convention docs).
    #[inline(always)]
    pub fn reduce_add(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for f64x4 {
            type Output = f64x4;
            #[inline(always)]
            fn $method(self, rhs: f64x4) -> f64x4 {
                f64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }

        impl $assign_trait for f64x4 {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: f64x4) {
                *self = *self $op rhs;
            }
        }
    };
}

lanewise_binop!(Add, add, +, AddAssign, add_assign);
lanewise_binop!(Sub, sub, -, SubAssign, sub_assign);
lanewise_binop!(Mul, mul, *, MulAssign, mul_assign);

impl Neg for f64x4 {
    type Output = f64x4;
    #[inline(always)]
    fn neg(self) -> f64x4 {
        f64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

/// Runtime CPU-feature detection for the multiversioned kernels.
pub mod runtime {
    /// True when the running CPU supports AVX2 *and* FMA (checked once,
    /// cached).  The kernel crates use this to dispatch into
    /// `#[target_feature(enable = "avx2,fma")]` clones of their hot loops;
    /// when it is false (older x86-64, or any non-x86 target) the same
    /// loops run through the baseline compilation — identical results,
    /// portable everywhere.
    #[inline]
    pub fn avx2_fma_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::atomic::{AtomicU8, Ordering};
            static CACHED: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 no, 2 yes
            match CACHED.load(Ordering::Relaxed) {
                2 => true,
                1 => false,
                _ => {
                    let yes = std::is_x86_feature_detected!("avx2")
                        && std::is_x86_feature_detected!("fma");
                    CACHED.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
                    yes
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanewise_arithmetic() {
        let a = f64x4::new([1.0, 2.0, 3.0, 4.0]);
        let b = f64x4::splat(0.5);
        assert_eq!((a + b).to_array(), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!((a - b).to_array(), [0.5, 1.5, 2.5, 3.5]);
        assert_eq!((a * b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
        let mut c = a;
        c += b;
        c -= b;
        c *= f64x4::splat(2.0);
        assert_eq!(c.to_array(), [2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn mul_add_is_fused_per_lane() {
        // Pick operands where fused and unfused results differ: for
        // x = 1 + 2⁻³⁰, x² − 1 is exactly 2⁻²⁹ + 2⁻⁶⁰ (fused keeps the low
        // bit; the separately-rounded product drops it).  The scalar oracle
        // is f64::mul_add, and every lane must match it exactly.
        let x = 1.0 + (-30f64).exp2();
        let a = f64x4::splat(x);
        let prod = a.mul_add(a, f64x4::splat(-1.0));
        for lane in prod.to_array() {
            assert_eq!(lane, x.mul_add(x, -1.0));
            assert_ne!(lane, x * x - 1.0, "operands chosen to expose fusion");
        }
    }

    #[test]
    fn reduce_add_order_is_documented_pairwise() {
        let v = f64x4::new([1e16, 1.0, -1e16, 1.0]);
        // (1e16 + 1) + (-1e16 + 1) = 1e16 + (-1e16 + 1) = 1.0 + ... — fixed
        // pairwise order, not sequential.
        assert_eq!(v.reduce_add(), (1e16 + 1.0) + (-1e16 + 1.0));
    }

    #[test]
    fn pair_shuffles() {
        let v = f64x4::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.swap_adjacent().to_array(), [2.0, 1.0, 4.0, 3.0]);
        assert_eq!(v.dup_low_pair().to_array(), [1.0, 2.0, 1.0, 2.0]);
        assert_eq!(v.dup_high_pair().to_array(), [3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn slice_roundtrip() {
        let s = [9.0, 8.0, 7.0, 6.0, 5.0];
        let v = f64x4::from_slice(&s);
        let mut out = [0.0; 5];
        v.write_to_slice(&mut out);
        assert_eq!(&out[..4], &s[..4]);
        assert_eq!(out[4], 0.0);
    }

    #[test]
    fn runtime_detection_is_stable() {
        let first = runtime::avx2_fma_available();
        assert_eq!(first, runtime::avx2_fma_available());
    }
}
