//! Compile-level checks of the no-deps derive stub: plain, enum, generic
//! (with bounds) and lifetime-parameterised shapes must all expand to valid
//! marker impls.

// The fields exist only to give the derive something to chew on.
#![allow(dead_code)]

use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct Plain {
    x: f64,
    label: String,
}

#[derive(Serialize)]
enum Tagged {
    A,
    B(u32),
}

#[derive(Serialize)]
struct Bounded<T: Clone> {
    inner: T,
}

#[derive(Serialize)]
struct WithLifetime<'a> {
    name: &'a str,
}

fn assert_serialize<T: Serialize>() {}

#[test]
fn derives_produce_marker_impls() {
    assert_serialize::<Plain>();
    assert_serialize::<Tagged>();
    assert_serialize::<Bounded<u8>>();
    assert_serialize::<WithLifetime<'static>>();
}
