//! Offline vendored stand-in for the [`serde`](https://serde.rs) facade —
//! now a real (subset) serialization framework.
//!
//! crates.io is unreachable in the build container, so this crate cannot be
//! the real serde.  Through PR 9 it was a pair of *marker traits*; the
//! persistent artifact cache (`qls-cache`) needs an actual wire format, so
//! the stand-in now implements a self-describing subset of serde's data
//! model:
//!
//! * **Real**: `Serialize`/`Deserialize` produce and consume a [`Value`]
//!   tree (null/bool/int/uint/float/string/seq/map) with a JSON wire format
//!   ([`to_json_string`]/[`from_json_str`]) that round-trips `f64` values
//!   bit-exactly (shortest-representation printing, `NaN`/`Infinity`
//!   tokens as a JSON superset).  The derive macros generate genuine
//!   field-wise impls for structs (named/tuple/unit) and enums
//!   (unit/tuple/named variants).
//! * **Still a stand-in**: no zero-copy deserialization (the `'de`
//!   lifetime parameter exists only for API compatibility and is never
//!   borrowed from), no `#[serde(...)]` attribute support beyond accepting
//!   the attribute, no `Serializer`/`Deserializer` trait pair — everything
//!   goes through the owned [`Value`] tree.
//!
//! Swapping in the real serde remains a dependency change for derive users;
//! code that calls [`to_json_string`]/[`from_json_str`] directly would move
//! to `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// A self-describing serialized value — the subset data model every
/// `Serialize`/`Deserialize` impl goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (all signed ints widen to `i64`).
    Int(i64),
    /// An unsigned integer that does not fit `i64`.
    UInt(u64),
    /// A floating-point number (`f32` widens to `f64`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

/// Key under which an enum variant's name is stored for non-unit variants.
const VARIANT_KEY: &str = "$variant";
/// Key under which a tuple variant's fields are stored.
const FIELDS_KEY: &str = "$fields";

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Fetch a required struct field, with a `ty`-qualified error.
    pub fn field(&self, ty: &str, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(_) => self
                .get(name)
                .ok_or_else(|| DeError::new(format!("{ty}: missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "{ty}: expected a map for field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Fetch a required sequence element, with a `ty`-qualified error.
    pub fn seq_item(&self, ty: &str, index: usize) -> Result<&Value, DeError> {
        match self {
            Value::Seq(items) => items
                .get(index)
                .ok_or_else(|| DeError::new(format!("{ty}: missing element {index}"))),
            other => Err(DeError::new(format!(
                "{ty}: expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Encode a unit enum variant (just the variant name).
    pub fn enum_unit(variant: &str) -> Value {
        Value::Str(variant.to_string())
    }

    /// Encode a tuple enum variant: `{"$variant": name, "$fields": [...]}`.
    pub fn enum_tuple(variant: &str, fields: Vec<Value>) -> Value {
        Value::Map(vec![
            (VARIANT_KEY.to_string(), Value::Str(variant.to_string())),
            (FIELDS_KEY.to_string(), Value::Seq(fields)),
        ])
    }

    /// Encode a struct enum variant: `{"$variant": name, field: value, ...}`.
    pub fn enum_named(variant: &str, fields: Vec<(&str, Value)>) -> Value {
        let mut entries = Vec::with_capacity(fields.len() + 1);
        entries.push((VARIANT_KEY.to_string(), Value::Str(variant.to_string())));
        entries.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        Value::Map(entries)
    }

    /// The variant name of an encoded enum (either form).
    pub fn variant_name(&self, ty: &str) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            Value::Map(_) => match self.get(VARIANT_KEY) {
                Some(Value::Str(s)) => Ok(s),
                _ => Err(DeError::new(format!(
                    "{ty}: map has no `{VARIANT_KEY}` tag"
                ))),
            },
            other => Err(DeError::new(format!(
                "{ty}: expected an enum encoding, found {}",
                other.kind()
            ))),
        }
    }

    /// Fetch a tuple-variant field from the `$fields` sequence.
    pub fn tuple_field(&self, ty: &str, index: usize) -> Result<&Value, DeError> {
        match self.get(FIELDS_KEY) {
            Some(seq) => seq.seq_item(ty, index),
            None => Err(DeError::new(format!(
                "{ty}: map has no `{FIELDS_KEY}` list"
            ))),
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Float(f) if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Deserialization error: what was expected, what was found, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Standard "unknown enum variant" error.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError::new(format!("{ty}: unknown variant `{variant}`"))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// Subset stand-in for `serde::Serialize`: produce a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the subset data model.
    fn serialize(&self) -> Value;
}

/// Subset stand-in for `serde::Deserialize`: consume a [`Value`] tree.
///
/// The `'de` lifetime is kept for signature compatibility with the real
/// serde (and with existing `for<'de>` bounds); this stand-in never borrows
/// from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstruct `Self` from the subset data model.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Convenience entry points
// ---------------------------------------------------------------------------

/// Serialize to the in-memory data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Deserialize from the in-memory data model.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, DeError> {
    T::deserialize(value)
}

/// Serialize to a compact JSON string (superset: non-finite floats print as
/// `NaN` / `Infinity` / `-Infinity`).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_json(&value.serialize(), &mut out);
    out
}

/// Deserialize from a JSON string (accepts the same superset
/// [`to_json_string`] emits).
pub fn from_json_str<T: DeserializeOwned>(json: &str) -> Result<T, DeError> {
    T::deserialize(&parse_json(json)?)
}

// ---------------------------------------------------------------------------
// Primitive / std impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let i = value.as_i64().ok_or_else(|| {
                    DeError::new(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::new(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let u = value.as_u64().ok_or_else(|| {
                    DeError::new(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::new(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// 128-bit ints: store in the 64-bit lanes when they fit, else as a decimal
// string (lossless; nothing in the workspace uses them today).
macro_rules! impl_int128 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if let Ok(i) = i64::try_from(*self) {
                    Value::Int(i)
                } else if let Ok(u) = u64::try_from(*self) {
                    Value::UInt(u)
                } else {
                    Value::Str(self.to_string())
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Str(s) => s.parse::<$t>().map_err(|_| {
                        DeError::new(format!("`{s}` is not a valid {}", stringify!($t)))
                    }),
                    _ => {
                        if let Some(i) = value.as_i64() {
                            <$t>::try_from(i).map_err(|_| {
                                DeError::new(format!("{i} out of range for {}", stringify!($t)))
                            })
                        } else if let Some(u) = value.as_u64() {
                            <$t>::try_from(u).map_err(|_| {
                                DeError::new(format!("{u} out of range for {}", stringify!($t)))
                            })
                        } else {
                            Err(DeError::new(format!(
                                "expected {}, found {}", stringify!($t), value.kind()
                            )))
                        }
                    }
                }
            }
        }
    )*};
}

impl_int128!(i128, u128);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::new(format!("expected f64, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::new(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected {N} elements, found {len}")))
    }
}

/// `None` ↔ `null`; `Some(x)` serializes as `x` itself.  (`Option<Option<T>>`
/// is therefore ambiguous — the subset doesn't support it.)
impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                Ok(($($name::deserialize(value.seq_item("tuple", $idx)?)?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn write_json(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_json(v, out);
            }
            out.push('}');
        }
    }
}

/// Rust's `Display` for `f64` prints the shortest decimal that parses back
/// to the same bits, so `text → f64` round-trips exactly; a `.0` suffix
/// keeps integral floats re-parsing as `Float` rather than `Int` (harmless
/// either way — numeric deserialization cross-accepts — but it preserves
/// the `Value` tree across a JSON round trip).  Non-finite values use the
/// conventional JSON-superset tokens.
fn write_f64(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

/// Parse a JSON document (with the `NaN`/`Infinity` superset tokens) into a
/// [`Value`] tree.
pub fn parse_json(input: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> DeError {
        DeError::new(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'N') if self.eat_keyword("NaN") => Ok(Value::Float(f64::NAN)),
            Some(b'I') if self.eat_keyword("Infinity") => Ok(Value::Float(f64::INFINITY)),
            Some(b'-') if self.bytes[self.pos..].starts_with(b"-Infinity") => {
                self.pos += "-Infinity".len();
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_map(&mut self) -> Result<Value, DeError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(buf).map_err(|_| self.error("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => buf.push(b'"'),
                        b'\\' => buf.push(b'\\'),
                        b'/' => buf.push(b'/'),
                        b'n' => buf.push(b'\n'),
                        b'r' => buf.push(b'\r'),
                        b't' => buf.push(b'\t'),
                        b'b' => buf.push(0x08),
                        b'f' => buf.push(0x0C),
                        b'u' => {
                            let c = self.parse_unicode_escape()?;
                            let mut tmp = [0u8; 4];
                            buf.extend_from_slice(c.encode_utf8(&mut tmp).as_bytes());
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(c) => {
                    buf.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char, DeError> {
        let code = self.parse_hex4()?;
        // High surrogate: must be followed by `\uDC00`–`\uDFFF`.
        if (0xD800..0xDC00).contains(&code) {
            if !(self.eat(b'\\').is_ok() && self.eat(b'u').is_ok()) {
                return Err(self.error("unpaired surrogate"));
            }
            let low = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("unpaired surrogate"));
            }
            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.error("bad surrogate pair"))
        } else {
            char::from_u32(code).ok_or_else(|| self.error("bad \\u escape"))
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                b'+' | b'-' if is_float => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            // Falls through: integers beyond 64 bits parse as f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("bad number"))
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut s = String::new();
        write_json(v, &mut s);
        parse_json(&s).expect("round-trip parse")
    }

    #[test]
    fn scalars_roundtrip_through_json() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::UInt(u64::MAX),
            Value::Float(1.5),
            Value::Float(-0.1),
            Value::Str("hello \"world\"\n\\ \u{1F600} \u{7}".to_string()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for f in [
            0.1,
            std::f64::consts::PI,
            1e-308,
            2.2250738585072014e-308, // smallest normal
            5e-324,                  // smallest subnormal
            1.7976931348623157e308,  // largest finite
            -0.0,
            1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            match roundtrip(&Value::Float(f)) {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{f}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
        match roundtrip(&Value::Float(f64::NAN)) {
            Value::Float(g) => assert!(g.is_nan()),
            other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn containers_roundtrip_through_json() {
        let v = Value::Map(vec![
            ("empty_seq".to_string(), Value::Seq(vec![])),
            ("empty_map".to_string(), Value::Map(vec![])),
            (
                "nested".to_string(),
                Value::Seq(vec![
                    Value::Map(vec![("k".to_string(), Value::Int(1))]),
                    Value::Null,
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn std_type_impls_roundtrip() {
        let v: Vec<f64> = vec![1.0, -2.5, f64::NAN];
        let back: Vec<f64> = from_json_str(&to_json_string(&v)).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].to_bits(), v[0].to_bits());
        assert!(back[2].is_nan());

        let opt: Option<u32> = Some(7);
        assert_eq!(
            from_json_str::<Option<u32>>(&to_json_string(&opt)).unwrap(),
            opt
        );
        let none: Option<u32> = None;
        assert_eq!(
            from_json_str::<Option<u32>>(&to_json_string(&none)).unwrap(),
            none
        );

        let arr = [1usize, 2, 3];
        assert_eq!(
            from_json_str::<[usize; 3]>(&to_json_string(&arr)).unwrap(),
            arr
        );

        let pair = (1i32, "two".to_string());
        assert_eq!(
            from_json_str::<(i32, String)>(&to_json_string(&pair)).unwrap(),
            pair
        );
    }

    #[test]
    fn numeric_cross_acceptance() {
        // `1` parses as Int but deserializes into f64/usize alike.
        assert_eq!(from_json_str::<f64>("1").unwrap(), 1.0);
        assert_eq!(from_json_str::<usize>("1").unwrap(), 1);
        // Range violations are errors, not wraps.
        assert!(from_json_str::<u8>("300").is_err());
        assert!(from_json_str::<usize>("-1").is_err());
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "nul",
            "1e",
            "--3",
            "[]x",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn enum_encoding_helpers() {
        let unit = Value::enum_unit("Converged");
        assert_eq!(unit.variant_name("T").unwrap(), "Converged");

        let tup = Value::enum_tuple("SolveFailed", vec![Value::Int(3)]);
        assert_eq!(tup.variant_name("T").unwrap(), "SolveFailed");
        assert_eq!(tup.tuple_field("T", 0).unwrap(), &Value::Int(3));

        let named = Value::enum_named("EscalateShots", vec![("shots", Value::Int(512))]);
        assert_eq!(named.variant_name("T").unwrap(), "EscalateShots");
        assert_eq!(named.field("T", "shots").unwrap(), &Value::Int(512));
    }
}
