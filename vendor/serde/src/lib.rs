//! Offline vendored stand-in for the [`serde`](https://serde.rs) facade.
//!
//! crates.io is unreachable in the build container, so `Serialize` and
//! `Deserialize` are *marker traits* here: deriving them compiles and
//! records serialisability intent, but no wire format exists until the real
//! serde is restored (tracked in ROADMAP.md "Open items").  Keeping the
//! derives in place means the eventual swap is a dependency change only.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl Serialize for str {}
