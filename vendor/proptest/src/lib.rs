//! Offline vendored stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the subset the integration tests use: the `proptest!` macro with
//! an optional `#![proptest_config(..)]` header, range strategies
//! (`low..high` on ints and floats), and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design of a minimal offline stub:
//! inputs are sampled uniformly from the ranges (no boundary-value bias),
//! and failing cases are reported with their inputs but **not shrunk**.
//! Runs are deterministic: the RNG is seeded from the test's module path and
//! name, so failures reproduce exactly under `cargo test`.  Restoring the
//! real proptest is a dependency swap (ROADMAP.md "Open items").

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of values for one generated test parameter.
    pub trait Strategy {
        type Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty proptest range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn sample_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty proptest range");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty proptest range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty proptest range");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `Just`-style constant strategy, for completeness.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real proptest defaults to 256; the stub trims that to keep
            // the suite fast while still exercising a spread of inputs.
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 RNG used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: hash }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The test-definition macro.  Supports the shape
/// `proptest! { #![proptest_config(expr)] #[test] fn name(arg in strategy, ..) { body } .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample_value(&($strategy), &mut rng);)+
                // `prop_assume!` expands to `continue`, skipping this case.
                #[allow(clippy::redundant_closure_call)]
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Assert inside a `proptest!` body, reporting the generated inputs on panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("proptest assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!(
                "proptest assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            panic!(
                "proptest assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            panic!(
                "proptest assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            );
        }
    }};
}

/// Skip the current generated case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, k in 3u32..9, seed in 0u64..100) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((3..9).contains(&k));
            prop_assert!(seed < 100);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("a");
        let mut c = TestRng::deterministic("b");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
