//! Offline stand-in for the [`num-complex`](https://crates.io/crates/num-complex)
//! crate.  Implements `Complex<T>` for the float types this workspace uses,
//! with the field names, constructors and method set of the real crate so a
//! later swap back to crates.io is transparent.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + im·i`.
///
/// `repr(C)` as in the real crate, so a `[Complex<f64>]` slice may be
/// reinterpreted as interleaved `[re, im, re, im, ...]` scalars (the SIMD
/// statevector kernels in `qls-sim` rely on this).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct Complex<T> {
    pub re: T,
    pub im: T,
}

pub type Complex32 = Complex<f32>;
pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Self { re, im }
    }
}

/// Forward every `&`-operand combination of a binary op to the by-value impl,
/// matching the real num-complex's reference impls.
macro_rules! forward_ref_binop {
    ($t:ty, $op:ident, $method:ident) => {
        impl $op<&Complex<$t>> for Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: &Complex<$t>) -> Complex<$t> {
                self.$method(*rhs)
            }
        }

        impl $op<Complex<$t>> for &Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: Complex<$t>) -> Complex<$t> {
                (*self).$method(rhs)
            }
        }

        impl $op<&Complex<$t>> for &Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: &Complex<$t>) -> Complex<$t> {
                (*self).$method(*rhs)
            }
        }

        impl $op<$t> for &Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: $t) -> Complex<$t> {
                (*self).$method(rhs)
            }
        }

        impl $op<&$t> for Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: &$t) -> Complex<$t> {
                self.$method(*rhs)
            }
        }

        impl $op<&Complex<$t>> for $t {
            type Output = Complex<$t>;
            #[inline]
            fn $method(self, rhs: &Complex<$t>) -> Complex<$t> {
                self.$method(*rhs)
            }
        }
    };
}

macro_rules! impl_complex_float {
    ($t:ty) => {
        impl Complex<$t> {
            pub const ZERO: Self = Self::new(0.0, 0.0);
            pub const ONE: Self = Self::new(1.0, 0.0);
            pub const I: Self = Self::new(0.0, 1.0);

            /// The imaginary unit.
            #[inline]
            pub const fn i() -> Self {
                Self::I
            }

            /// Build from polar form `r·e^{iθ}`.
            #[inline]
            pub fn from_polar(r: $t, theta: $t) -> Self {
                Self::new(r * theta.cos(), r * theta.sin())
            }

            /// Complex cis(θ) = e^{iθ}.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                Self::from_polar(1.0, theta)
            }

            /// Squared modulus `re² + im²`.
            #[inline]
            pub fn norm_sqr(&self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Modulus, computed with `hypot` for robustness.
            #[inline]
            pub fn norm(&self) -> $t {
                self.re.hypot(self.im)
            }

            /// L1 norm `|re| + |im|`.
            #[inline]
            pub fn l1_norm(&self) -> $t {
                self.re.abs() + self.im.abs()
            }

            /// Argument (phase angle) in `(-π, π]`.
            #[inline]
            pub fn arg(&self) -> $t {
                self.im.atan2(self.re)
            }

            /// Complex conjugate.
            #[inline]
            pub fn conj(&self) -> Self {
                Self::new(self.re, -self.im)
            }

            /// Polar decomposition `(r, θ)`.
            #[inline]
            pub fn to_polar(&self) -> ($t, $t) {
                (self.norm(), self.arg())
            }

            /// Multiplicative inverse.
            #[inline]
            pub fn inv(&self) -> Self {
                let d = self.norm_sqr();
                Self::new(self.re / d, -self.im / d)
            }

            /// Multiply by a real scalar.
            #[inline]
            pub fn scale(&self, t: $t) -> Self {
                Self::new(self.re * t, self.im * t)
            }

            /// Divide by a real scalar.
            #[inline]
            pub fn unscale(&self, t: $t) -> Self {
                Self::new(self.re / t, self.im / t)
            }

            /// Complex exponential.
            #[inline]
            pub fn exp(&self) -> Self {
                Self::from_polar(self.re.exp(), self.im)
            }

            /// Principal natural logarithm.
            #[inline]
            pub fn ln(&self) -> Self {
                Self::new(self.norm().ln(), self.arg())
            }

            /// Principal square root.
            #[inline]
            pub fn sqrt(&self) -> Self {
                let (r, theta) = self.to_polar();
                Self::from_polar(r.sqrt(), theta / 2.0)
            }

            /// Integer power by repeated polar scaling.
            #[inline]
            pub fn powi(&self, n: i32) -> Self {
                let (r, theta) = self.to_polar();
                Self::from_polar(r.powi(n), theta * n as $t)
            }

            /// Real power.
            #[inline]
            pub fn powf(&self, x: $t) -> Self {
                let (r, theta) = self.to_polar();
                Self::from_polar(r.powf(x), theta * x)
            }

            #[inline]
            pub fn is_nan(&self) -> bool {
                self.re.is_nan() || self.im.is_nan()
            }

            #[inline]
            pub fn is_finite(&self) -> bool {
                self.re.is_finite() && self.im.is_finite()
            }
        }

        impl Add for Complex<$t> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self::new(self.re + rhs.re, self.im + rhs.im)
            }
        }

        impl Sub for Complex<$t> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self::new(self.re - rhs.re, self.im - rhs.im)
            }
        }

        impl Mul for Complex<$t> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                Self::new(
                    self.re * rhs.re - self.im * rhs.im,
                    self.re * rhs.im + self.im * rhs.re,
                )
            }
        }

        impl Div for Complex<$t> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: Self) -> Self {
                let d = rhs.norm_sqr();
                Self::new(
                    (self.re * rhs.re + self.im * rhs.im) / d,
                    (self.im * rhs.re - self.re * rhs.im) / d,
                )
            }
        }

        impl Neg for Complex<$t> {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::new(-self.re, -self.im)
            }
        }

        impl Add<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: $t) -> Self {
                Self::new(self.re + rhs, self.im)
            }
        }

        impl Sub<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: $t) -> Self {
                Self::new(self.re - rhs, self.im)
            }
        }

        impl Mul<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: $t) -> Self {
                self.scale(rhs)
            }
        }

        impl Div<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: $t) -> Self {
                self.unscale(rhs)
            }
        }

        impl Add<Complex<$t>> for $t {
            type Output = Complex<$t>;
            #[inline]
            fn add(self, rhs: Complex<$t>) -> Complex<$t> {
                Complex::new(self + rhs.re, rhs.im)
            }
        }

        impl Sub<Complex<$t>> for $t {
            type Output = Complex<$t>;
            #[inline]
            fn sub(self, rhs: Complex<$t>) -> Complex<$t> {
                Complex::new(self - rhs.re, -rhs.im)
            }
        }

        impl Mul<Complex<$t>> for $t {
            type Output = Complex<$t>;
            #[inline]
            fn mul(self, rhs: Complex<$t>) -> Complex<$t> {
                rhs.scale(self)
            }
        }

        impl Div<Complex<$t>> for $t {
            type Output = Complex<$t>;
            #[inline]
            fn div(self, rhs: Complex<$t>) -> Complex<$t> {
                rhs.inv().scale(self)
            }
        }

        forward_ref_binop!($t, Add, add);
        forward_ref_binop!($t, Sub, sub);
        forward_ref_binop!($t, Mul, mul);
        forward_ref_binop!($t, Div, div);

        impl Neg for &Complex<$t> {
            type Output = Complex<$t>;
            #[inline]
            fn neg(self) -> Complex<$t> {
                -*self
            }
        }

        impl AddAssign for Complex<$t> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }

        impl SubAssign for Complex<$t> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }

        impl MulAssign for Complex<$t> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl DivAssign for Complex<$t> {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }

        impl MulAssign<$t> for Complex<$t> {
            #[inline]
            fn mul_assign(&mut self, rhs: $t) {
                *self = self.scale(rhs);
            }
        }

        impl DivAssign<$t> for Complex<$t> {
            #[inline]
            fn div_assign(&mut self, rhs: $t) {
                *self = self.unscale(rhs);
            }
        }

        impl Sum for Complex<$t> {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, c| acc + c)
            }
        }

        impl<'a> Sum<&'a Complex<$t>> for Complex<$t> {
            fn sum<I: Iterator<Item = &'a Complex<$t>>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, c| acc + *c)
            }
        }

        impl Product for Complex<$t> {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ONE, |acc, c| acc * c)
            }
        }

        impl From<$t> for Complex<$t> {
            #[inline]
            fn from(re: $t) -> Self {
                Self::new(re, 0.0)
            }
        }

        impl fmt::Display for Complex<$t> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.im < 0.0 {
                    write!(f, "{}-{}i", self.re, -self.im)
                } else {
                    write!(f, "{}+{}i", self.re, self.im)
                }
            }
        }
    };
}

impl_complex_float!(f32);
impl_complex_float!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 3.0);
        assert!(((a * b) / b - a).norm() < 1e-12);
        assert!((a * a.inv() - Complex64::ONE).norm() < 1e-12);
        assert!((a + b - b - a).norm() < 1e-15);
        assert_eq!((a.conj() * a).im, 0.0);
        assert!(((a.conj() * a).re - a.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        let (r, theta) = z.to_polar();
        assert!((r - 2.0).abs() < 1e-12);
        assert!((theta - 0.7).abs() < 1e-12);
        assert!((z.sqrt() * z.sqrt() - z).norm() < 1e-12);
    }

    #[test]
    fn sum_and_scale() {
        let zs = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)];
        let s: Complex64 = zs.iter().sum();
        assert_eq!(s, Complex64::new(3.0, -2.0));
        assert_eq!(2.0 * Complex64::new(1.0, -1.0), Complex64::new(2.0, -2.0));
    }
}
