//! Offline vendored stand-in for `serde_derive` — real field-wise codegen.
//!
//! The container cannot reach crates.io, so this proc-macro crate uses
//! nothing beyond the compiler-provided `proc_macro` API (no `syn`/`quote`).
//! Through PR 9 it emitted empty marker impls; it now parses the item's
//! fields and generates genuine `Serialize`/`Deserialize` impls against the
//! vendored `serde`'s [`Value`] data model:
//!
//! * structs with named fields → `Value::Map` keyed by field name,
//! * tuple structs → `Value::Seq`, unit structs → `Value::Null`,
//! * enums → unit variants as `Value::Str(name)`, tuple variants as
//!   `{"$variant": name, "$fields": [...]}`, struct variants as
//!   `{"$variant": name, field: value, ...}`.
//!
//! Generic type parameters get `::serde::Serialize` /
//! `::serde::Deserialize<'de>` where-bounds.  Field *types* are never
//! parsed — the generated code lets inference pick the right impl — so the
//! parser only has to recognise field/variant names, which keeps it honest
//! without a full Rust grammar.  `#[serde(...)]` attributes are accepted
//! but ignored (subset).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Parsed shape of a `struct`/`enum` item.
struct Item {
    name: String,
    /// Declaration-site generics with bounds, e.g. `<T: Bound, const N: usize>`.
    decl_generics: String,
    /// Use-site arguments, e.g. `<T, N>`.
    use_generics: String,
    /// Names of the type parameters (for where-clause bounds).
    type_params: Vec<String>,
    /// Original where-clause predicates (without the `where` keyword).
    where_predicates: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` / `enum` keyword.
    let mut is_enum = false;
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                is_enum = word == "enum";
                break;
            }
            if word == "union" {
                panic!("serde_derive stand-in: unions are not supported");
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive stand-in: expected type name, found {other:?}"),
    };

    // Collect the token texts between the outer `<` and `>` if present.
    let mut inner: Vec<String> = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            let text = tt.to_string();
            match text.as_str() {
                "<" => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            inner.push(text);
        }
    }

    // Split the parameter list at top-level commas (depth tracked on < >;
    // parens/brackets/braces arrive as single group tokens, so only angle
    // brackets can nest here) and keep just each parameter's identifier:
    // `'a` -> `'a`, `T: Bound = Default` -> `T`, `const N: usize` -> `N`.
    let mut params: Vec<Vec<String>> = vec![Vec::new()];
    let mut depth = 0i32;
    for text in &inner {
        match text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "," if depth == 0 => {
                params.push(Vec::new());
                continue;
            }
            _ => {}
        }
        params.last_mut().unwrap().push(text.clone());
    }
    let mut use_args: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    for param in params.iter().filter(|p| !p.is_empty()) {
        if param[0] == "'" {
            // A lifetime arrives as a `'` punct followed by its identifier.
            use_args.push(format!("'{}", param.get(1).cloned().unwrap_or_default()));
        } else if param[0] == "const" {
            use_args.push(param.get(1).cloned().unwrap_or_default());
        } else {
            use_args.push(param[0].clone());
            type_params.push(param[0].clone());
        }
    }

    // Join declaration tokens, keeping `'` glued to the lifetime name.
    let decl_generics = if inner.is_empty() {
        String::new()
    } else {
        let mut decl = String::from("<");
        for text in &inner {
            if !decl.ends_with(['<', '\'']) {
                decl.push(' ');
            }
            decl.push_str(text);
        }
        decl.push('>');
        decl
    };
    let use_generics = if use_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", use_args.join(", "))
    };

    // Body: an optional where clause, then `{...}` / `(...)` `;` / `;`.
    let mut where_predicates = String::new();
    let mut in_where = false;
    let mut shape = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Ident(ident) if ident.to_string() == "where" => {
                in_where = true;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                shape = Some(if is_enum {
                    Shape::Enum(parse_variants(g.stream()))
                } else {
                    Shape::NamedStruct(parse_named_fields(g.stream()))
                });
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !in_where => {
                shape = Some(Shape::TupleStruct(count_tuple_fields(g.stream())));
                // Trailing `where` clause (if any) and `;` follow.
                for rest in tokens.by_ref() {
                    if let TokenTree::Ident(id) = &rest {
                        if id.to_string() == "where" {
                            in_where = true;
                            continue;
                        }
                    }
                    if in_where && !matches!(&rest, TokenTree::Punct(p) if p.as_char() == ';') {
                        push_token_text(&mut where_predicates, &rest);
                    }
                }
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' && !in_where => {
                shape = Some(Shape::UnitStruct);
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' && in_where => {
                shape = Some(Shape::UnitStruct);
                break;
            }
            _ if in_where => push_token_text(&mut where_predicates, &tt),
            _ => {}
        }
    }

    Item {
        name,
        decl_generics,
        use_generics,
        type_params,
        where_predicates,
        shape: shape.unwrap_or(Shape::UnitStruct),
    }
}

fn push_token_text(out: &mut String, tt: &TokenTree) {
    if !out.is_empty() && !out.ends_with('\'') {
        out.push(' ');
    }
    out.push_str(&tt.to_string());
}

/// Skip `#[...]` attributes (doc comments included) at the cursor.
fn skip_attributes(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracket group of the attribute.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Skip `pub` / `pub(...)` visibility at the cursor.
fn skip_visibility(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Skip tokens until a depth-0 comma (depth tracked on `<`/`>`), consuming it.
fn skip_to_comma(tokens: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Field names of a named-field body (struct or enum variant).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => {
                fields.push(ident.to_string());
                skip_to_comma(&mut tokens);
            }
            None => return fields,
            other => panic!("serde_derive stand-in: expected field name, found {other:?}"),
        }
    }
}

/// Number of fields of a tuple body `(A, B, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut pending = false;
    let mut depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if pending {
                        count += 1;
                        pending = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => return variants,
            other => panic!("serde_derive stand-in: expected variant name, found {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                tokens.next();
                k
            }
            _ => VariantKind::Unit,
        };
        // Consume an explicit discriminant (`= expr`) and the separator.
        skip_to_comma(&mut tokens);
        variants.push(Variant { name, kind });
    }
}

/// JSON map key of a field: raw identifiers (`r#type`) drop the `r#`.
fn key_of(field: &str) -> &str {
    field.strip_prefix("r#").unwrap_or(field)
}

/// Assemble a where clause from the original predicates plus per-type-param
/// serde bounds.
fn where_clause(item: &Item, bound: &str) -> String {
    let mut preds: Vec<String> = Vec::new();
    if !item.where_predicates.trim().is_empty() {
        preds.push(
            item.where_predicates
                .trim()
                .trim_end_matches(',')
                .to_string(),
        );
    }
    for tp in &item.type_params {
        preds.push(format!("{tp}: {bound}"));
    }
    if preds.is_empty() {
        String::new()
    } else {
        format!("where {}", preds.join(", "))
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), ::serde::Serialize::serialize(&self.{f}))",
                        key_of(f)
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::enum_unit(\"{vname}\"),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let fields: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::enum_tuple(\"{vname}\", ::std::vec![{}]),",
                                binders.join(", "),
                                fields.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{}\", ::serde::Serialize::serialize({f}))",
                                        key_of(f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::enum_named(\"{vname}\", ::std::vec![{}]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl {} ::serde::Serialize for {name} {} {} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.decl_generics,
        item.use_generics,
        where_clause(&item, "::serde::Serialize"),
    )
    .parse()
    .expect("serde_derive stand-in: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::Value::field(__value, \"{name}\", \"{}\")?)?,",
                        key_of(f)
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(::serde::Value::seq_item(__value, \"{name}\", {i}usize)?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(::serde::Value::tuple_field(__value, \"{name}\", {i}usize)?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(::serde::Value::field(__value, \"{name}\", \"{}\")?)?,",
                                        key_of(f)
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                inits.join(" ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match ::serde::Value::variant_name(__value, \"{name}\")? {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"{name}\", __other)),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    let impl_generics = if item.decl_generics.is_empty() {
        "<'de>".to_string()
    } else {
        // Splice the 'de lifetime into the existing parameter list.
        format!("<'de, {}", item.decl_generics.trim_start_matches('<'))
    };
    format!(
        "#[automatically_derived]\n\
         impl {impl_generics} ::serde::Deserialize<'de> for {name} {} {} {{\n\
             fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}",
        item.use_generics,
        where_clause(&item, "::serde::Deserialize<'de>"),
    )
    .parse()
    .expect("serde_derive stand-in: generated Deserialize impl failed to parse")
}
