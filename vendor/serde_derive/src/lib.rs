//! Offline vendored stand-in for `serde_derive`.
//!
//! The container cannot reach crates.io, so this proc-macro crate (which
//! needs nothing beyond the compiler-provided `proc_macro` API) emits
//! *marker* impls for the vendored `serde`'s empty `Serialize` /
//! `Deserialize` traits.  That keeps every `#[derive(Serialize)]` in the
//! workspace compiling unchanged; actual wire formats arrive when the real
//! serde is restored (ROADMAP "Open items").

use proc_macro::{TokenStream, TokenTree};

/// Parsed shape of a `struct`/`enum` item: its name, the declaration-site
/// generics (`<T: Bound, const N: usize>`) and the use-site type arguments
/// with bounds and defaults stripped (`<T, N>`).
struct Item {
    name: String,
    decl_generics: String,
    use_generics: String,
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` / `enum` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other:?}"),
    };

    // Collect the token texts between the outer `<` and `>` if present.
    let mut inner: Vec<String> = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            let text = tt.to_string();
            match text.as_str() {
                "<" => {
                    depth += 1;
                    if depth == 1 {
                        continue;
                    }
                }
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            inner.push(text);
        }
    }
    if inner.is_empty() {
        return Item {
            name,
            decl_generics: String::new(),
            use_generics: String::new(),
        };
    }

    // Split the parameter list at top-level commas (depth tracked on < >;
    // parens/brackets/braces arrive as single group tokens, so only angle
    // brackets can nest here) and keep just each parameter's identifier:
    // `'a` -> `'a`, `T: Bound = Default` -> `T`, `const N: usize` -> `N`.
    let mut params: Vec<Vec<String>> = vec![Vec::new()];
    let mut depth = 0i32;
    for text in &inner {
        match text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "," if depth == 0 => {
                params.push(Vec::new());
                continue;
            }
            _ => {}
        }
        params.last_mut().unwrap().push(text.clone());
    }
    let mut use_args: Vec<String> = Vec::new();
    for param in params.iter().filter(|p| !p.is_empty()) {
        if param[0] == "'" {
            // A lifetime arrives as a `'` punct followed by its identifier.
            use_args.push(format!("'{}", param.get(1).cloned().unwrap_or_default()));
        } else if param[0] == "const" {
            use_args.push(param.get(1).cloned().unwrap_or_default());
        } else {
            use_args.push(param[0].clone());
        }
    }

    // Join declaration tokens, keeping `'` glued to the lifetime name.
    let mut decl = String::from("<");
    for text in &inner {
        if !decl.ends_with(['<', '\'']) {
            decl.push(' ');
        }
        decl.push_str(text);
    }
    decl.push('>');

    Item {
        name,
        decl_generics: decl,
        use_generics: format!("<{}>", use_args.join(", ")),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "impl {} ::serde::Serialize for {} {} {{}}",
        item.decl_generics, item.name, item.use_generics
    )
    .parse()
    .expect("serde_derive stub: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let impl_generics = if item.decl_generics.is_empty() {
        "<'de>".to_string()
    } else {
        // Splice the 'de lifetime into the existing parameter list.
        format!("<'de, {}", item.decl_generics.trim_start_matches('<'))
    };
    format!(
        "impl {impl_generics} ::serde::Deserialize<'de> for {} {} {{}}",
        item.name, item.use_generics
    )
    .parse()
    .expect("serde_derive stub: generated impl failed to parse")
}
