//! Offline vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the API subset the `qls-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple timing loop instead of criterion's statistical machinery:
//! each benchmark is warmed up once, then timed over `sample_size` batches,
//! and the per-iteration mean / min are printed.  Good enough to spot
//! order-of-magnitude regressions offline; the real crate drops back in
//! without source changes (ROADMAP.md "Open items").

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifier of a parameterised benchmark, e.g. `factor+solve/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and minimum per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up run, untimed.
        std::hint::black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            min = min.min(elapsed);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        last: None,
    };
    f(&mut bencher);
    match bencher.last {
        Some((mean, min)) => {
            println!("bench {name:<56} mean {mean:>12.2?}   min {min:>12.2?}   ({samples} samples)")
        }
        None => println!("bench {name:<56} (no iter() call)"),
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.samples, |bencher| f(bencher, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id(), self.default_samples, f);
        self
    }

    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.default_samples = samples.max(1);
        self
    }

    /// Configuration hook kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Re-exported for call sites that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_their_closures() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |bencher| {
            bencher.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
