//! Offline vendored stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The build container has no crates.io access, so the parallel-iterator
//! entry points the workspace uses (`into_par_iter`, `par_iter`,
//! `par_chunks`, `par_chunks_mut`) are provided here as **sequential**
//! adapters returning ordinary `std` iterators.  All call sites keep their
//! rayon shape, so restoring the real crate later re-enables parallelism
//! with zero source changes (tracked in ROADMAP.md "Open items").
//!
//! Because the adapters return `std` iterators, the full `Iterator` method
//! set (`map`, `enumerate`, `for_each`, `collect`, …) doubles as the
//! `ParallelIterator` surface.

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Item = <&'data I as IntoIterator>::Item;
    type Iter = <&'data I as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Item = <&'data mut I as IntoIterator>::Item;
    type Iter = <&'data mut I as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> core::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> core::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Sequential stand-in for `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> core::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Number of "worker threads" — always 1 in the sequential stand-in.
pub fn current_num_threads() -> usize {
    1
}

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn adapters_match_sequential_results() {
        let squares: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);

        let mut data = [1u32; 6];
        data.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as u32));
        assert_eq!(data, [1, 1, 2, 2, 3, 3]);

        let total: u32 = data.par_iter().sum();
        assert_eq!(total, 12);
    }
}
