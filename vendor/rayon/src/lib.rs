//! Offline vendored stand-in for [`rayon`](https://crates.io/crates/rayon)
//! with **real thread parallelism**.
//!
//! The build container has no crates.io access, so this crate provides the
//! parallel-iterator entry points the workspace uses (`into_par_iter` on
//! index ranges, `par_iter` / `par_iter_mut` on slices, `par_chunks` /
//! `par_chunks_mut`, `join`) backed by `std::thread::scope` chunked fan-out:
//! the index space is split into one contiguous block per worker and each
//! block runs on its own scoped thread.  Worker count is
//! `std::thread::available_parallelism()` (overridable via the
//! `RAYON_NUM_THREADS` environment variable, like the real crate, or
//! scoped per call tree via [`ThreadPoolBuilder`] + [`ThreadPool::install`]).
//!
//! All call sites keep their rayon shape, so restoring the real crate later
//! is still a `[workspace.dependencies]` edit (tracked in ROADMAP.md "Open
//! items").  Differences from real rayon, by design of a minimal stand-in:
//!
//! * static contiguous splitting instead of work stealing — fine for the
//!   uniform per-element workloads in this workspace;
//! * threads are spawned per call instead of pooled — the fan-out is only
//!   used above coarse work thresholds where spawn cost is noise;
//! * `ThreadPool::install` sets a thread-local worker-count override for the
//!   duration of the closure (it does not pin work to dedicated threads), and
//!   the override is not inherited by nested parallel calls made *from worker
//!   threads* — no such nesting exists in this workspace;
//! * only the adapter/consumer combinations the workspace uses are provided
//!   (`map().collect()`, `for_each`, `for_each_init`, `enumerate().for_each`,
//!   `sum`).

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Worker-count configuration
// ---------------------------------------------------------------------------

/// Process-wide default worker count: `RAYON_NUM_THREADS` if set and positive,
/// otherwise `available_parallelism()`.
fn default_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static INSTALLED_NUM_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls on this thread will fan out to.
pub fn current_num_threads() -> usize {
    INSTALLED_NUM_THREADS
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

/// Error type kept for API compatibility with `rayon::ThreadPoolBuildError`;
/// the stand-in's pools cannot actually fail to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the worker-count knob.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (0 means "use the default", like real rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_num_threads),
        })
    }
}

/// A "pool" carrying a fixed worker count; [`install`](ThreadPool::install)
/// scopes that count over a closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's worker count as the fan-out width for every
    /// parallel call it makes (restored on exit, panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_NUM_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(INSTALLED_NUM_THREADS.with(|c| c.replace(Some(self.num_threads))));
        op()
    }
}

// ---------------------------------------------------------------------------
// Scoped-thread fan-out core
// ---------------------------------------------------------------------------

/// Split `0..len` into at most `parts` contiguous ranges of near-equal size.
fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `body` over every contiguous sub-range of `0..len`, fanning out to the
/// current worker count with `std::thread::scope`.  The final sub-range runs
/// on the calling thread so a fan-out of `t` spawns `t - 1` threads.
fn par_for_ranges<F: Fn(Range<usize>) + Sync>(len: usize, body: F) {
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        if len > 0 {
            body(0..len);
        }
        return;
    }
    let mut ranges = split_ranges(len, threads);
    let last = ranges.pop().expect("threads >= 2 implies ranges");
    std::thread::scope(|s| {
        for r in ranges {
            let body = &body;
            s.spawn(move || body(r));
        }
        body(last);
    });
}

/// Map every contiguous sub-range of `0..len` to an ordered part, in
/// parallel, and return the parts in index order.
fn par_map_ranges<T, F>(len: usize, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return if len == 0 {
            Vec::new()
        } else {
            vec![body(0..len)]
        };
    }
    let ranges = split_ranges(len, threads);
    let mut parts: Vec<Option<T>> = (0..ranges.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut slots = parts.as_mut_slice();
        let mut iter = ranges.into_iter().peekable();
        while let Some(r) = iter.next() {
            let (slot, rest) = slots.split_first_mut().expect("one slot per range");
            slots = rest;
            let body = &body;
            if iter.peek().is_some() {
                s.spawn(move || *slot = Some(body(r)));
            } else {
                *slot = Some(body(r));
            }
        }
    });
    parts
        .into_iter()
        .map(|p| p.expect("every range produced a part"))
        .collect()
}

/// Parallel two-way fork, mirroring `rayon::join` (runs `b` on a scoped
/// thread while `a` runs on the calling thread).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

// ---------------------------------------------------------------------------
// Parallel iterators over index ranges
// ---------------------------------------------------------------------------

/// Collection buildable from ordered per-worker parts (stand-in for
/// `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T> {
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self {
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> ParRangeMap<T, F> {
        ParRangeMap {
            range: self.range,
            f,
            _out: std::marker::PhantomData,
        }
    }

    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.range.start;
        par_for_ranges(self.range.len(), |r| {
            for i in r {
                f(start + i);
            }
        });
    }

    /// Like `for_each`, but hands every worker a private scratch value built
    /// by `init` (mirrors `rayon`'s `for_each_init`).
    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) + Sync,
    {
        let start = self.range.start;
        par_for_ranges(self.range.len(), |r| {
            let mut scratch = init();
            for i in r {
                f(&mut scratch, start + i);
            }
        });
    }
}

/// `map` adapter over a parallel index range.
pub struct ParRangeMap<T, F> {
    range: Range<usize>,
    f: F,
    _out: std::marker::PhantomData<fn() -> T>,
}

impl<T, F> ParRangeMap<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        let start = self.range.start;
        let f = &self.f;
        let parts = par_map_ranges(self.range.len(), |r| {
            r.map(|i| f(start + i)).collect::<Vec<T>>()
        });
        C::from_ordered_parts(parts)
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        let start = self.range.start;
        let f = &self.f;
        let parts = par_map_ranges(self.range.len(), |r| r.map(|i| f(start + i)).sum::<S>());
        parts.into_iter().sum()
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators over slices
// ---------------------------------------------------------------------------

/// Stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

/// Parallel shared iterator over a slice.
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParSliceIter<'data, T> {
    pub fn for_each<F: Fn(&'data T) + Sync>(self, f: F) {
        let slice = self.slice;
        par_for_ranges(slice.len(), |r| {
            for item in &slice[r] {
                f(item);
            }
        });
    }

    pub fn map<U, F: Fn(&'data T) -> U + Sync>(self, f: F) -> ParSliceMap<'data, T, U, F> {
        ParSliceMap {
            slice: self.slice,
            f,
            _out: std::marker::PhantomData,
        }
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<&'data T> + std::iter::Sum<S>,
    {
        let slice = self.slice;
        let parts = par_map_ranges(slice.len(), |r| slice[r].iter().sum::<S>());
        parts.into_iter().sum()
    }
}

/// `map` adapter over a parallel slice iterator.
pub struct ParSliceMap<'data, T, U, F> {
    slice: &'data [T],
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<'data, T, U, F> ParSliceMap<'data, T, U, F>
where
    T: Sync,
    U: Send,
    F: Fn(&'data T) -> U + Sync,
{
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        let slice = self.slice;
        let f = &self.f;
        let parts = par_map_ranges(slice.len(), |r| slice[r].iter().map(f).collect::<Vec<U>>());
        C::from_ordered_parts(parts)
    }

    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<U> + std::iter::Sum<S>,
    {
        let slice = self.slice;
        let f = &self.f;
        let parts = par_map_ranges(slice.len(), |r| slice[r].iter().map(f).sum::<S>());
        parts.into_iter().sum()
    }
}

/// Stand-in for `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter;

    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParSliceIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParSliceIterMut<'data, T> {
        ParSliceIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParSliceIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParSliceIterMut<'data, T> {
        ParSliceIterMut { slice: self }
    }
}

/// Parallel exclusive iterator over a slice.
pub struct ParSliceIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParSliceIterMut<'data, T> {
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        par_split_mut(self.slice, 1, |_, part| {
            for item in part {
                f(item);
            }
        });
    }

    pub fn enumerate(self) -> ParSliceIterMutEnumerate<'data, T> {
        ParSliceIterMutEnumerate { slice: self.slice }
    }
}

/// Enumerated parallel exclusive iterator over a slice.
pub struct ParSliceIterMutEnumerate<'data, T> {
    slice: &'data mut [T],
}

impl<T: Send> ParSliceIterMutEnumerate<'_, T> {
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        par_split_mut(self.slice, 1, |base, part| {
            for (i, item) in part.iter_mut().enumerate() {
                f((base + i, item));
            }
        });
    }
}

/// Fan a mutable slice out to the current worker count: each worker receives
/// a contiguous sub-slice aligned to `chunk` elements, together with the index
/// (in `chunk` units) of its first element.
fn par_split_mut<T: Send, F>(slice: &mut [T], chunk: usize, body: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let nchunks = slice.len().div_ceil(chunk.max(1));
    let threads = current_num_threads().min(nchunks);
    if threads <= 1 {
        if !slice.is_empty() {
            body(0, slice);
        }
        return;
    }
    let ranges = split_ranges(nchunks, threads);
    std::thread::scope(|s| {
        let mut rest = slice;
        let mut iter = ranges.into_iter().peekable();
        while let Some(r) = iter.next() {
            let take = (r.len() * chunk).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let body = &body;
            if iter.peek().is_some() {
                s.spawn(move || body(r.start, head));
            } else {
                body(r.start, head);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Parallel chunk iterators
// ---------------------------------------------------------------------------

/// Stand-in for `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunks {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over shared chunks of a slice.
pub struct ParChunks<'data, T> {
    slice: &'data [T],
    size: usize,
}

impl<'data, T: Sync> ParChunks<'data, T> {
    pub fn for_each<F: Fn(&'data [T]) + Sync>(self, f: F) {
        let (slice, size) = (self.slice, self.size);
        let nchunks = slice.len().div_ceil(size);
        par_for_ranges(nchunks, |r| {
            for c in r {
                let start = c * size;
                let end = (start + size).min(slice.len());
                f(&slice[start..end]);
            }
        });
    }

    pub fn enumerate(self) -> ParChunksEnumerate<'data, T> {
        ParChunksEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Enumerated parallel iterator over shared chunks.
pub struct ParChunksEnumerate<'data, T> {
    slice: &'data [T],
    size: usize,
}

impl<'data, T: Sync> ParChunksEnumerate<'data, T> {
    pub fn for_each<F: Fn((usize, &'data [T])) + Sync>(self, f: F) {
        let (slice, size) = (self.slice, self.size);
        let nchunks = slice.len().div_ceil(size);
        par_for_ranges(nchunks, |r| {
            for c in r {
                let start = c * size;
                let end = (start + size).min(slice.len());
                f((c, &slice[start..end]));
            }
        });
    }
}

/// Stand-in for `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Parallel iterator over exclusive chunks of a slice.
pub struct ParChunksMut<'data, T> {
    slice: &'data mut [T],
    size: usize,
}

impl<'data, T: Send> ParChunksMut<'data, T> {
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        let size = self.size;
        par_split_mut(self.slice, size, |_, part| {
            for chunk in part.chunks_mut(size) {
                f(chunk);
            }
        });
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'data, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Enumerated parallel iterator over exclusive chunks.
pub struct ParChunksMutEnumerate<'data, T> {
    slice: &'data mut [T],
    size: usize,
}

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let size = self.size;
        par_split_mut(self.slice, size, |base, part| {
            for (i, chunk) in part.chunks_mut(size).enumerate() {
                f((base + i, chunk));
            }
        });
    }
}

pub mod iter {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator,
    };
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Run a closure at several installed worker counts, checking the result
    /// never changes.
    fn at_thread_counts<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
        let reference = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(&f);
        for threads in [2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.install(&f), reference, "threads = {threads}");
        }
    }

    #[test]
    fn range_map_collect_is_ordered() {
        at_thread_counts(|| {
            (0..100usize)
                .into_par_iter()
                .map(|i| i * i)
                .collect::<Vec<usize>>()
        });
        let squares: Vec<usize> = (0..8usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn range_for_each_visits_every_index_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                (0..97usize).into_par_iter().for_each(|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                })
            });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_init_builds_scratch_per_worker() {
        // The scratch closure must observe a fresh value per worker but the
        // per-index work must still cover everything exactly once.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..50usize).into_par_iter().for_each_init(
            || 0usize,
            |scratch, i| {
                *scratch += 1;
                sum.fetch_add(i, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 49 * 50 / 2);
    }

    #[test]
    fn chunks_mut_match_sequential_results() {
        at_thread_counts(|| {
            let mut data = [1u32; 64];
            data.par_chunks_mut(2)
                .enumerate()
                .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as u32));
            data
        });
        let mut data = [1u32; 6];
        data.par_chunks_mut(2)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|x| *x += i as u32));
        assert_eq!(data, [1, 1, 2, 2, 3, 3]);

        let total: u32 = data.par_iter().sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn ragged_tail_chunk_is_delivered() {
        // 7 elements in chunks of 3: chunk indices 0, 1, 2 with lengths 3, 3, 1.
        at_thread_counts(|| {
            let mut data = [0usize; 7];
            data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
                let len = chunk.len();
                chunk.iter_mut().for_each(|x| *x = 10 * i + len);
            });
            data
        });
    }

    #[test]
    fn slice_par_iter_map_and_sum() {
        let data: Vec<u64> = (1..=100).collect();
        let doubled: Vec<u64> = data.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled[99], 200);
        let s: u64 = data.par_iter().sum();
        assert_eq!(s, 5050);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut data: Vec<i64> = (0..33).collect();
        data.par_iter_mut().for_each(|x| *x = -*x);
        assert!(data.iter().enumerate().all(|(i, &x)| x == -(i as i64)));
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = join(|| 6 * 7, || "right".len());
        assert_eq!((a, b), (42, 5));
    }

    #[test]
    fn install_overrides_and_restores_worker_count() {
        let outside = current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 5);
        assert_eq!(pool.current_num_threads(), 5);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn empty_inputs_are_noops() {
        let empty: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(empty.is_empty());
        (0..0usize).into_par_iter().for_each(|_| panic!("no items"));
        let mut nothing: [u8; 0] = [];
        nothing.par_chunks_mut(4).for_each(|_| panic!("no chunks"));
    }

    #[test]
    fn split_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 97] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = split_ranges(len, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, len);
            }
        }
    }
}
