//! # qls — mixed-precision quantum-classical linear-system solver
//!
//! Facade crate of the workspace: re-exports the sub-crates and provides a
//! [`prelude`] so the examples and downstream users can pull in everything the
//! paper's workflow needs with a single `use`.
//!
//! The workspace reproduces *"A mixed-precision quantum-classical algorithm
//! for solving linear systems"* (Koska–Baboulin–Gazda):
//!
//! * [`linalg`] (`qls-linalg`) — the classical substrate: dense linear
//!   algebra, precision emulation, classical iterative refinement, the
//!   structured-operator layer (`qls_linalg::operator::LinearOperator` with
//!   dense / CSR / tridiagonal / matrix-free stencil implementations, now
//!   including the d-dimensional `StencilNd` for 3-D Poisson) and the
//!   structured inner-solver layer
//!   (`qls_linalg::inner::FactorizableOperator`: Thomas for tridiagonal,
//!   Jacobi-CG / BiCGSTAB for CSR and stencils, dense LU retained as the
//!   oracle), so residuals, refinement *and the low-precision correction
//!   solves* all run at O(nnz) on structured problems — no classical
//!   refinement path densifies an O(N²) matrix;
//! * [`poly`] (`qls-poly`) — Chebyshev machinery and the Eq. (4) inverse
//!   polynomial;
//! * [`sim`] (`qls-sim`) — the state-vector quantum simulator (compiled
//!   in-place gate kernels with real thread fan-out; see the performance
//!   model in `qls_sim::kernels`), the circuit-optimizer pass
//!   (`qls_sim::fuse`: gate fusion + diagonal merging, on by default through
//!   `OptLevel::Fuse`, reported by `CircuitStats`), and the compile-once
//!   execution engine (`qls_sim::QuantumExecutor`: optimize + compile a
//!   circuit exactly once, `run` it many times, `run_batch` it across many
//!   registers with coarse-grained thread fan-out);
//!
//! ## Performance model: SIMD kernels + measured-cost fusion
//!
//! The hot loops — statevector gate sweeps (`qls_sim::simd`), CSR SpMV and
//! dense matvec/matmul (`qls_linalg::simd`) — are vectorized with the
//! `vendor/wide` `f64x4` stand-in (runtime `avx2,fma` dispatch on x86-64,
//! scalar fallback elsewhere).  The convention throughout: **one output
//! element per lane, accumulated in the scalar kernel's exact operation
//! order**, so every SIMD kernel is *bit-identical* to its retained scalar
//! oracle — toggle with `qls_sim::with_scalar_kernels` (statevector) or
//! call the `_scalar` twins (`matvec_scalar`/`matmul_scalar`) directly;
//! remainders that don't fill a lane group fall back to the same scalar
//! loops.  The fusion optimizer prices candidate fusions with a
//! **micro-calibrated cost model** (`qls_sim::CostModel::Measured`, the
//! `OptLevel::Fuse` default): at first optimize for a register size it
//! times one representative sweep per kernel class, caches the normalized
//! units thread-locally keyed by qubit count (`qls_sim::calibration_count`
//! audits the cache), and uses them to decide two-op lookahead (X·D·X
//! conjugations collapse to one diagonal) and mask-densifying fusion of
//! controlled ops with different control sets.  `CostModel::Static` keeps
//! the deterministic table for reproducible tests.
//!
//! ## Sharded execution: past the one-allocation wall
//!
//! `qls_sim::shard` splits the `2^n`-amplitude register at the shard
//! boundary `m = n − k` into `2^k` worker-owned chunks (`ShardedState`).
//! Ops supported below the boundary run embarrassingly parallel per chunk
//! with the *same* compiled kernels (SIMD bodies included); ops touching
//! global qubits execute via pairwise shard exchanges — partner shards swap
//! chunk halves, the ops run shard-locally with the qubit pair transposed,
//! the halves swap back — batched so one exchange round serves a run of
//! high-qubit ops.  Select it per engine with
//! `qls_sim::ExecMode::Sharded { shards }` (on `QuantumExecutor`,
//! `BlockEncodingExecutor::with_exec_mode`, `QsvtInverter::with_exec_mode`);
//! the flat register remains the **bit-identity oracle** at every shard
//! count (`tests/shard_equivalence.rs` in `qls-sim`).  Fusion cooperates:
//! `FusionOptions::with_shard_boundary` prices movement per exchanged qubit
//! with an `α + β·n` transfer model (fixed round latency + per-amplitude
//! traffic) and lets exchange-bearing ops merge past the dense cap, so
//! fused ops prefer low-qubit support and exchange rounds are retired
//! outright (0 rounds on the degree-117 QSVT circuit, vs 3 without the
//! preference); `qls_sim::sharding_stats` reports
//! per-shard memory and exchange rounds (see `examples/large_register.rs`
//! and the `sharded_vs_flat` workload of `bench_json`).
//! * [`encoding`] (`qls-encoding`) — state preparation and block-encodings;
//! * [`qsvt`] (`qls-qsvt`) — QSP phases, QSVT circuits, matrix inversion
//!   (compile-once: `QsvtInverter` compiles its circuit in `new` and offers
//!   batched multi-RHS solves via `solve_direction_batch`);
//! * [`core`] (`qls-core`) — the hybrid solver (Algorithm 2; `HybridRefiner`
//!   reuses one compiled circuit across all refinement iterations and all
//!   right-hand sides of `solve_many`, and accepts any `FactorizableOperator`
//!   — its classical residual path is O(nnz) on structured problems), cost
//!   models, communication model, baselines, the unified `QlsError`
//!   taxonomy, and the fault-recovery ladder (`RecoveryPolicy`: retry →
//!   escalate shots → tighten ε_l → classical fallback, audited in a
//!   `RecoveryLog`).
//!
//! ## Robustness: faults and recovery
//!
//! The simulator carries a seeded, deterministic fault layer
//! (`qls_sim::fault`): a declarative `FaultPlan` — Gaussian amplitude
//! noise, transient failures scheduled by run index, readout sign
//! corruption — executed by a `FaultInjector` that attaches to
//! `QuantumExecutor`, `QsvtInverter`, `QsvtLinearSolver` or `HybridRefiner`.
//! Only *checked* execution paths consult it; the plain paths never
//! degrade, so a no-fault configuration is bit-identical to the ideal
//! simulator (the equivalence-oracle pattern — asserted by
//! `tests/fault_recovery.rs` and the `qls-sim` fault suites).  On top, the
//! refiner's `RecoveryPolicy` ladder absorbs injected faults, failed
//! post-selections, non-finite values and stalled contraction; see
//! `examples/noisy_refinement.rs` for the end-to-end demonstration and
//! `qls_core::refine` for how to write deterministic fault tests.
//!
//! ## Persistent artifact cache: warm solver construction
//!
//! Building a circuit-mode solver is dominated by two one-time stages —
//! symmetric-QSP phase-factor iteration and the measured-cost fusion pass —
//! both pure functions of their inputs.  The [`cache`] crate (`qls-cache`)
//! makes repeat constructions a disk read: `QsvtInverter::new`,
//! `QsvtLinearSolver::new` and `HybridRefiner::new` consult per-kind stores
//! under `$QLS_CACHE_DIR` (default `~/.cache/qls`) before generating
//! anything, on by default via `QsvtSolverOptions::cache`
//! (`CachePolicy::Disabled` is the escape hatch; results are bit-identical
//! either way — the cache stores decisions, not approximations).
//!
//! **Fingerprint scheme.**  Entries are keyed by a 128-bit content hash
//! (two fixed-key SipHash-2-4 lanes, `qls_cache::FingerprintBuilder`) over
//! *every input the artifact depends on*, with floats hashed by IEEE-754
//! bit pattern: phase factors (kind `qsvt-phases`) hash the polynomial's
//! Chebyshev coefficients and the phase-finding options; fused circuits
//! (kind `fused-circuits`) hash the gate list (names, params, `Unitary`
//! entries, targets, controls), register width, fusion options, and the
//! machine fingerprint (arch + OS + SIMD class), because measured-cost
//! fusion decisions are timing-dependent; calibration tables (kind
//! `fusion-calibration`) hash the machine fingerprint and register size.
//!
//! **Invalidation rules.**  There is no staleness check at read time —
//! invalidation is structural: any input change produces a different
//! fingerprint (a never-found key), each kind carries an entry-format
//! version in both the directory layout and the JSON envelope (bumping it
//! orphans old entries), and corrupt or truncated files deserialize to a
//! miss, never an error.  Writes are atomic (temp file + rename), so
//! concurrent solvers race benignly.  `qls_cache::cache_hit_count` /
//! `cache_miss_count` audit the stores the same way `circuit_compile_count`
//! audits compilation; see `examples/warm_cache.rs` and the
//! `build_seconds_warm` / `warm_vs_cold_build_speedup` fields of
//! `BENCH_simulator.json`.
//!
//! ## Workspace layout
//!
//! ```text
//! Cargo.toml            workspace root + this `qls` facade crate
//! src/lib.rs            facade: re-exports + prelude
//! tests/                cross-crate integration and property tests
//! examples/             runnable walkthroughs (see below)
//! crates/<name>/        the seven qls-* member crates listed above
//! crates/bench/         criterion benches + figure/table binaries
//! vendor/<name>/        offline stand-ins for crates.io dependencies
//! ```
//!
//! The `vendor/` crates exist because the build environment has no network
//! access to crates.io: each one implements exactly the API subset the
//! workspace consumes (see each `vendor/*/src/lib.rs` header).  Restoring
//! the real dependencies is a `Cargo.toml`-only change.
//!
//! ## Building and testing
//!
//! The tier-1 gate every change must keep green:
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```
//!
//! Wider sweeps: `cargo test --workspace` runs every member crate's suite;
//! `cargo build --release --bins --examples` and `cargo bench --no-run`
//! prove all binaries, examples and benches compile.
//!
//! ## Examples, benches, figure binaries
//!
//! * `cargo run --release --example quickstart` — end-to-end hybrid solve
//!   (also `poisson1d`, `poisson1d_multirhs` — the batched multi-RHS
//!   workload — `poisson2d` — the matrix-free 2-D stencil workload —
//!   `noisy_refinement` — the fault-injection + recovery-ladder
//!   demonstration — `hhl_vs_qsvt`, `precision_tradeoff`,
//!   `circuit_resources`, and `large_register` — a 22-qubit circuit run
//!   through the sharded engine, printing per-shard memory and exchange
//!   rounds).
//! * `cargo bench` — criterion micro-benchmarks of every substrate
//!   (`crates/bench/benches/`).
//! * `cargo run --release -p qls-bench --bin table1` — regenerate Table I;
//!   likewise `table2`, `fig1_comms` … `fig5_complexity` for every figure
//!   and table of the paper's evaluation.
//! * `cargo run --release -p qls-bench --bin bench_json` — time the
//!   simulator's representative workloads and write the machine-readable
//!   perf-trajectory artifact `BENCH_simulator.json` (CI validates it with
//!   `--preset small`).

pub use qls_cache as cache;
pub use qls_core as core;
pub use qls_encoding as encoding;
pub use qls_linalg as linalg;
pub use qls_poly as poly;
pub use qls_qsvt as qsvt;
pub use qls_sim as sim;

/// Everything the examples and typical downstream code need, in one import.
pub mod prelude {
    pub use qls_cache::{cache_hit_count, cache_miss_count, with_cache_dir, CachePolicy};
    pub use qls_core::{
        classical_lu_solve, poisson_cost_breakdown, qsvt_degree_model, quantum_cost_comparison,
        sample_direction, CommunicationParameters, CommunicationSchedule, CostParameters,
        DirectQsvtSolver, Direction, FailureReason, HhlOptions, HhlResult, HhlSolver,
        HybridHistory, HybridRefinementOptions, HybridRefiner, HybridStatus, PoissonCostParameters,
        QlsError, QsvtLinearSolver, QsvtSolverOptions, RecoveryAction, RecoveryLog, RecoveryPolicy,
    };
    pub use qls_encoding::{
        BlockEncoding, BlockEncodingExecutor, BlockEncodingExt, DilationBlockEncoding,
        FableBlockEncoding, LcuBlockEncoding, StatePreparation, TridiagBlockEncoding,
    };
    pub use qls_linalg::generate::{
        convection_diffusion_1d, convection_diffusion_2d, graph_laplacian, random_connected_graph,
        random_matrix_with_cond, random_unit_vector, shifted_graph_laplacian, MatrixEnsemble,
        SingularValueDistribution,
    };
    pub use qls_linalg::tridiag::{poisson_rhs, sample_on_grid};
    pub use qls_linalg::{
        backward_error, cond_2, cond_2_estimate, forward_error, poisson_1d,
        poisson_1d_condition_number, poisson_2d, poisson_2d_condition_number, poisson_2d_rhs,
        poisson_3d, poisson_3d_condition_number, poisson_3d_rhs, scaled_residual, ClassicalRefiner,
        FactorizableOperator, InnerSolver, InnerSolverKind, LinearOperator, Matrix,
        RefinementOptions, SparseMatrix, StencilNd, StencilOperator, TridiagonalMatrix, Vector,
        DENSIFY_FALLBACK_MAX,
    };
    pub use qls_poly::{ChebyshevSeries, InversePolynomial};
    pub use qls_qsvt::{phase_generation_count, QsvtInverter, QsvtMode};
    pub use qls_sim::{
        calibration_count, estimate_resources, fusion_pass_count, fusion_stats, sharding_stats,
        with_scalar_kernels, Circuit, CircuitStats, CostModel, ExecMode, FaultInjector, FaultPlan,
        FusionOptions, Gate, OptLevel, QuantumExecutor, ShardedCircuit, ShardedState,
        ShardingStats, StateVector, TCountModel, TransientKind,
    };

    pub use rand::SeedableRng;

    /// Deterministic RNG for reproducible example runs.
    pub fn experiment_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_full_pipeline() {
        let mut rng = experiment_rng(1);
        let a = random_matrix_with_cond(
            8,
            5.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = random_unit_vector(8, &mut rng);
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-10,
                epsilon_l: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        let (x, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
        assert!(scaled_residual(&a, &x, &b) <= 1e-10);
    }
}
