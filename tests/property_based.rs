//! Property-based integration tests (proptest) on the cross-crate invariants:
//! whatever random well-conditioned system is drawn, the solver stack must
//! preserve its defining properties.

use proptest::prelude::*;
use qls::prelude::*;

/// Build a system from proptest-chosen parameters.
fn build_system(n_exp: u32, kappa: f64, seed: u64) -> (Matrix<f64>, Vector<f64>) {
    let n = 1usize << n_exp;
    let mut rng = experiment_rng(seed);
    let a = random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(n, &mut rng);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_matrices_have_the_requested_condition_number(
        n_exp in 2u32..5,
        kappa in 2.0f64..500.0,
        seed in 0u64..1000,
    ) {
        let (a, _) = build_system(n_exp, kappa, seed);
        let measured = cond_2(&a);
        prop_assert!((measured - kappa).abs() / kappa < 1e-6);
    }

    #[test]
    fn single_qsvt_solve_error_scales_with_epsilon_l(
        kappa in 2.0f64..50.0,
        seed in 0u64..1000,
    ) {
        let (a, b) = build_system(3, kappa, seed);
        let epsilon_l = 1e-3;
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions { epsilon_l, ..Default::default() },
        ).unwrap();
        let mut rng = experiment_rng(seed);
        let result = solver.solve(&b, &mut rng).unwrap();
        // Scaled residual of a single eps_l-accurate solve is at most ~eps_l * kappa.
        prop_assert!(result.scaled_residual <= epsilon_l * kappa * 2.0);
    }

    #[test]
    fn refinement_never_increases_the_scaled_residual(
        kappa in 2.0f64..100.0,
        seed in 0u64..1000,
    ) {
        let (a, b) = build_system(4, kappa, seed);
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-10,
                epsilon_l: 1e-3,
                ..Default::default()
            },
        ).unwrap();
        let mut rng = experiment_rng(seed + 1);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        for window in history.steps.windows(2) {
            prop_assert!(
                window[1].scaled_residual <= window[0].scaled_residual * (1.0 + 1e-9),
                "residual increased: {} -> {}",
                window[0].scaled_residual,
                window[1].scaled_residual
            );
        }
    }

    #[test]
    fn iteration_count_respects_the_theorem_bound(
        kappa in 2.0f64..100.0,
        seed in 0u64..1000,
    ) {
        let (a, b) = build_system(4, kappa, seed);
        let epsilon = 1e-9;
        let epsilon_l = 1e-3;
        prop_assume!(epsilon_l * kappa < 0.5);
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: epsilon,
                epsilon_l,
                ..Default::default()
            },
        ).unwrap();
        let mut rng = experiment_rng(seed + 2);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        prop_assert_eq!(history.status, HybridStatus::Converged);
        let bound = history.iteration_bound().unwrap();
        prop_assert!(history.iterations() <= bound);
    }

    #[test]
    fn dilation_block_encoding_is_always_valid(
        kappa in 1.5f64..50.0,
        seed in 0u64..1000,
    ) {
        let (a, _) = build_system(2, kappa, seed);
        let be = DilationBlockEncoding::new(&a, 0.0);
        prop_assert!(be.encoding_error(&a) < 1e-9);
        prop_assert!(be.alpha() >= 1.0 - 1e-12);
    }

    #[test]
    fn inverse_polynomial_approximates_inverse_on_domain(
        kappa in 2.0f64..80.0,
        log_eps in 1.0f64..5.0,
    ) {
        let eps = 10f64.powf(-log_eps);
        let poly = InversePolynomial::new(kappa, eps);
        prop_assert!(poly.max_relative_error(200) < 10.0 * eps);
        // Odd parity always holds.
        for x in [0.3, 0.7, 0.95] {
            prop_assert!((poly.eval(-x) + poly.eval(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn scale_recovery_is_exact_for_consistent_directions(
        scale in 0.1f64..50.0,
        seed in 0u64..1000,
    ) {
        // If the quantum routine returned the exact direction, Brent recovery
        // must find the exact norm.
        let (a, _) = build_system(3, 10.0, seed);
        let mut rng = experiment_rng(seed + 3);
        let x_true = random_unit_vector(8, &mut rng).scaled(scale);
        let b = a.matvec(&x_true);
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions { epsilon_l: 1e-6, ..Default::default() },
        ).unwrap();
        let result = solver.solve(&b, &mut rng).unwrap();
        prop_assert!((result.scale - scale).abs() / scale < 1e-3);
    }
}
