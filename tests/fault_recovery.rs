//! Acceptance suite of the robustness layer: seeded fault plans driven
//! through the whole facade stack (`FaultPlan` → `FaultInjector` →
//! `HybridRefiner`), asserting the three contracts of the PR:
//!
//! 1. with recovery **enabled**, a faulted solve converges and the actions
//!    taken are visible in the `RecoveryLog`;
//! 2. the **same plan** with recovery disabled fails (in-band
//!    `HybridStatus::Failed` / `Stagnated`, never a panic);
//! 3. with **no faults**, the recovery-capable refiner is bit-identical to
//!    the plain path (the equivalence oracle).

use qls::prelude::*;
use qls::sim::fault::SharedFaultInjector;

fn system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
    let mut rng = experiment_rng(seed);
    let a = random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(n, &mut rng);
    (a, b)
}

fn refiner_with(
    a: &Matrix<f64>,
    recovery: RecoveryPolicy,
    plan: Option<FaultPlan>,
) -> HybridRefiner {
    let mut refiner = HybridRefiner::new(
        a,
        HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-2,
            recovery,
            ..Default::default()
        },
    )
    .unwrap();
    if let Some(plan) = plan {
        let injector: SharedFaultInjector = FaultInjector::shared(plan);
        refiner.attach_fault_injector(injector);
    }
    refiner
}

#[test]
fn scheduled_transient_is_absorbed_by_a_retry() {
    // Run 0 is the initial solve; run 1 is the first correction solve.  The
    // transient kills exactly that run; the retry rung re-runs it cleanly.
    let (a, b) = system(10.0, 16, 301);
    let plan = FaultPlan::new(11).with_transient(1, TransientKind::InjectedError);

    let enabled = refiner_with(&a, RecoveryPolicy::full(), Some(plan.clone()));
    let mut rng = experiment_rng(5);
    let (x, history) = enabled.solve(&b, &mut rng).unwrap();
    assert_eq!(history.status, HybridStatus::RecoveredConverged);
    assert!(history.final_residual() <= 1e-10);
    assert!(scaled_residual(&a, &x, &b) <= 1e-10);
    assert_eq!(history.recovery.len(), 1, "{:?}", history.recovery);
    let event = history.recovery.events[0];
    assert_eq!(event.iteration, 1);
    assert_eq!(event.action, RecoveryAction::Retry);
    assert!(event.recovered);

    // The same plan with recovery disabled: an in-band failure, with the
    // partial history (the healthy initial solve) preserved.
    let disabled = refiner_with(&a, RecoveryPolicy::default(), Some(plan));
    let mut rng = experiment_rng(5);
    let (_, history) = disabled.solve(&b, &mut rng).unwrap();
    assert_eq!(
        history.status,
        HybridStatus::Failed {
            reason: FailureReason::InjectedFault
        }
    );
    assert_eq!(history.steps.len(), 1);
    assert!(history.recovery.is_empty());
}

#[test]
fn nan_poisoned_register_is_caught_at_the_boundary_and_recovered() {
    let (a, b) = system(10.0, 16, 302);
    let plan = FaultPlan::new(13).with_transient(0, TransientKind::NanPoison);

    // Disabled: the NaN never escapes into the iterate — it is caught at
    // the readout boundary and reported in-band.
    let disabled = refiner_with(&a, RecoveryPolicy::default(), Some(plan.clone()));
    let mut rng = experiment_rng(6);
    let (x, history) = disabled.solve(&b, &mut rng).unwrap();
    assert_eq!(
        history.status,
        HybridStatus::Failed {
            reason: FailureReason::NonFiniteReadout
        }
    );
    assert!(
        x.iter().all(|v| v.is_finite()),
        "NaN leaked into the iterate"
    );

    // Enabled: the poisoned initial solve is retried and the run converges.
    let enabled = refiner_with(&a, RecoveryPolicy::full(), Some(plan));
    let mut rng = experiment_rng(6);
    let (_, history) = enabled.solve(&b, &mut rng).unwrap();
    assert_eq!(history.status, HybridStatus::RecoveredConverged);
    assert_eq!(history.recovery.events[0].iteration, 0);
    assert!(history.recovery.events[0].recovered);
}

#[test]
fn heavy_amplitude_noise_degrades_to_the_classical_fallback() {
    // Noise so strong the quantum solves never contract (effective
    // ε_l·κ ≥ 1).  The full ladder walks retry → tighten (noise still
    // dominates) → classical fallback, which solves the correction exactly:
    // the run converges but is honestly labelled Degraded.
    let (a, b) = system(10.0, 16, 303);
    let plan = FaultPlan::new(17).with_amplitude_noise(0.1);

    let enabled = refiner_with(&a, RecoveryPolicy::full(), Some(plan.clone()));
    let mut rng = experiment_rng(7);
    let (x, history) = enabled.solve(&b, &mut rng).unwrap();
    assert_eq!(history.status, HybridStatus::Degraded);
    assert!(history.final_residual() <= 1e-10);
    assert!(scaled_residual(&a, &x, &b) <= 1e-10);
    assert!(history.recovery.used_classical_fallback());
    // The ladder was walked in its documented order before falling back.
    let actions: Vec<_> = history.recovery.events.iter().map(|e| e.action).collect();
    assert!(actions.contains(&RecoveryAction::Retry));
    assert!(actions.contains(&RecoveryAction::ClassicalFallback));

    // The same plan without recovery: the loop makes no progress and stops
    // in-band (stagnation window or iteration cap), never reaching target.
    let disabled = refiner_with(&a, RecoveryPolicy::default(), Some(plan));
    let mut rng = experiment_rng(7);
    let (_, history) = disabled.solve(&b, &mut rng).unwrap();
    assert!(
        !history.status.reached_target(),
        "noisy run claimed convergence: {:?}",
        history.status
    );
    assert!(history.final_residual() > 1e-10);
}

#[test]
fn no_fault_configuration_is_bit_identical_to_the_plain_path() {
    // The equivalence oracle at the facade level: recovery armed AND an
    // injector attached — but with an empty plan — must reproduce the plain
    // refiner float for float, with an empty recovery log.
    let (a, b) = system(10.0, 16, 304);
    let plain = refiner_with(&a, RecoveryPolicy::default(), None);
    let armed = refiner_with(&a, RecoveryPolicy::full(), Some(FaultPlan::new(23)));

    let mut rng_plain = experiment_rng(8);
    let mut rng_armed = experiment_rng(8);
    let (x_plain, h_plain) = plain.solve(&b, &mut rng_plain).unwrap();
    let (x_armed, h_armed) = armed.solve(&b, &mut rng_armed).unwrap();

    assert_eq!((&x_plain - &x_armed).norm2(), 0.0);
    assert_eq!(h_plain.status, HybridStatus::Converged);
    assert_eq!(h_armed.status, HybridStatus::Converged);
    assert_eq!(h_plain.steps.len(), h_armed.steps.len());
    for (p, a_) in h_plain.steps.iter().zip(&h_armed.steps) {
        assert_eq!(p.scaled_residual, a_.scaled_residual);
    }
    assert!(h_armed.recovery.is_empty());
}

#[test]
fn solve_many_quarantines_the_faulted_system() {
    // One transient at batch run index 1 (= the second system's initial
    // solve).  Without recovery that system fails in-band; its siblings
    // refine to convergence untouched.
    let (a, _) = system(10.0, 16, 305);
    let mut rng = experiment_rng(9);
    let bs: Vec<Vector<f64>> = (0..3).map(|_| random_unit_vector(16, &mut rng)).collect();
    let plan = FaultPlan::new(29).with_transient(1, TransientKind::InjectedError);

    let disabled = refiner_with(&a, RecoveryPolicy::default(), Some(plan.clone()));
    let results = disabled.solve_many(&bs, &mut rng).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[1].1.status,
        HybridStatus::Failed {
            reason: FailureReason::InjectedFault
        }
    );
    for k in [0usize, 2] {
        assert_eq!(results[k].1.status, HybridStatus::Converged, "system {k}");
        assert!(results[k].1.final_residual() <= 1e-10);
    }

    // With recovery the quarantined system is retried and the whole batch
    // converges.
    let enabled = refiner_with(&a, RecoveryPolicy::full(), Some(plan));
    let mut rng = experiment_rng(9);
    let bs: Vec<Vector<f64>> = {
        let _ = &mut rng; // same RHS set as above
        let mut r = experiment_rng(9);
        (0..3).map(|_| random_unit_vector(16, &mut r)).collect()
    };
    let results = enabled.solve_many(&bs, &mut rng).unwrap();
    for (k, (_, history)) in results.iter().enumerate() {
        assert!(
            history.status.reached_target(),
            "system {k}: {:?}",
            history.status
        );
    }
    assert!(!results[1].1.recovery.is_empty());
}

#[test]
fn readout_corruption_composes_with_finite_shot_sampling() {
    // Sign flips only exist on the sampled-readout path; with a generous
    // shot budget and the full ladder the run still reaches a coarse
    // target, and the log shows the ladder absorbing the corruption.
    let (a, b) = system(5.0, 8, 306);
    let plan = FaultPlan::new(31).with_readout_sign_flips(0.25);
    let mut refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-5,
            epsilon_l: 1e-2,
            max_iterations: 100,
            solver: QsvtSolverOptions {
                shots: Some(2_000_000),
                ..Default::default()
            },
            recovery: RecoveryPolicy::full(),
        },
    )
    .unwrap();
    refiner.attach_fault_injector(FaultInjector::shared(plan));
    let mut rng = experiment_rng(10);
    let (x, history) = refiner.solve(&b, &mut rng).unwrap();
    assert!(
        history.status.reached_target(),
        "status {:?}, residual {}",
        history.status,
        history.final_residual()
    );
    assert!(scaled_residual(&a, &x, &b) <= 1e-5);
}
