//! End-to-end equivalence of the operator layer: running Algorithm 2 over a
//! structured operator (CSR or matrix-free stencil) must reproduce the
//! dense-matrix refiner's convergence history **bit for bit**.
//!
//! This is the operator-layer analogue of the simulator's
//! `kernels::reference` / `OptLevel::None` oracles: the structured matvecs
//! accumulate in the same column order with the same fused multiply-adds as
//! the dense kernel, so swapping the representation changes *nothing* about
//! the computed floats — only the cost of computing them.

use qls::linalg::lu::LinalgError;
use qls::linalg::Real;
use qls::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Operator wrapper that counts every `to_dense` call — the probe behind the
/// "no classical refinement path densifies a structured operator" guarantee.
#[derive(Clone, Debug)]
struct DensifyCounter<Op> {
    inner: Op,
    densify_calls: Arc<AtomicUsize>,
}

impl<Op> DensifyCounter<Op> {
    fn new(inner: Op) -> Self {
        DensifyCounter {
            inner,
            densify_calls: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn densify_count(&self) -> usize {
        self.densify_calls.load(Ordering::SeqCst)
    }
}

impl<Op: LinearOperator<f64>> LinearOperator<f64> for DensifyCounter<Op> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols()
    }
    fn matvec(&self, x: &Vector<f64>) -> Vector<f64> {
        self.inner.matvec(x)
    }
    fn matvec_transposed(&self, x: &Vector<f64>) -> Vector<f64> {
        self.inner.matvec_transposed(x)
    }
    fn nnz(&self) -> usize {
        self.inner.nnz()
    }
    fn to_dense(&self) -> Matrix<f64> {
        self.densify_calls.fetch_add(1, Ordering::SeqCst);
        self.inner.to_dense()
    }
    fn norm_inf(&self) -> f64 {
        self.inner.norm_inf()
    }
    fn norm_frobenius(&self) -> f64 {
        self.inner.norm_frobenius()
    }
}

impl<Op: FactorizableOperator<f64>> FactorizableOperator<f64> for DensifyCounter<Op> {
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        self.inner.factorize::<L>()
    }
    // `factorize_dense_lu` keeps its default body, which goes through
    // `self.to_dense()` and is therefore counted.
}

/// The N = 64 test problem: the 8x8 2-D Poisson stencil (kappa ≈ 32, so the
/// epsilon_l = 1e-2 inner solver still contracts per Theorem III.1).
fn poisson_64() -> (StencilOperator<f64>, SparseMatrix<f64>, Matrix<f64>) {
    let stencil = poisson_2d::<f64>(8, 8, false);
    let csr = stencil.to_sparse();
    let dense = stencil.to_dense();
    (stencil, csr, dense)
}

fn options() -> HybridRefinementOptions {
    HybridRefinementOptions {
        target_epsilon: 1e-10,
        epsilon_l: 1e-2,
        ..Default::default()
    }
}

fn assert_identical_histories(
    label: &str,
    (x_a, h_a): &(Vector<f64>, HybridHistory),
    (x_b, h_b): &(Vector<f64>, HybridHistory),
) {
    assert_eq!(h_a.status, h_b.status, "{label}: status differs");
    assert_eq!(
        h_a.steps.len(),
        h_b.steps.len(),
        "{label}: iteration count differs"
    );
    for (sa, sb) in h_a.steps.iter().zip(&h_b.steps) {
        assert_eq!(
            sa.scaled_residual, sb.scaled_residual,
            "{label}: scaled residual differs at iteration {}",
            sa.iteration
        );
    }
    assert_eq!(
        x_a.as_slice(),
        x_b.as_slice(),
        "{label}: solutions differ bitwise"
    );
}

#[test]
fn hybrid_refiner_histories_are_bit_identical_across_operator_representations() {
    let (stencil, csr, dense) = poisson_64();
    assert_eq!(dense.nrows(), 64);
    let b = poisson_2d_rhs::<f64>(8, 8, |x, y| 2.0 * y * (1.0 - y) + 2.0 * x * (1.0 - x));

    let dense_refiner = HybridRefiner::new(&dense, options()).expect("dense refiner");
    let csr_refiner = HybridRefiner::new(&csr, options()).expect("CSR refiner");
    let stencil_refiner = HybridRefiner::new(&stencil, options()).expect("stencil refiner");

    // Identical RNG seeds (exact readout never consumes the RNG, but the
    // contract should hold for the full call signature).
    let dense_run = dense_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("dense solve");
    let csr_run = csr_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("CSR solve");
    let stencil_run = stencil_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("stencil solve");

    // The run must actually exercise the refinement loop, converge, and
    // agree bit for bit across all three representations.
    assert_eq!(dense_run.1.status, HybridStatus::Converged);
    assert!(
        dense_run.1.iterations() >= 2,
        "expected a multi-iteration run, got {}",
        dense_run.1.iterations()
    );
    assert_identical_histories("csr vs dense", &csr_run, &dense_run);
    assert_identical_histories("stencil vs dense", &stencil_run, &dense_run);
}

#[test]
fn classical_refiner_is_bit_identical_over_csr() {
    // Algorithm 1 (classical mixed-precision IR, f32 inner LU) over the CSR
    // operator vs the dense matrix: the low-precision factorisation runs on
    // the same densified matrix and the high-precision residuals are
    // bit-identical, so the whole history must match exactly.
    let (_, csr, dense) = poisson_64();
    let b = poisson_2d_rhs::<f64>(8, 8, |x, y| (3.0 * x - y).sin());
    let opts = RefinementOptions {
        target_scaled_residual: 1e-13,
        max_iterations: 30,
        ..Default::default()
    };
    let dense_refiner = ClassicalRefiner::<f64, f32>::new(&dense, opts).expect("dense refiner");
    let csr_refiner =
        ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&csr, opts).expect("CSR refiner");
    let (x_dense, h_dense) = dense_refiner.solve(&b).expect("dense solve");
    let (x_csr, h_csr) = csr_refiner.solve(&b).expect("CSR solve");
    assert_eq!(h_dense.status, h_csr.status);
    assert!(h_dense.iterations() >= 1);
    assert_eq!(h_dense.steps.len(), h_csr.steps.len());
    for (d, s) in h_dense.steps.iter().zip(&h_csr.steps) {
        assert_eq!(d.scaled_residual, s.scaled_residual);
    }
    assert_eq!(x_dense.as_slice(), x_csr.as_slice());
}

/// Deterministic right-hand side for the larger-than-fallback problems.
fn smooth_rhs(n: usize) -> Vector<f64> {
    (0..n).map(|i| ((i + 1) as f64 * 0.37).sin()).collect()
}

/// Run the structured refiner and the dense-LU oracle over the same operator
/// and assert: the structured path picked the expected inner solver, both
/// converged with zero `to_dense` calls on the structured side, and the final
/// solutions agree to 1e-10.
fn assert_structured_matches_oracle<Op: FactorizableOperator<f64> + Clone>(
    label: &str,
    op: &Op,
    expected_kind: InnerSolverKind,
) {
    let n = op.nrows();
    assert!(
        n > DENSIFY_FALLBACK_MAX,
        "{label}: the probe only means something above the fallback threshold"
    );
    let b = smooth_rhs(n);
    let opts = RefinementOptions {
        target_scaled_residual: 1e-13,
        max_iterations: 60,
        ..Default::default()
    };

    let counted = DensifyCounter::new(op.clone());
    let refiner = ClassicalRefiner::<f64, f32, DensifyCounter<Op>>::new(&counted, opts)
        .expect("structured refiner");
    assert_eq!(
        refiner.inner_kind(),
        expected_kind,
        "{label}: wrong inner solver selected"
    );
    let (x_structured, h_structured) = refiner.solve(&b).expect("structured solve");
    assert_eq!(
        counted.densify_count(),
        0,
        "{label}: the structured refinement path called to_dense"
    );

    let oracle =
        ClassicalRefiner::<f64, f32, Op>::with_dense_lu(op, opts).expect("dense-LU oracle");
    assert_eq!(oracle.inner_kind(), InnerSolverKind::DenseLu);
    let (x_oracle, h_oracle) = oracle.solve(&b).expect("oracle solve");

    assert_eq!(
        h_structured.status, h_oracle.status,
        "{label}: status differs from the oracle"
    );
    assert!(
        h_structured.final_residual() <= 1e-13,
        "{label}: structured path did not converge ({:e})",
        h_structured.final_residual()
    );
    let rel = (&x_structured - &x_oracle).norm2() / x_oracle.norm2();
    assert!(
        rel <= 1e-10,
        "{label}: structured and oracle solutions differ by {rel:e}"
    );
}

#[test]
fn thomas_refinement_matches_the_dense_lu_oracle() {
    // 1-D Poisson at N = 256: O(N) Thomas inner solves vs densify-LU.
    let tridiag = poisson_1d::<f64>(256, false);
    assert_structured_matches_oracle("tridiag-256", &tridiag, InnerSolverKind::Thomas);
}

#[test]
fn stencil_cg_refinement_matches_the_dense_lu_oracle() {
    // 2-D Poisson at 16x16 (N = 256): matrix-free Jacobi-CG inner solves.
    let stencil = poisson_2d::<f64>(16, 16, false);
    assert_structured_matches_oracle(
        "stencil-16x16",
        &stencil,
        InnerSolverKind::ConjugateGradient,
    );
}

#[test]
fn stencil_nd_cg_refinement_matches_the_dense_lu_oracle() {
    // 3-D Poisson on a 6x5x4 grid (N = 120): the d-dimensional stencil.
    let stencil = poisson_3d::<f64>(6, 5, 4, false);
    assert_structured_matches_oracle(
        "poisson3d-6x5x4",
        &stencil,
        InnerSolverKind::ConjugateGradient,
    );
}

#[test]
fn bicgstab_refinement_matches_the_dense_lu_oracle() {
    // Nonsymmetric convection-diffusion on a 12x10 grid (N = 120): exercises
    // the BiCGSTAB inner path (and `matvec_transposed` inside it).
    let cd = convection_diffusion_2d::<f64>(12, 10, 0.4, 0.2);
    assert_structured_matches_oracle("convdiff-12x10", &cd, InnerSolverKind::BiCgStab);
}

#[test]
fn hybrid_refiner_never_densifies_after_construction() {
    // The hybrid loop densifies exactly once — in `new`, for the quantum-side
    // block-encoding.  Neither `solve` nor `solve_many` may densify again:
    // the classical half of Algorithm 2 is residuals + updates only.
    let stencil = poisson_2d::<f64>(8, 8, false);
    let counted = DensifyCounter::new(stencil);
    let refiner = HybridRefiner::new(&counted, options()).expect("hybrid refiner");
    let after_new = counted.densify_count();
    assert!(after_new >= 1, "construction builds the block-encoding");

    let b = poisson_2d_rhs::<f64>(8, 8, |x, y| x * y + 0.5);
    let (_, history) = refiner
        .solve(&b, &mut experiment_rng(3))
        .expect("hybrid solve");
    assert!(history.iterations() >= 1);
    refiner
        .solve_many(&[b.clone(), b], &mut experiment_rng(4))
        .expect("hybrid solve_many");
    assert_eq!(
        counted.densify_count(),
        after_new,
        "the refinement loop must not densify the operator"
    );
}

#[test]
fn multi_rhs_refinement_is_bit_identical_over_the_stencil() {
    // The batched multi-RHS path over the matrix-free operator.
    let (stencil, _, dense) = poisson_64();
    let bs: Vec<Vector<f64>> = vec![
        poisson_2d_rhs::<f64>(8, 8, |x, y| x + y),
        poisson_2d_rhs::<f64>(8, 8, |x, y| (5.0 * x * y).cos()),
        poisson_2d_rhs::<f64>(8, 8, |x, _| if x > 0.5 { 1.0 } else { -1.0 }),
    ];
    let dense_refiner = HybridRefiner::new(&dense, options()).expect("dense refiner");
    let stencil_refiner = HybridRefiner::new(&stencil, options()).expect("stencil refiner");
    let dense_runs = dense_refiner
        .solve_many(&bs, &mut experiment_rng(7))
        .expect("dense solve_many");
    let stencil_runs = stencil_refiner
        .solve_many(&bs, &mut experiment_rng(7))
        .expect("stencil solve_many");
    for (k, (d, s)) in dense_runs.iter().zip(&stencil_runs).enumerate() {
        assert_identical_histories(&format!("multi-rhs system {k}"), s, d);
    }
}
