//! End-to-end equivalence of the operator layer: running Algorithm 2 over a
//! structured operator (CSR or matrix-free stencil) must reproduce the
//! dense-matrix refiner's convergence history **bit for bit**.
//!
//! This is the operator-layer analogue of the simulator's
//! `kernels::reference` / `OptLevel::None` oracles: the structured matvecs
//! accumulate in the same column order with the same fused multiply-adds as
//! the dense kernel, so swapping the representation changes *nothing* about
//! the computed floats — only the cost of computing them.

use qls::prelude::*;

/// The N = 64 test problem: the 8x8 2-D Poisson stencil (kappa ≈ 32, so the
/// epsilon_l = 1e-2 inner solver still contracts per Theorem III.1).
fn poisson_64() -> (StencilOperator<f64>, SparseMatrix<f64>, Matrix<f64>) {
    let stencil = poisson_2d::<f64>(8, 8, false);
    let csr = stencil.to_sparse();
    let dense = stencil.to_dense();
    (stencil, csr, dense)
}

fn options() -> HybridRefinementOptions {
    HybridRefinementOptions {
        target_epsilon: 1e-10,
        epsilon_l: 1e-2,
        ..Default::default()
    }
}

fn assert_identical_histories(
    label: &str,
    (x_a, h_a): &(Vector<f64>, HybridHistory),
    (x_b, h_b): &(Vector<f64>, HybridHistory),
) {
    assert_eq!(h_a.status, h_b.status, "{label}: status differs");
    assert_eq!(
        h_a.steps.len(),
        h_b.steps.len(),
        "{label}: iteration count differs"
    );
    for (sa, sb) in h_a.steps.iter().zip(&h_b.steps) {
        assert_eq!(
            sa.scaled_residual, sb.scaled_residual,
            "{label}: scaled residual differs at iteration {}",
            sa.iteration
        );
    }
    assert_eq!(
        x_a.as_slice(),
        x_b.as_slice(),
        "{label}: solutions differ bitwise"
    );
}

#[test]
fn hybrid_refiner_histories_are_bit_identical_across_operator_representations() {
    let (stencil, csr, dense) = poisson_64();
    assert_eq!(dense.nrows(), 64);
    let b = poisson_2d_rhs::<f64>(8, 8, |x, y| 2.0 * y * (1.0 - y) + 2.0 * x * (1.0 - x));

    let dense_refiner = HybridRefiner::new(&dense, options()).expect("dense refiner");
    let csr_refiner = HybridRefiner::new(&csr, options()).expect("CSR refiner");
    let stencil_refiner = HybridRefiner::new(&stencil, options()).expect("stencil refiner");

    // Identical RNG seeds (exact readout never consumes the RNG, but the
    // contract should hold for the full call signature).
    let dense_run = dense_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("dense solve");
    let csr_run = csr_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("CSR solve");
    let stencil_run = stencil_refiner
        .solve(&b, &mut experiment_rng(42))
        .expect("stencil solve");

    // The run must actually exercise the refinement loop, converge, and
    // agree bit for bit across all three representations.
    assert_eq!(dense_run.1.status, HybridStatus::Converged);
    assert!(
        dense_run.1.iterations() >= 2,
        "expected a multi-iteration run, got {}",
        dense_run.1.iterations()
    );
    assert_identical_histories("csr vs dense", &csr_run, &dense_run);
    assert_identical_histories("stencil vs dense", &stencil_run, &dense_run);
}

#[test]
fn classical_refiner_is_bit_identical_over_csr() {
    // Algorithm 1 (classical mixed-precision IR, f32 inner LU) over the CSR
    // operator vs the dense matrix: the low-precision factorisation runs on
    // the same densified matrix and the high-precision residuals are
    // bit-identical, so the whole history must match exactly.
    let (_, csr, dense) = poisson_64();
    let b = poisson_2d_rhs::<f64>(8, 8, |x, y| (3.0 * x - y).sin());
    let opts = RefinementOptions {
        target_scaled_residual: 1e-13,
        max_iterations: 30,
        ..Default::default()
    };
    let dense_refiner = ClassicalRefiner::<f64, f32>::new(&dense, opts).expect("dense refiner");
    let csr_refiner =
        ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&csr, opts).expect("CSR refiner");
    let (x_dense, h_dense) = dense_refiner.solve(&b).expect("dense solve");
    let (x_csr, h_csr) = csr_refiner.solve(&b).expect("CSR solve");
    assert_eq!(h_dense.status, h_csr.status);
    assert!(h_dense.iterations() >= 1);
    assert_eq!(h_dense.steps.len(), h_csr.steps.len());
    for (d, s) in h_dense.steps.iter().zip(&h_csr.steps) {
        assert_eq!(d.scaled_residual, s.scaled_residual);
    }
    assert_eq!(x_dense.as_slice(), x_csr.as_slice());
}

#[test]
fn multi_rhs_refinement_is_bit_identical_over_the_stencil() {
    // The batched multi-RHS path over the matrix-free operator.
    let (stencil, _, dense) = poisson_64();
    let bs: Vec<Vector<f64>> = vec![
        poisson_2d_rhs::<f64>(8, 8, |x, y| x + y),
        poisson_2d_rhs::<f64>(8, 8, |x, y| (5.0 * x * y).cos()),
        poisson_2d_rhs::<f64>(8, 8, |x, _| if x > 0.5 { 1.0 } else { -1.0 }),
    ];
    let dense_refiner = HybridRefiner::new(&dense, options()).expect("dense refiner");
    let stencil_refiner = HybridRefiner::new(&stencil, options()).expect("stencil refiner");
    let dense_runs = dense_refiner
        .solve_many(&bs, &mut experiment_rng(7))
        .expect("dense solve_many");
    let stencil_runs = stencil_refiner
        .solve_many(&bs, &mut experiment_rng(7))
        .expect("stencil solve_many");
    for (k, (d, s)) in dense_runs.iter().zip(&stencil_runs).enumerate() {
        assert_identical_histories(&format!("multi-rhs system {k}"), s, d);
    }
}
