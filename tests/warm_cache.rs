//! Cold-vs-warm equivalence of the persistent artifact cache (`qls_cache`):
//! a warm construction must perform zero phase-factor generations and zero
//! fusion passes, and everything downstream — phase angles (via the raw QSVT
//! circuit), solve directions, refinement histories — must be bit-identical
//! to the cold build, with the cache enabled or disabled.
//!
//! Every test runs against its own temp directory through `with_cache_dir`
//! (a thread-local override), so parallel tests never share cache state and
//! the user's real `~/.cache/qls` is never touched.

use qls::prelude::*;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qls-warm-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_system(n: usize, kappa: f64, seed: u64) -> (Matrix<f64>, Vector<f64>) {
    let mut rng = experiment_rng(seed);
    let a = random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(n, &mut rng);
    (a, b)
}

fn bits(v: &Vector<f64>) -> Vec<u64> {
    v.as_slice().iter().map(|x| x.to_bits()).collect()
}

#[test]
fn qsvt_inverter_warm_replay_is_bit_identical_and_regenerates_nothing() {
    let dir = test_dir("inverter");
    let (a, b) = test_system(8, 8.0, 1);
    with_cache_dir(&dir, || {
        let (p0, f0) = (phase_generation_count(), fusion_pass_count());
        let cold = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
        assert_eq!(
            phase_generation_count(),
            p0 + 1,
            "cold build generates phases once"
        );
        assert_eq!(fusion_pass_count(), f0 + 1, "cold build fuses once");

        let (p1, f1) = (phase_generation_count(), fusion_pass_count());
        let (h1, m1) = (cache_hit_count(), cache_miss_count());
        let warm = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
        assert_eq!(
            phase_generation_count(),
            p1,
            "warm build must not regenerate phase factors"
        );
        assert_eq!(
            fusion_pass_count(),
            f1,
            "warm build must not rerun the fusion pass"
        );
        assert_eq!(cache_hit_count(), h1 + 2, "phases + fused circuit hits");
        assert_eq!(cache_miss_count(), m1, "warm build must not miss");

        // The raw QSVT circuits agree exactly — the projector-rotation
        // angles inside are the phase factors, so this is the bit-identity
        // of the cached phases.
        assert_eq!(
            cold.qsvt_circuit().unwrap().circuit(),
            warm.qsvt_circuit().unwrap().circuit(),
            "replayed phases must reproduce the identical circuit"
        );
        assert_eq!(cold.circuit_stats(), warm.circuit_stats());
        let (x_cold, s_cold) = cold.solve_direction(&b).unwrap();
        let (x_warm, s_warm) = warm.solve_direction(&b).unwrap();
        assert_eq!(bits(&x_cold), bits(&x_warm));
        assert_eq!(s_cold.to_bits(), s_warm.to_bits());
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn solver_and_refiner_warm_builds_regenerate_nothing() {
    let dir = test_dir("layers");
    let (a, b) = test_system(8, 4.0, 2);
    let solver_options = QsvtSolverOptions {
        epsilon_l: 0.05,
        mode: QsvtMode::CircuitReal,
        ..Default::default()
    };
    let refiner_options = HybridRefinementOptions {
        target_epsilon: 1e-8,
        epsilon_l: 0.05,
        solver: QsvtSolverOptions {
            mode: QsvtMode::CircuitReal,
            ..Default::default()
        },
        ..Default::default()
    };
    with_cache_dir(&dir, || {
        // One cold construction per layer populates the store…
        let _ = QsvtLinearSolver::new(&a, solver_options).unwrap();
        let _ = HybridRefiner::new(&a, refiner_options).unwrap();
        // …then every layer's second construction is pure replay.
        let (p, f) = (phase_generation_count(), fusion_pass_count());
        let solver = QsvtLinearSolver::new(&a, solver_options).unwrap();
        let refiner = HybridRefiner::new(&a, refiner_options).unwrap();
        assert_eq!(
            phase_generation_count(),
            p,
            "warm solver/refiner must not regenerate phase factors"
        );
        assert_eq!(
            fusion_pass_count(),
            f,
            "warm solver/refiner must not rerun the fusion pass"
        );
        // The replayed engines still solve.
        let mut rng = experiment_rng(3);
        let result = solver.solve(&b, &mut rng).unwrap();
        assert!(result.scaled_residual.is_finite());
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refinement_histories_are_bit_identical_cold_vs_warm() {
    let dir = test_dir("history");
    let (a, b) = test_system(8, 8.0, 4);
    let options = HybridRefinementOptions {
        target_epsilon: 1e-10,
        epsilon_l: 0.05,
        solver: QsvtSolverOptions {
            mode: QsvtMode::CircuitReal,
            ..Default::default()
        },
        ..Default::default()
    };
    with_cache_dir(&dir, || {
        let cold = HybridRefiner::new(&a, options).unwrap();
        let (x_cold, h_cold) = cold.solve(&b, &mut experiment_rng(5)).unwrap();
        let warm = HybridRefiner::new(&a, options).unwrap();
        let (x_warm, h_warm) = warm.solve(&b, &mut experiment_rng(5)).unwrap();
        assert_eq!(bits(&x_cold), bits(&x_warm));
        assert_eq!(h_cold.status, h_warm.status);
        assert_eq!(h_cold.steps.len(), h_warm.steps.len());
        for (s_cold, s_warm) in h_cold.steps.iter().zip(&h_warm.steps) {
            assert_eq!(
                s_cold.scaled_residual.to_bits(),
                s_warm.scaled_residual.to_bits(),
                "iteration {}",
                s_cold.iteration
            );
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_enabled_cold_path_matches_cache_disabled_bit_identically() {
    let dir = test_dir("disabled");
    let (a, b) = test_system(8, 8.0, 6);
    let enabled_options = QsvtSolverOptions {
        epsilon_l: 0.05,
        mode: QsvtMode::CircuitReal,
        ..Default::default()
    };
    let disabled_options = QsvtSolverOptions {
        cache: CachePolicy::Disabled,
        ..enabled_options
    };
    with_cache_dir(&dir, || {
        let (h0, m0) = (cache_hit_count(), cache_miss_count());
        let off = QsvtLinearSolver::new(&a, disabled_options).unwrap();
        assert_eq!(
            (cache_hit_count(), cache_miss_count()),
            (h0, m0),
            "CachePolicy::Disabled must never touch the store"
        );
        let on = QsvtLinearSolver::new(&a, enabled_options).unwrap(); // cold: misses + stores
        let off_result = off.solve(&b, &mut experiment_rng(7)).unwrap();
        let on_result = on.solve(&b, &mut experiment_rng(7)).unwrap();
        assert_eq!(bits(&off_result.solution), bits(&on_result.solution));
        assert_eq!(
            off_result.scaled_residual.to_bits(),
            on_result.scaled_residual.to_bits()
        );
        // And the warm replay of the enabled path stays on those same bits.
        let warm = QsvtLinearSolver::new(&a, enabled_options).unwrap();
        let warm_result = warm.solve(&b, &mut experiment_rng(7)).unwrap();
        assert_eq!(bits(&off_result.solution), bits(&warm_result.solution));
    });
    let _ = std::fs::remove_dir_all(&dir);
}
