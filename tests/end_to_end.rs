//! Cross-crate integration tests: the full pipeline from matrix generation to
//! the refined solution, exercising every crate of the workspace together.

use qls::prelude::*;

fn random_system(n: usize, kappa: f64, seed: u64) -> (Matrix<f64>, Vector<f64>) {
    let mut rng = experiment_rng(seed);
    let a = random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(n, &mut rng);
    (a, b)
}

#[test]
fn fig3_setting_converges_within_the_theorem_bound_for_all_epsilon_l() {
    // kappa = 10, eps = 1e-11 — the paper's Fig. 3 configuration.
    let (a, b) = random_system(16, 10.0, 1);
    for &epsilon_l in &[1e-2, 1e-3, 1e-4] {
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-11,
                epsilon_l,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = experiment_rng(2);
        let (x, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(
            history.status,
            HybridStatus::Converged,
            "eps_l = {epsilon_l}"
        );
        assert!(history.final_residual() <= 1e-11);
        let bound = history.iteration_bound().expect("bound applies");
        assert!(
            history.iterations() <= bound,
            "eps_l = {epsilon_l}: {} iterations > bound {bound}",
            history.iterations()
        );
        // Forward error consistent with Eq. (5): bounded by kappa * omega.
        let reference = classical_lu_solve(&a, &b).unwrap();
        assert!(forward_error(&x, &reference) <= 10.0 * history.final_residual() * 10.0);
    }
}

#[test]
fn fig4_setting_larger_condition_numbers_still_converge() {
    for (i, &kappa) in [100.0, 200.0].iter().enumerate() {
        let (a, b) = random_system(16, kappa, 10 + i as u64);
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-10,
                epsilon_l: 0.25 / kappa,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = experiment_rng(3);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged, "kappa = {kappa}");
        assert!(history.iterations() <= history.iteration_bound().unwrap());
    }
}

#[test]
fn residual_contraction_matches_theorem_iii_1() {
    let (a, b) = random_system(16, 10.0, 20);
    let epsilon_l = 1e-2;
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = experiment_rng(4);
    let (_, history) = refiner.solve(&b, &mut rng).unwrap();
    // Every recorded residual obeys omega_i <= (eps_l kappa)^{i+1} (with slack for
    // the measured-vs-worst-case gap running in the favourable direction).
    assert!(history.satisfies_theorem_bound(1.0 + 1e-9));
}

#[test]
fn circuit_mode_and_emulation_mode_agree_end_to_end() {
    // Small kappa so the full phase-factor + circuit pipeline is tractable.
    let (a, b) = random_system(4, 2.0, 30);
    let mut results = Vec::new();
    for mode in [QsvtMode::Emulation, QsvtMode::CircuitReal] {
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 0.05,
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = experiment_rng(5);
        results.push(solver.solve(&b, &mut rng).unwrap());
    }
    let diff = forward_error(&results[0].solution, &results[1].solution);
    assert!(diff < 1e-5, "emulation vs circuit disagreement {diff}");
}

#[test]
fn sampled_readout_still_converges_to_a_coarser_target() {
    let (a, b) = random_system(16, 10.0, 40);
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-6,
            epsilon_l: 1e-3,
            max_iterations: 100,
            solver: QsvtSolverOptions {
                shots: Some(5_000_000),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = experiment_rng(6);
    let (_, history) = refiner.solve(&b, &mut rng).unwrap();
    // Shot noise limits the attainable accuracy but the refinement still makes
    // steady progress to the (coarser) target.
    assert_eq!(history.status, HybridStatus::Converged);
    assert!(history.final_residual() <= 1e-6);
}

#[test]
fn hybrid_solver_agrees_with_classical_mixed_precision_refinement() {
    let (a, b) = random_system(16, 50.0, 50);
    // Classical Algorithm 1 (f32 LU + f64 refinement).
    let classical = ClassicalRefiner::<f64, f32>::new(
        &a,
        RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        },
    )
    .unwrap();
    let (x_classical, _) = classical.solve(&b).unwrap();
    // Hybrid Algorithm 2.
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-12,
            epsilon_l: 1e-3,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = experiment_rng(7);
    let (x_hybrid, _) = refiner.solve(&b, &mut rng).unwrap();
    assert!(forward_error(&x_hybrid, &x_classical) < 1e-9);
}

#[test]
fn poisson_pipeline_through_every_block_encoding() {
    // The Poisson matrix is the Table-II use case; check that all three
    // simulable block-encodings agree on the encoded operator.
    let n_qubits = 3;
    let dense = poisson_1d::<f64>(1 << n_qubits, false).to_dense();
    let lcu = LcuBlockEncoding::new(&dense, 1e-13);
    let fable = FableBlockEncoding::new(&dense, 0.0);
    let dilation = DilationBlockEncoding::new(&dense, 0.0);
    assert!(lcu.encoding_error(&dense) < 1e-9);
    assert!(fable.encoding_error(&dense) < 1e-9);
    assert!(dilation.encoding_error(&dense) < 1e-9);
    let tridiag = TridiagBlockEncoding::new(n_qubits);
    assert!(tridiag.encoding_error(&dense) < 1e-9);
}

#[test]
fn cost_model_matches_measured_block_encoding_calls() {
    // The analytic degree model of Table I / Fig. 5 must equal the degree the
    // implementation actually uses.
    let (a, b) = random_system(16, 10.0, 60);
    let epsilon_l = 1e-3;
    let solver = QsvtLinearSolver::new(
        &a,
        QsvtSolverOptions {
            epsilon_l,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = experiment_rng(8);
    let result = solver.solve(&b, &mut rng).unwrap();
    let kappa = solver.kappa();
    let model = qsvt_degree_model(kappa, epsilon_l);
    assert_eq!(result.cost.block_encoding_calls, model as usize);
}

#[test]
fn quantum_cost_comparison_reproduces_table_1_ordering() {
    // For every setting with eps << eps_l < 1/kappa the refined solver must win.
    for &(kappa, eps, eps_l) in &[(2.0, 1e-10, 0.4), (10.0, 1e-11, 1e-2), (100.0, 1e-11, 1e-3)] {
        let cmp = quantum_cost_comparison(CostParameters {
            kappa,
            epsilon: eps,
            epsilon_l: eps_l,
            block_encoding_cost: 1.0,
        });
        assert!(
            cmp.speedup > 1.0,
            "kappa={kappa} eps={eps} eps_l={eps_l}: speedup {}",
            cmp.speedup
        );
    }
}
