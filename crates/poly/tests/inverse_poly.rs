//! Integration tests of the Eq. (4) inverse polynomial and the Chebyshev
//! machinery it is built on.

use qls_poly::{chebyshev_t, degree_b, degree_cap_d, ChebyshevSeries, InversePolynomial, Parity};

/// `1/x` relative error of the Eq. (4) polynomial, measured on a fine grid of
/// the approximation domain `[1/κ, 1]`.
fn max_rel_error_on_grid(poly: &InversePolynomial, kappa: f64, samples: usize) -> f64 {
    let lo = 1.0 / kappa;
    let mut worst: f64 = 0.0;
    for i in 0..=samples {
        let x = lo + (1.0 - lo) * (i as f64) / (samples as f64);
        let approx = poly.eval_inverse(x);
        let exact = 1.0 / x;
        worst = worst.max(((approx - exact) / exact).abs());
    }
    worst
}

#[test]
fn inverse_polynomial_meets_the_advertised_epsilon() {
    for (kappa, eps) in [(5.0f64, 1e-2), (10.0, 1e-3), (40.0, 1e-4)] {
        let poly = InversePolynomial::new(kappa, eps);
        let measured = max_rel_error_on_grid(&poly, kappa, 400);
        // Eq. (4) guarantees eps relative accuracy on [1/κ, 1]; allow a small
        // grid-sampling slack on top.
        assert!(
            measured <= 2.0 * eps,
            "kappa={kappa} eps={eps}: measured max relative error {measured}"
        );
    }
}

#[test]
fn inverse_polynomial_is_odd_and_bounded_like_qsvt_requires() {
    let poly = InversePolynomial::new(20.0, 1e-3);
    for x in [0.1, 0.35, 0.6, 0.99] {
        let sym = poly.eval(-x) + poly.eval(x);
        assert!(sym.abs() < 1e-9, "odd-parity violation at {x}: {sym}");
    }
}

#[test]
fn degree_formulas_match_the_paper() {
    // b(ε,κ) = ⌈κ² log(κ/ε)⌉ and D(ε,κ) = ⌈√(b log(4b/ε))⌉.
    for (kappa, eps) in [(10.0f64, 1e-3), (100.0, 1e-6)] {
        let b = degree_b(kappa, eps);
        let expected_b = (kappa * kappa * (kappa / eps).ln()).ceil() as u64;
        assert_eq!(b, expected_b, "b(ε,κ) mismatch for kappa={kappa}");
        let cap_d = degree_cap_d(kappa, eps);
        let bf = b as f64;
        let expected_d = (bf * (4.0 * bf / eps).ln()).sqrt().ceil() as u64;
        assert_eq!(cap_d, expected_d, "D(ε,κ) mismatch for kappa={kappa}");
    }
}

#[test]
fn degrees_grow_with_kappa_and_shrink_with_epsilon() {
    let d_loose = InversePolynomial::new(10.0, 1e-2).degree();
    let d_tight = InversePolynomial::new(10.0, 1e-6).degree();
    assert!(d_tight > d_loose, "{d_tight} vs {d_loose}");
    let d_small_kappa = InversePolynomial::new(5.0, 1e-3).degree();
    let d_large_kappa = InversePolynomial::new(50.0, 1e-3).degree();
    assert!(d_large_kappa > d_small_kappa);
}

/// Direct three-term-recurrence evaluation of a Chebyshev series, as an
/// independent oracle for the Clenshaw summation in `ChebyshevSeries::eval`.
fn eval_by_recurrence(coeffs: &[f64], x: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(n, &c)| c * chebyshev_t(n, x))
        .sum()
}

#[test]
fn clenshaw_matches_the_direct_chebyshev_recurrence() {
    let coeffs = vec![0.5, -1.25, 0.0, 0.75, 0.1, -0.3, 0.02];
    let series = ChebyshevSeries::new(coeffs.clone());
    for i in 0..=100 {
        let x = -1.0 + 2.0 * (i as f64) / 100.0;
        let clenshaw = series.eval(x);
        let direct = eval_by_recurrence(&coeffs, x);
        assert!(
            (clenshaw - direct).abs() < 1e-12,
            "Clenshaw {clenshaw} vs recurrence {direct} at x={x}"
        );
    }
}

#[test]
fn chebyshev_t_satisfies_the_defining_identity() {
    // T_n(cos θ) = cos(n θ).
    for n in [0usize, 1, 2, 5, 11] {
        for i in 0..=20 {
            let theta = std::f64::consts::PI * (i as f64) / 20.0;
            let lhs = chebyshev_t(n, theta.cos());
            let rhs = (n as f64 * theta).cos();
            assert!(
                (lhs - rhs).abs() < 1e-10,
                "T_{n}(cos {theta}) = {lhs} ≠ {rhs}"
            );
        }
    }
}

#[test]
fn series_parity_detection_flags_the_inverse_polynomial_as_odd() {
    let poly = InversePolynomial::new(15.0, 1e-3);
    // The Eq. (4) series has only odd Chebyshev terms.
    assert_eq!(poly.series.parity(1e-12), Parity::Odd);
}
