//! Chebyshev polynomials of the first kind and Chebyshev series.
//!
//! The polynomial handed to the QSVT is always expressed in the Chebyshev
//! basis: the paper notes (after Eq. (4)) that working in the Chebyshev basis
//! instead of the monomial basis "highly reduces the impact of Runge's
//! phenomenon when working with high degree polynomials", and the QSP phase
//! machinery of `qls-qsvt` consumes Chebyshev coefficients directly.

use qls_linalg::{Matrix, Vector};

/// Parity of a polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parity {
    /// Only even-index Chebyshev coefficients are non-zero.
    Even,
    /// Only odd-index Chebyshev coefficients are non-zero.
    Odd,
    /// Both parities present.
    None,
}

/// Evaluate the Chebyshev polynomial of the first kind `T_n(x)`.
///
/// Uses the trigonometric definition on [-1, 1] and the hyperbolic extension
/// outside, which is far more stable than the three-term recurrence for large
/// `n`.
pub fn chebyshev_t(n: usize, x: f64) -> f64 {
    if x.abs() <= 1.0 {
        (n as f64 * x.acos()).cos()
    } else if x > 1.0 {
        (n as f64 * x.acosh()).cosh()
    } else {
        // x < -1: T_n(x) = (-1)^n T_n(-x).
        let sign = if n.is_multiple_of(2) { 1.0 } else { -1.0 };
        sign * (n as f64 * (-x).acosh()).cosh()
    }
}

/// The `n` Chebyshev nodes of the first kind on [-1, 1]:
/// `x_k = cos((2k+1)π / (2n))`, k = 0..n.
pub fn chebyshev_nodes(n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| ((2 * k + 1) as f64 * std::f64::consts::PI / (2.0 * n as f64)).cos())
        .collect()
}

/// A finite Chebyshev series `p(x) = Σ_k c_k T_k(x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChebyshevSeries {
    /// Coefficients, `coeffs[k]` multiplying `T_k`.
    pub coeffs: Vec<f64>,
}

impl ChebyshevSeries {
    /// Build a series from its coefficients.
    pub fn new(coeffs: Vec<f64>) -> Self {
        ChebyshevSeries { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        ChebyshevSeries { coeffs: vec![] }
    }

    /// Degree of the series (index of the last non-negligible coefficient).
    pub fn degree(&self) -> usize {
        self.coeffs.iter().rposition(|&c| c != 0.0).unwrap_or(0)
    }

    /// Number of stored coefficients.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True when no coefficients are stored.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Evaluate the series at `x` with the Clenshaw recurrence (numerically
    /// stable for high degrees, O(degree) work).
    pub fn eval(&self, x: f64) -> f64 {
        if self.coeffs.is_empty() {
            return 0.0;
        }
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        for &c in self.coeffs.iter().rev() {
            let b0 = 2.0 * x * b1 - b2 + c;
            b2 = b1;
            b1 = b0;
        }
        // p(x) = b1 - x*b2 ... careful: standard Clenshaw for Chebyshev gives
        // p(x) = c0 + x*b1' - b2' when the loop excludes c0; with the loop
        // including c0 as above, p(x) = b1 - x * b2.
        b1 - x * b2
    }

    /// Evaluate the series on a whole grid.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Apply the series to a symmetric matrix `A` acting on a vector `v`
    /// (computes `p(A) v`) using the Clenshaw recurrence with matrix-vector
    /// products.  `A` must have spectrum inside [-1, 1] for the Chebyshev
    /// series to converge to the intended function.
    ///
    /// This is the classical reference for what the QSVT circuit implements on
    /// the block-encoded operator; `qls-qsvt` uses it both for verification and
    /// for the high-degree emulation path.
    pub fn apply_to_matrix(&self, a: &Matrix<f64>, v: &Vector<f64>) -> Vector<f64> {
        let n = v.len();
        if self.coeffs.is_empty() {
            return Vector::zeros(n);
        }
        let mut b1 = Vector::zeros(n);
        let mut b2 = Vector::zeros(n);
        for &c in self.coeffs.iter().rev() {
            // b0 = 2 A b1 - b2 + c v
            let mut b0 = a.matvec(&b1);
            b0.scale(2.0);
            b0 -= &b2;
            b0.axpy(c, v);
            b2 = b1;
            b1 = b0;
        }
        // p(A) v = b1 - A b2.
        let ab2 = a.matvec(&b2);
        &b1 - &ab2
    }

    /// Parity of the series with tolerance `tol` on the "wrong-parity"
    /// coefficients.
    pub fn parity(&self, tol: f64) -> Parity {
        let max_even = self
            .coeffs
            .iter()
            .step_by(2)
            .fold(0.0f64, |m, c| m.max(c.abs()));
        let max_odd = self
            .coeffs
            .iter()
            .skip(1)
            .step_by(2)
            .fold(0.0f64, |m, c| m.max(c.abs()));
        match (max_even <= tol, max_odd <= tol) {
            (true, false) => Parity::Odd,
            (false, true) => Parity::Even,
            _ => Parity::None,
        }
    }

    /// Maximum absolute value of the series on a uniform grid of `samples`
    /// points over [-1, 1] (used to check the QSVT constraint |P(x)| ≤ 1).
    pub fn max_abs_on_interval(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| -1.0 + 2.0 * i as f64 / (samples - 1) as f64)
            .map(|x| self.eval(x).abs())
            .fold(0.0, f64::max)
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&mut self, s: f64) {
        for c in &mut self.coeffs {
            *c *= s;
        }
    }

    /// Return a scaled copy.
    pub fn scaled(&self, s: f64) -> Self {
        let mut out = self.clone();
        out.scale(s);
        out
    }

    /// Add another series (coefficient-wise).
    pub fn add(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, c) in other.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        ChebyshevSeries { coeffs }
    }

    /// Drop trailing coefficients whose magnitude is below `tol`, returning the
    /// number of coefficients removed.
    pub fn truncate(&mut self, tol: f64) -> usize {
        let keep = self
            .coeffs
            .iter()
            .rposition(|c| c.abs() > tol)
            .map(|p| p + 1)
            .unwrap_or(0);
        let removed = self.coeffs.len() - keep;
        self.coeffs.truncate(keep);
        removed
    }

    /// Extract the coefficients of the monomial basis (x⁰, x¹, …) — only for
    /// low degrees (≲ 30), where the conversion is still well conditioned.
    /// Useful for debugging and for constructing small QSP test cases.
    pub fn to_monomial(&self) -> Vec<f64> {
        let deg = self.degree();
        // Build T_k in the monomial basis by the recurrence T_{k+1} = 2x T_k - T_{k-1}.
        let mut t_prev = vec![1.0]; // T_0
        let mut t_curr = vec![0.0, 1.0]; // T_1
        let mut result = vec![0.0; deg + 1];
        if !self.coeffs.is_empty() {
            result[0] += self.coeffs[0];
        }
        if deg >= 1 && self.coeffs.len() > 1 {
            result[1] += self.coeffs[1];
        }
        for k in 2..=deg {
            // T_k = 2 x T_{k-1} - T_{k-2}.
            let mut t_next = vec![0.0; k + 1];
            for (i, &c) in t_curr.iter().enumerate() {
                t_next[i + 1] += 2.0 * c;
            }
            for (i, &c) in t_prev.iter().enumerate() {
                t_next[i] -= c;
            }
            if let Some(&ck) = self.coeffs.get(k) {
                for (i, &c) in t_next.iter().enumerate() {
                    result[i] += ck * c;
                }
            }
            t_prev = t_curr;
            t_curr = t_next;
        }
        result
    }
}

/// Interpolate a function on [-1, 1] by a degree-(n-1) Chebyshev series using
/// the `n` Chebyshev nodes of the first kind (discrete orthogonality):
/// `c_k = (2 - δ_{k0})/n Σ_j f(x_j) T_k(x_j)`.
pub fn interpolate(f: impl Fn(f64) -> f64, n: usize) -> ChebyshevSeries {
    assert!(n >= 1, "interpolation needs at least one node");
    let nodes = chebyshev_nodes(n);
    let fvals: Vec<f64> = nodes.iter().map(|&x| f(x)).collect();
    let mut coeffs = vec![0.0f64; n];
    for (k, coeff) in coeffs.iter_mut().enumerate() {
        let mut s = 0.0;
        for (j, &fj) in fvals.iter().enumerate() {
            // T_k(x_j) = cos(k (2j+1) π / (2n)).
            let angle = k as f64 * (2 * j + 1) as f64 * std::f64::consts::PI / (2.0 * n as f64);
            s += fj * angle.cos();
        }
        *coeff = s * 2.0 / n as f64;
    }
    coeffs[0] *= 0.5;
    ChebyshevSeries::new(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_t_known_values() {
        // T_0 = 1, T_1 = x, T_2 = 2x² − 1, T_3 = 4x³ − 3x.
        for &x in &[-1.0, -0.5, 0.0, 0.3, 0.9, 1.0] {
            assert!((chebyshev_t(0, x) - 1.0).abs() < 1e-12);
            assert!((chebyshev_t(1, x) - x).abs() < 1e-12);
            assert!((chebyshev_t(2, x) - (2.0 * x * x - 1.0)).abs() < 1e-12);
            assert!((chebyshev_t(3, x) - (4.0 * x * x * x - 3.0 * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn chebyshev_t_outside_interval() {
        // T_2(2) = 7, T_3(2) = 26, T_3(-2) = -26.
        assert!((chebyshev_t(2, 2.0) - 7.0).abs() < 1e-9);
        assert!((chebyshev_t(3, 2.0) - 26.0).abs() < 1e-9);
        assert!((chebyshev_t(3, -2.0) + 26.0).abs() < 1e-9);
    }

    #[test]
    fn chebyshev_bounded_by_one_inside() {
        for n in 0..50 {
            for i in 0..=100 {
                let x = -1.0 + 0.02 * i as f64;
                assert!(chebyshev_t(n, x).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn nodes_are_in_interval_and_distinct() {
        let nodes = chebyshev_nodes(16);
        assert_eq!(nodes.len(), 16);
        for &x in &nodes {
            assert!(x > -1.0 && x < 1.0);
        }
        for w in nodes.windows(2) {
            assert!(w[0] > w[1], "nodes should be strictly decreasing");
        }
    }

    #[test]
    fn clenshaw_matches_direct_sum() {
        let series = ChebyshevSeries::new(vec![0.5, -0.25, 0.125, 0.0625, -0.03125]);
        for i in 0..=20 {
            let x = -1.0 + 0.1 * i as f64;
            let direct: f64 = series
                .coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| c * chebyshev_t(k, x))
                .sum();
            assert!((series.eval(x) - direct).abs() < 1e-13, "x = {x}");
        }
    }

    #[test]
    fn interpolation_recovers_polynomials_exactly() {
        // f(x) = 3x³ − x + 0.5 is degree 3; 6 nodes are more than enough.
        let f = |x: f64| 3.0 * x * x * x - x + 0.5;
        let series = interpolate(f, 6);
        for i in 0..=50 {
            let x = -1.0 + 0.04 * i as f64;
            assert!((series.eval(x) - f(x)).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn interpolation_converges_for_smooth_function() {
        let f = |x: f64| (3.0 * x).sin() * (-x * x).exp();
        let coarse = interpolate(f, 8);
        let fine = interpolate(f, 40);
        let grid: Vec<f64> = (0..200).map(|i| -1.0 + 0.01 * i as f64).collect();
        let err_coarse: f64 = grid
            .iter()
            .map(|&x| (coarse.eval(x) - f(x)).abs())
            .fold(0.0, f64::max);
        let err_fine: f64 = grid
            .iter()
            .map(|&x| (fine.eval(x) - f(x)).abs())
            .fold(0.0, f64::max);
        assert!(err_fine < 1e-12);
        assert!(err_coarse > err_fine);
    }

    #[test]
    fn parity_detection() {
        let odd = ChebyshevSeries::new(vec![0.0, 1.0, 0.0, -0.5]);
        let even = ChebyshevSeries::new(vec![0.3, 0.0, 0.7]);
        let mixed = ChebyshevSeries::new(vec![0.3, 0.4]);
        assert_eq!(odd.parity(1e-14), Parity::Odd);
        assert_eq!(even.parity(1e-14), Parity::Even);
        assert_eq!(mixed.parity(1e-14), Parity::None);
    }

    #[test]
    fn truncation_removes_small_tail() {
        let mut s = ChebyshevSeries::new(vec![1.0, 0.5, 1e-18, 1e-19]);
        let removed = s.truncate(1e-15);
        assert_eq!(removed, 2);
        assert_eq!(s.len(), 2);
        // Truncating everything yields the empty series.
        let mut z = ChebyshevSeries::new(vec![1e-20; 4]);
        z.truncate(1e-15);
        assert!(z.is_empty());
        assert_eq!(z.eval(0.3), 0.0);
    }

    #[test]
    fn series_arithmetic() {
        let a = ChebyshevSeries::new(vec![1.0, 2.0]);
        let b = ChebyshevSeries::new(vec![0.0, 1.0, 3.0]);
        let c = a.add(&b);
        assert_eq!(c.coeffs, vec![1.0, 3.0, 3.0]);
        let d = a.scaled(2.0);
        assert_eq!(d.coeffs, vec![2.0, 4.0]);
    }

    #[test]
    fn to_monomial_of_t3() {
        let s = ChebyshevSeries::new(vec![0.0, 0.0, 0.0, 1.0]);
        let mono = s.to_monomial();
        // T_3 = 4x³ − 3x.
        assert_eq!(mono.len(), 4);
        assert!((mono[0]).abs() < 1e-14);
        assert!((mono[1] + 3.0).abs() < 1e-14);
        assert!((mono[2]).abs() < 1e-14);
        assert!((mono[3] - 4.0).abs() < 1e-14);
    }

    #[test]
    fn apply_to_matrix_matches_eigen_decomposition() {
        // Diagonal matrix: p(A) v has entries p(d_i) v_i.
        let d = Matrix::from_diag(&[0.9, 0.5, -0.3, 0.1]);
        let v = Vector::from_f64_slice(&[1.0, -1.0, 2.0, 0.5]);
        let series = interpolate(|x: f64| x * x * x - 0.2 * x, 8);
        let result = series.apply_to_matrix(&d, &v);
        for (i, &di) in [0.9, 0.5, -0.3, 0.1].iter().enumerate() {
            let expected = series.eval(di) * v[i];
            assert!((result[i] - expected).abs() < 1e-12, "i = {i}");
        }
    }

    #[test]
    fn apply_to_matrix_for_symmetric_matrix() {
        // Symmetric matrix with known spectrum: p(A) computed via dense powers.
        let a = Matrix::from_f64_slice(2, 2, &[0.3, 0.2, 0.2, -0.1]);
        let v = Vector::from_f64_slice(&[1.0, 1.0]);
        // p(x) = T_0 + 0.5 T_2 = 1 + 0.5(2x²−1) = 0.5 + x².
        let series = ChebyshevSeries::new(vec![1.0, 0.0, 0.5]);
        let got = series.apply_to_matrix(&a, &v);
        let a2 = a.matmul(&a);
        let mut expected = a2.matvec(&v);
        expected.axpy(0.5, &v);
        assert!((&got - &expected).norm2() < 1e-13);
    }

    #[test]
    fn max_abs_on_interval_detects_violation() {
        let bounded = ChebyshevSeries::new(vec![0.0, 0.5]);
        assert!(bounded.max_abs_on_interval(1001) <= 0.5 + 1e-12);
        let unbounded = ChebyshevSeries::new(vec![0.0, 2.0]);
        assert!(unbounded.max_abs_on_interval(1001) > 1.5);
    }
}
