//! # qls-poly
//!
//! Polynomial machinery for the Quantum Singular Value Transformation.
//!
//! Solving a linear system with the QSVT requires a polynomial approximation of
//! the inverse function that satisfies the QSVT constraints (definite parity,
//! bounded by 1 in magnitude on [-1, 1]).  Section II-A4 of the paper uses the
//! classical construction of Childs–Kothari–Somma / Gilyén et al.: the function
//! `f_{ε,κ}(x) = (1 − (1 − x²)^b)/x` with `b(ε,κ) = ⌈κ² log(κ/ε)⌉` is an
//! ε-approximation of 1/x on `[-1, -1/κ] ∪ [1/κ, 1]`, and it admits the
//! explicit Chebyshev expansion of Eq. (4), truncated at
//! `D(ε,κ) = ⌈√(b log(4b/ε))⌉` terms.
//!
//! This crate implements:
//!
//! * [`chebyshev`] — Chebyshev polynomials of the first kind: evaluation,
//!   Clenshaw summation of series, interpolation of arbitrary functions at
//!   Chebyshev nodes, parity analysis, series arithmetic;
//! * [`inverse`] — the paper's Eq. (4): the explicit Chebyshev coefficients of
//!   the polynomial approximation of 1/x, the degree formulas `b(ε,κ)` and
//!   `D(ε,κ)`, and error measurement on the domain `[-1,-1/κ] ∪ [1/κ,1]`;
//! * [`rectangle`] — even polynomial approximations of the rectangle (window)
//!   function used to tame the inverse polynomial inside `(-1/κ, 1/κ)` so that
//!   the QSVT magnitude constraint `|P(x)| ≤ 1` holds on all of [-1, 1];
//! * [`special`] — the scalar special functions these constructions need
//!   (log-gamma, erf, binomial tail probabilities), implemented from scratch.

pub mod chebyshev;
pub mod inverse;
pub mod rectangle;
pub mod special;

pub use chebyshev::{chebyshev_nodes, chebyshev_t, interpolate, ChebyshevSeries, Parity};
pub use inverse::{degree_b, degree_cap_d, InversePolynomial};
pub use rectangle::rectangle_polynomial;
pub use special::{binomial_tail, erf, ln_gamma};
