//! Scalar special functions implemented from scratch.
//!
//! The Chebyshev coefficients of the inverse-function approximation (Eq. (4)
//! of the paper) are symmetric-binomial tail probabilities
//! `2^{-2b} Σ_{i>j} C(2b, b+i)`, where `b` can reach 10⁵–10⁶ for the condition
//! numbers studied in the paper.  Computing them through naive factorials is
//! impossible at that scale, so we go through the log-gamma function; `erf` is
//! needed by the smoothed rectangle-window construction.

/// Natural logarithm of the gamma function, Lanczos approximation (g = 7,
/// n = 9 coefficients), accurate to ~1e-13 relative error for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7 from the standard Lanczos tables.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial: k = {k} > n = {n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// The probability mass `P(X = b + i)` for `X ~ Binomial(2b, 1/2)`, i.e.
/// `2^{-2b} C(2b, b + i)`, computed in log space.
pub fn binomial_center_pmf(b: u64, i: u64) -> f64 {
    if i > b {
        return 0.0;
    }
    let ln_p = ln_binomial(2 * b, b + i) - 2.0 * (b as f64) * std::f64::consts::LN_2;
    ln_p.exp()
}

/// The symmetric-binomial tail probability `P(X > b + j) = 2^{-2b} Σ_{i=j+1}^{b} C(2b, b+i)`
/// for `X ~ Binomial(2b, 1/2)` — exactly the inner sum of Eq. (4) of the paper.
///
/// Terms are accumulated from the centre outwards and truncated once they fall
/// below `1e-30` relative to the running sum, which keeps the cost
/// `O(√b)` per call instead of `O(b)`.
pub fn binomial_tail(b: u64, j: u64) -> f64 {
    if j >= b {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut i = j + 1;
    loop {
        if i > b {
            break;
        }
        let term = binomial_center_pmf(b, i);
        sum += term;
        if term < 1e-30 && term < sum * 1e-18 {
            break;
        }
        i += 1;
    }
    sum
}

/// All tail sums `S_j = P(X > b + j)` for `j = 0..=j_max`, computed in a single
/// backward pass (suffix sums of the pmf), so the whole coefficient vector of
/// Eq. (4) costs `O(j_max + √b)` pmf evaluations.
pub fn binomial_tails(b: u64, j_max: u64) -> Vec<f64> {
    let j_max = j_max.min(b);
    // Find the largest index where the pmf is still non-negligible.
    // The pmf at offset i is ~ exp(-i²/b)/√(πb); it drops below 1e-30 around
    // i ≈ √(70 b), clamped to b.
    let cutoff = (((70.0 * b as f64).sqrt().ceil() as u64).max(j_max + 2)).min(b);
    let mut pmf = vec![0.0f64; (cutoff + 2) as usize];
    for (idx, p) in pmf.iter_mut().enumerate().take((cutoff + 1) as usize + 1) {
        let i = idx as u64;
        if i > b {
            break;
        }
        *p = binomial_center_pmf(b, i);
    }
    // Suffix sums: S_j = Σ_{i=j+1..cutoff} pmf[i]   (terms beyond cutoff < 1e-30).
    let mut tails = vec![0.0f64; (j_max + 1) as usize];
    let mut acc = 0.0f64;
    let mut i = cutoff + 1;
    while i > 0 {
        let idx = i as usize;
        if idx < pmf.len() {
            acc += pmf[idx];
        }
        if i - 1 <= j_max {
            tails[(i - 1) as usize] = acc;
        }
        i -= 1;
    }
    tails
}

/// Error function `erf(x)`, Abramowitz–Stegun 7.1.26-style rational
/// approximation refined with one extra term; absolute error < 3e-7, which is
/// ample for constructing smoothed window polynomials.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    // Coefficients of the A&S 7.1.26 approximation.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma(n as f64 + 1.0);
            assert!(
                (lg - f.ln()).abs() < 1e-12,
                "ln_gamma({}) = {lg}, expected {}",
                n + 1,
                f.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 5) - 252f64.ln()).abs() < 1e-12);
        assert_eq!(ln_binomial(7, 0), 0.0);
        assert_eq!(ln_binomial(7, 7), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        // Σ_{k} C(2b,k) 2^{-2b} = 1, i.e. pmf(0) + 2 Σ_{i≥1} pmf(i) = 1.
        for &b in &[5u64, 20, 100] {
            let mut total = binomial_center_pmf(b, 0);
            for i in 1..=b {
                total += 2.0 * binomial_center_pmf(b, i);
            }
            assert!((total - 1.0).abs() < 1e-10, "b = {b}, total = {total}");
        }
    }

    #[test]
    fn tail_matches_direct_sum_small_b() {
        // Direct evaluation with exact binomials for b = 10.
        let b = 10u64;
        let binom = |n: u64, k: u64| -> f64 {
            let mut r = 1.0f64;
            for i in 0..k {
                r = r * (n - i) as f64 / (i + 1) as f64;
            }
            r
        };
        for j in 0..b {
            let mut direct = 0.0;
            for i in (j + 1)..=b {
                direct += binom(2 * b, b + i);
            }
            direct /= 4f64.powi(b as i32);
            let fast = binomial_tail(b, j);
            assert!(
                (fast - direct).abs() < 1e-12,
                "j = {j}: fast {fast} vs direct {direct}"
            );
        }
    }

    #[test]
    fn tails_vector_matches_scalar_tails() {
        let b = 5000u64;
        let tails = binomial_tails(b, 50);
        for j in 0..=50u64 {
            let scalar = binomial_tail(b, j);
            let rel = if scalar > 0.0 {
                (tails[j as usize] - scalar).abs() / scalar
            } else {
                tails[j as usize].abs()
            };
            assert!(rel < 1e-10, "j = {j}");
        }
    }

    #[test]
    fn tail_decreases_with_j_and_starts_below_half() {
        let b = 1000u64;
        let tails = binomial_tails(b, 100);
        assert!(tails[0] < 0.5);
        for w in tails.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn large_b_is_fast_and_finite() {
        // b of the order used for kappa = 300: must not overflow or be NaN.
        let b = 1_000_000u64;
        let tails = binomial_tails(b, 10);
        assert!(tails.iter().all(|t| t.is_finite() && *t >= 0.0 && *t < 0.5));
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        for w in xs.windows(2) {
            assert!(erf(w[1]) >= erf(w[0]));
        }
        for &x in &xs {
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
        }
    }
}
