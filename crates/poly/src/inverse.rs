//! Polynomial approximation of the inverse function (Eq. (4) of the paper).
//!
//! The QSVT inverts a matrix by applying an odd polynomial `P(x) ≈ 1/x` to its
//! singular values.  The construction follows Childs–Kothari–Somma and Gilyén
//! et al. exactly as the paper states it:
//!
//! 1. `f_{ε,κ}(x) = (1 − (1 − x²)^b)/x` with `b(ε,κ) = ⌈κ² log(κ/ε)⌉` is an
//!    ε-approximation of 1/x on `D_κ = [-1, -1/κ] ∪ [1/κ, 1]`;
//! 2. `f_{ε,κ}` has the explicit Chebyshev expansion whose degree-(2j+1)
//!    coefficient is `4 (−1)^j 2^{−2b} Σ_{i=j+1}^{b} C(2b, b+i)`;
//! 3. truncating the expansion after `D(ε,κ) = ⌈√(b log(4b/ε))⌉` terms adds at
//!    most ε of error, giving an odd polynomial of degree `2D + 1`.
//!
//! For use inside the QSVT the polynomial is rescaled by `1/(2κ)` so that its
//! magnitude stays below 1 on the approximation domain (the paper's target is
//! an `ε/2κ`-approximation of `1/(2κ) · 1/x`).

use crate::chebyshev::ChebyshevSeries;
use crate::special::binomial_tails;

/// The smoothing exponent `b(ε,κ) = ⌈κ² log(κ/ε)⌉` of the paper.
pub fn degree_b(kappa: f64, epsilon: f64) -> u64 {
    assert!(kappa >= 1.0, "condition number must be >= 1");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    (kappa * kappa * (kappa / epsilon).ln()).ceil() as u64
}

/// The truncation order `D(ε,κ) = ⌈√(b log(4b/ε))⌉` of the paper
/// (the polynomial then has degree `2D + 1`).
pub fn degree_cap_d(kappa: f64, epsilon: f64) -> u64 {
    let b = degree_b(kappa, epsilon) as f64;
    (b * (4.0 * b / epsilon).ln()).sqrt().ceil() as u64
}

/// An odd Chebyshev polynomial approximating `1/x` on
/// `[-1, -1/κ] ∪ [1/κ, 1]`, together with the bookkeeping the QSVT solver
/// needs (the normalisation applied to satisfy `|P| ≤ 1` and the theoretical
/// parameters used to build it).
#[derive(Debug, Clone)]
pub struct InversePolynomial {
    /// Chebyshev series of the *normalised* polynomial `P(x) ≈ (1/(2κ)) · 1/x`.
    pub series: ChebyshevSeries,
    /// The condition number the polynomial was built for.
    pub kappa: f64,
    /// The requested approximation accuracy ε on the domain `D_κ`.
    pub epsilon: f64,
    /// The smoothing exponent `b(ε,κ)`.
    pub b: u64,
    /// The truncation order `D(ε,κ)`; the polynomial degree is `2D + 1`.
    pub cap_d: u64,
    /// The factor by which the raw `≈ 1/x` series was multiplied to keep
    /// `|P| ≤ 1` (equal to `1/(2κ)`).  The QSVT solution must be multiplied by
    /// `1/normalisation` (i.e. `2κ`) to undo it.
    pub normalisation: f64,
}

impl InversePolynomial {
    /// Build the Eq. (4) polynomial for a given condition number and target
    /// accuracy ε (the accuracy of the *un-normalised* approximation of 1/x on
    /// the domain, relative to the values of 1/x which are ≥ 1 there).
    pub fn new(kappa: f64, epsilon: f64) -> Self {
        let b = degree_b(kappa, epsilon);
        let cap_d = degree_cap_d(kappa, epsilon);
        Self::with_parameters(kappa, epsilon, b, cap_d)
    }

    /// Build the polynomial with explicitly chosen `b` and `D` (used by tests,
    /// by the resource model, and to reproduce runs where the angle-estimation
    /// algorithm of [32] fixes the effective accuracy itself).
    pub fn with_parameters(kappa: f64, epsilon: f64, b: u64, cap_d: u64) -> Self {
        let cap_d = cap_d.min(b); // the expansion has at most b non-zero terms
                                  // Tail sums S_j = 2^{-2b} Σ_{i=j+1}^{b} C(2b, b+i) for j = 0..D.
        let tails = binomial_tails(b, cap_d);
        // Coefficient of T_{2j+1} is 4 (-1)^j S_j; even coefficients vanish.
        let degree = (2 * cap_d + 1) as usize;
        let mut coeffs = vec![0.0f64; degree + 1];
        for (j, &s) in tails.iter().enumerate() {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            coeffs[2 * j + 1] = 4.0 * sign * s;
        }
        let normalisation = 1.0 / (2.0 * kappa);
        let mut series = ChebyshevSeries::new(coeffs);
        series.scale(normalisation);
        InversePolynomial {
            series,
            kappa,
            epsilon,
            b,
            cap_d,
            normalisation,
        }
    }

    /// Degree of the polynomial (2D + 1).
    pub fn degree(&self) -> usize {
        self.series.degree()
    }

    /// Evaluate the *normalised* polynomial `P(x) ≈ 1/(2κx)`.
    pub fn eval(&self, x: f64) -> f64 {
        self.series.eval(x)
    }

    /// Evaluate the un-normalised approximation of `1/x`.
    pub fn eval_inverse(&self, x: f64) -> f64 {
        self.series.eval(x) / self.normalisation
    }

    /// Maximum relative error of the un-normalised polynomial against `1/x`
    /// over a grid of `samples` points covering `[1/κ, 1]` (by parity the
    /// negative branch has the same error).
    pub fn max_relative_error(&self, samples: usize) -> f64 {
        let lo = 1.0 / self.kappa;
        (0..samples)
            .map(|i| lo + (1.0 - lo) * i as f64 / (samples - 1) as f64)
            .map(|x| {
                let approx = self.eval_inverse(x);
                let exact = 1.0 / x;
                ((approx - exact) / exact).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Maximum absolute value of the normalised polynomial over [-1, 1]
    /// (must not exceed 1 for the QSVT; the value inside (-1/κ, 1/κ) is the
    /// part the rectangle window of [`crate::rectangle`] is designed to tame).
    pub fn max_abs(&self, samples: usize) -> f64 {
        self.series.max_abs_on_interval(samples)
    }

    /// The target function `f_{ε,κ}(x) = (1 − (1 − x²)^b)/x` the series expands
    /// (evaluated directly, for validation).
    pub fn target_function(&self, x: f64) -> f64 {
        if x == 0.0 {
            return 0.0;
        }
        // (1 - (1-x²)^b)/x computed carefully: for |x| close to 1, (1-x²)^b
        // underflows harmlessly to 0.
        let one_minus_x2 = (1.0 - x * x).max(0.0);
        let pow = if one_minus_x2 == 0.0 {
            0.0
        } else {
            (self.b as f64 * one_minus_x2.ln()).exp()
        };
        (1.0 - pow) / x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_formulas_match_paper_expressions() {
        // b = ceil(kappa^2 ln(kappa/eps)).
        let b = degree_b(10.0, 1e-2);
        assert_eq!(b, (100.0f64 * (10.0f64 / 1e-2).ln()).ceil() as u64);
        let d = degree_cap_d(10.0, 1e-2);
        let bf = b as f64;
        assert_eq!(d, (bf * (4.0 * bf / 1e-2).ln()).sqrt().ceil() as u64);
        assert!(d < b);
    }

    #[test]
    fn polynomial_is_odd() {
        let p = InversePolynomial::new(4.0, 1e-3);
        assert_eq!(p.series.parity(1e-300), crate::chebyshev::Parity::Odd);
        // Odd polynomial: P(-x) = -P(x).
        for &x in &[0.3, 0.5, 0.9] {
            assert!((p.eval(-x) + p.eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn approximates_inverse_on_domain() {
        for &(kappa, eps) in &[(2.0, 1e-3), (5.0, 1e-4), (10.0, 1e-2), (20.0, 1e-3)] {
            let p = InversePolynomial::new(kappa, eps);
            let err = p.max_relative_error(400);
            // The construction guarantees absolute error eps against 1/x on the
            // domain where |1/x| >= 1, so relative error <= eps there; allow a
            // modest constant factor for the grid sampling.
            assert!(
                err < 5.0 * eps,
                "kappa = {kappa}, eps = {eps}: relative error {err}"
            );
        }
    }

    #[test]
    fn truncation_error_grows_when_d_is_reduced() {
        let kappa = 8.0;
        let eps = 1e-4;
        let b = degree_b(kappa, eps);
        let full = InversePolynomial::new(kappa, eps);
        let truncated =
            InversePolynomial::with_parameters(kappa, eps, b, degree_cap_d(kappa, eps) / 3);
        assert!(truncated.max_relative_error(300) > full.max_relative_error(300));
    }

    #[test]
    fn normalised_polynomial_bounded_on_domain() {
        let p = InversePolynomial::new(10.0, 1e-3);
        // On the domain |x| >= 1/kappa the normalised polynomial is <= ~1/2.
        let lo = 1.0 / 10.0;
        for i in 0..200 {
            let x = lo + (1.0 - lo) * i as f64 / 199.0;
            assert!(p.eval(x).abs() <= 0.55, "x = {x}, P = {}", p.eval(x));
        }
    }

    #[test]
    fn target_function_matches_series_for_moderate_degree() {
        // With the full (untruncated) number of terms the series equals f_{eps,kappa}.
        let kappa = 3.0;
        let eps = 1e-3;
        let b = degree_b(kappa, eps);
        let p = InversePolynomial::with_parameters(kappa, eps, b, b);
        for &x in &[0.4, 0.6, 0.8, 0.95, -0.5, -0.7] {
            let series_val = p.eval_inverse(x);
            let target = p.target_function(x);
            assert!(
                (series_val - target).abs() < 1e-8,
                "x = {x}: series {series_val} vs target {target}"
            );
        }
    }

    #[test]
    fn eval_inverse_matches_inverse_scaling() {
        let p = InversePolynomial::new(5.0, 1e-3);
        let x = 0.7;
        assert!((p.eval(x) * 2.0 * 5.0 - p.eval_inverse(x)).abs() < 1e-14);
    }

    #[test]
    fn degree_is_2d_plus_1() {
        let p = InversePolynomial::new(6.0, 1e-3);
        assert_eq!(p.degree(), (2 * p.cap_d + 1) as usize);
    }

    #[test]
    fn larger_kappa_needs_larger_degree() {
        let d2 = InversePolynomial::new(2.0, 1e-3).degree();
        let d10 = InversePolynomial::new(10.0, 1e-3).degree();
        let d50 = InversePolynomial::new(50.0, 1e-3).degree();
        assert!(d2 < d10 && d10 < d50);
    }

    #[test]
    fn tighter_epsilon_needs_larger_degree() {
        let coarse = InversePolynomial::new(10.0, 1e-1).degree();
        let fine = InversePolynomial::new(10.0, 1e-6).degree();
        assert!(coarse < fine);
    }

    #[test]
    fn large_condition_number_construction_is_feasible() {
        // kappa = 300 as in Fig. 4 of the paper; just ensure construction works
        // and the polynomial is finite and odd with the expected degree.
        let kappa = 300.0;
        let eps = 1e-2;
        let p = InversePolynomial::new(kappa, eps);
        assert_eq!(p.degree(), (2 * p.cap_d + 1) as usize);
        assert!(p.series.coeffs.iter().all(|c| c.is_finite()));
        // Spot-check accuracy at a few points of the domain.
        for &x in &[1.0 / kappa, 0.01, 0.1, 1.0] {
            let rel = ((p.eval_inverse(x) - 1.0 / x) / (1.0 / x)).abs();
            assert!(rel < 0.1, "x = {x}, relative error {rel}");
        }
    }
}
