//! Even polynomial approximation of the rectangle (window) function.
//!
//! The Chebyshev expansion of 1/x (Eq. (4)) is only controlled on
//! `[-1,-1/κ] ∪ [1/κ,1]`; inside `(-1/κ, 1/κ)` it can exceed 1 in magnitude,
//! violating the QSVT requirement `|P(x)| ≤ 1`.  The paper (and
//! Martyn–Rossi–Tan–Chuang, its Ref. [30]) fixes this by multiplying the
//! inverse polynomial by an even polynomial approximating the *rectangle*
//! function — close to 1 on the approximation domain and close to 0 in a
//! neighbourhood of the origin — so the product remains bounded.
//!
//! We construct the window by Chebyshev interpolation of the smoothed step
//! `w(x) = ½ [erf(k(|x| − t)) + 1]` with the transition centred at
//! `t = ¾·threshold`.  The steepness `k` is tied to the polynomial degree
//! (`k = degree/8`) so the interpolant always resolves the transition without
//! Gibbs-style overshoot; [`required_degree`] returns the degree needed for
//! the transition to fit between `threshold/2` and `threshold`.

use crate::chebyshev::{interpolate, ChebyshevSeries, Parity};
use crate::special::erf;

/// An even polynomial window `W(x)`: `W ≈ 0` for `|x| ≤ threshold/2` and
/// `W ≈ 1` for `|x| ≥ threshold`, bounded by ~1 on [-1, 1].
#[derive(Debug, Clone)]
pub struct RectanglePolynomial {
    /// Chebyshev series of the window.
    pub series: ChebyshevSeries,
    /// The transition threshold (typically `1/κ`).
    pub threshold: f64,
    /// Interpolation degree used.
    pub degree: usize,
}

/// The polynomial degree needed for the erf transition of the window to fit
/// between `threshold/2` and `threshold` (≈ 80/threshold).
pub fn required_degree(threshold: f64) -> usize {
    assert!(
        threshold > 0.0 && threshold < 1.0,
        "threshold must be in (0, 1)"
    );
    (80.0 / threshold).ceil() as usize
}

/// Build an even rectangle-window polynomial with transition at `threshold`
/// (≈ 1/κ) and the given polynomial `degree` (rounded up to the next even
/// number).  Use [`required_degree`] to obtain a degree for which the window
/// is sharp enough to vanish below `threshold/2`; lower degrees give smoother,
/// wider transitions but never overshoot.
pub fn rectangle_polynomial(threshold: f64, degree: usize) -> RectanglePolynomial {
    assert!(
        threshold > 0.0 && threshold < 1.0,
        "threshold must be in (0, 1)"
    );
    let degree = degree.max(8);
    let degree = if degree.is_multiple_of(2) {
        degree
    } else {
        degree + 1
    };
    // Steepness tied to the degree so the interpolant resolves the transition.
    let k = (degree as f64 / 8.0).max(4.0);
    let t = 0.75 * threshold;
    let smoothed = move |x: f64| {
        let ax = x.abs();
        0.5 * (erf(k * (ax - t)) + 1.0)
    };
    let mut series = interpolate(smoothed, degree + 1);
    // Force exact evenness: odd coefficients of an even function are already
    // ~machine-eps; zero them so the parity is exact for downstream QSP use.
    for c in series.coeffs.iter_mut().skip(1).step_by(2) {
        *c = 0.0;
    }
    RectanglePolynomial {
        series,
        threshold,
        degree,
    }
}

impl RectanglePolynomial {
    /// Evaluate the window at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.series.eval(x)
    }

    /// Multiply an odd Chebyshev series by this even window, returning an odd
    /// series of degree `deg(p) + deg(w)`.  The product is computed by
    /// re-interpolating the pointwise product, which is exact once the
    /// interpolation degree covers the product degree.
    pub fn apply_to(&self, p: &ChebyshevSeries) -> ChebyshevSeries {
        let target_degree = p.degree() + self.series.degree();
        let nodes = target_degree + 1;
        let product = |x: f64| p.eval(x) * self.series.eval(x);
        let mut result = interpolate(product, nodes);
        // The product of an odd and an even polynomial is odd; enforce parity.
        if p.parity(1e-12) == Parity::Odd {
            for c in result.coeffs.iter_mut().step_by(2) {
                *c = 0.0;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inverse::InversePolynomial;

    #[test]
    fn window_is_even() {
        let w = rectangle_polynomial(0.2, required_degree(0.2));
        assert_eq!(w.series.parity(1e-300), Parity::Even);
        for &x in &[0.1, 0.3, 0.7, 0.95] {
            assert!((w.eval(x) - w.eval(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn window_is_near_one_outside_and_near_zero_inside() {
        let threshold = 0.2;
        let w = rectangle_polynomial(threshold, required_degree(threshold));
        for i in 0..50 {
            let x = threshold + (1.0 - threshold) * i as f64 / 49.0;
            assert!((w.eval(x) - 1.0).abs() < 0.05, "x = {x}, w = {}", w.eval(x));
        }
        for i in 0..20 {
            let x = 0.25 * threshold * i as f64 / 19.0;
            assert!(w.eval(x).abs() < 0.05, "x = {x}, w = {}", w.eval(x));
        }
    }

    #[test]
    fn window_stays_bounded() {
        let w = rectangle_polynomial(0.1, required_degree(0.1));
        assert!(w.series.max_abs_on_interval(4001) < 1.1);
    }

    #[test]
    fn higher_degree_sharpens_transition() {
        let threshold = 0.25;
        let coarse = rectangle_polynomial(threshold, 40);
        let fine = rectangle_polynomial(threshold, required_degree(threshold));
        // Measure the deviation from the ideal rectangle on the "outside" region.
        let deviation = |w: &RectanglePolynomial| -> f64 {
            (0..100)
                .map(|i| threshold + (1.0 - threshold) * i as f64 / 99.0)
                .map(|x| (w.eval(x) - 1.0).abs())
                .fold(0.0, f64::max)
        };
        assert!(deviation(&fine) <= deviation(&coarse));
    }

    #[test]
    fn required_degree_scales_inversely_with_threshold() {
        assert!(required_degree(0.1) > required_degree(0.2));
        assert_eq!(required_degree(0.2), 400);
    }

    #[test]
    fn windowed_inverse_is_odd_and_bounded_everywhere() {
        // The raw normalised inverse polynomial can exceed 1 inside (-1/k, 1/k);
        // multiplying by the window must bring it below ~1 while keeping the
        // approximation quality on the domain.
        let kappa = 4.0;
        let eps = 1e-3;
        let p = InversePolynomial::new(kappa, eps);
        let threshold = 1.0 / kappa;
        let w = rectangle_polynomial(threshold, required_degree(threshold));
        let windowed = w.apply_to(&p.series);
        assert_eq!(windowed.parity(1e-10), Parity::Odd);
        assert!(windowed.max_abs_on_interval(4001) < 1.05);
        // Accuracy preserved on the domain [1/kappa, 1].
        for i in 0..100 {
            let x = 1.0 / kappa + (1.0 - 1.0 / kappa) * i as f64 / 99.0;
            let exact = 1.0 / (2.0 * kappa * x);
            assert!(
                (windowed.eval(x) - exact).abs() < 5e-2,
                "x = {x}: windowed {} vs exact {exact}",
                windowed.eval(x)
            );
        }
    }

    #[test]
    #[should_panic]
    fn invalid_threshold_rejected() {
        let _ = rectangle_polynomial(1.5, 20);
    }
}
