//! Algorithm 2: mixed-precision iterative refinement with a QSVT inner solver.
//!
//! This is the paper's contribution.  A first solution `x₀` is computed by the
//! QSVT at low accuracy ε_l (on the "QPU"); then, until the scaled residual
//! `ω = ‖b − A x_i‖/‖b‖` drops below the target ε, each iteration
//!
//! 1. computes the residual `r_i = b − A x_i` in high precision `u` (CPU),
//! 2. solves `A e_i = r_i` at accuracy ε_l with the QSVT (QPU),
//! 3. updates `x_{i+1} = x_i + e_i` in high precision (CPU).
//!
//! Theorem III.1: when `ε_l·κ < 1` the scaled residual contracts by a factor
//! `ε_l·κ` per iteration, so at most `⌈log ε / log(ε_l κ)⌉` iterations are
//! needed.  The refiner records the whole history (per-iteration residuals,
//! contraction factors, quantum cost) so the convergence figures (Figs. 3–4)
//! and the complexity comparison (Fig. 5) can be regenerated directly from a
//! run.

use crate::solver::{QsvtLinearSolver, QsvtSolverOptions, SolveCost};
use qls_linalg::{scaled_residual, LinearOperator, Matrix, Vector};
use qls_qsvt::QsvtError;
use rand::Rng;
use serde::Serialize;

/// Options of the hybrid refinement loop.
#[derive(Debug, Clone, Copy)]
pub struct HybridRefinementOptions {
    /// Target scaled residual ε (the paper uses 1e-11 in Fig. 3).
    pub target_epsilon: f64,
    /// Low accuracy ε_l of each QSVT solve.
    pub epsilon_l: f64,
    /// Hard cap on refinement iterations (safety net above the theoretical bound).
    pub max_iterations: usize,
    /// Options passed to the inner QSVT solver (mode, shots, …); its
    /// `epsilon_l` field is overwritten with the value above.
    pub solver: QsvtSolverOptions,
}

impl Default for HybridRefinementOptions {
    fn default() -> Self {
        HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 1e-2,
            max_iterations: 60,
            solver: QsvtSolverOptions::default(),
        }
    }
}

/// Why the hybrid refinement stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HybridStatus {
    /// Target scaled residual reached.
    Converged,
    /// Iteration cap reached first.
    MaxIterations,
    /// The residual stopped contracting (ε_l·κ too close to 1, or limiting
    /// accuracy reached).
    Stagnated,
}

/// One step of the refinement history.
#[derive(Debug, Clone, Serialize)]
pub struct HybridStep {
    /// Iteration index (0 = initial solve).
    pub iteration: usize,
    /// Scaled residual ω after this step.
    pub scaled_residual: f64,
    /// Theorem III.1 prediction `(ε_l κ)^{i+1}` for this step.
    pub theoretical_bound: f64,
    /// Quantum/classical cost of the solve performed at this step.
    pub cost: SolveCost,
}

/// Complete record of a hybrid refinement run.
#[derive(Debug, Clone, Serialize)]
pub struct HybridHistory {
    /// Per-step records (index 0 is the initial solve).
    pub steps: Vec<HybridStep>,
    /// Termination status.
    pub status: HybridStatus,
    /// Condition number used for the theoretical bound.
    pub kappa: f64,
    /// ε_l of the inner solver.
    pub epsilon_l: f64,
    /// Target ε.
    pub target_epsilon: f64,
}

impl HybridHistory {
    /// Number of refinement iterations (excluding the initial solve).
    pub fn iterations(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// Final scaled residual.
    pub fn final_residual(&self) -> f64 {
        self.steps
            .last()
            .map(|s| s.scaled_residual)
            .unwrap_or(f64::NAN)
    }

    /// Theorem III.1 iteration bound `⌈log ε / log(ε_l κ)⌉`, when it applies.
    pub fn iteration_bound(&self) -> Option<usize> {
        qls_linalg::refine::iteration_bound(self.target_epsilon, self.epsilon_l, self.kappa)
    }

    /// Per-iteration contraction factors ω_{i+1}/ω_i.
    pub fn contraction_factors(&self) -> Vec<f64> {
        self.steps
            .windows(2)
            .map(|w| {
                if w[0].scaled_residual == 0.0 {
                    0.0
                } else {
                    w[1].scaled_residual / w[0].scaled_residual
                }
            })
            .collect()
    }

    /// Total number of block-encoding calls across all solves — the quantum
    /// complexity axis of Fig. 5.
    pub fn total_block_encoding_calls(&self) -> usize {
        self.steps.iter().map(|s| s.cost.block_encoding_calls).sum()
    }

    /// Total number of measurement shots across all solves.
    pub fn total_shots(&self) -> usize {
        self.steps.iter().map(|s| s.cost.shots).sum()
    }

    /// True when every measured residual satisfies the Theorem III.1 bound
    /// `ω_i ≤ (ε_l κ)^{i+1}` up to the slack factor.
    pub fn satisfies_theorem_bound(&self, slack: f64) -> bool {
        self.steps
            .iter()
            .all(|s| s.scaled_residual <= s.theoretical_bound * slack)
    }
}

/// The hybrid CPU/QPU mixed-precision refiner (Algorithm 2).
///
/// Construction compiles; solving never does.  The matrix is fixed, so the
/// block-encoding, polynomial, phase factors *and the compiled QSVT circuit*
/// are all built exactly once in [`HybridRefiner::new`] — every refinement
/// iteration of every [`HybridRefiner::solve`] / [`HybridRefiner::solve_many`]
/// call reuses them (verified against
/// `qls_sim::circuit_compile_count` in the tests).  This is the paper's
/// access pattern: one matrix, many solves.
///
/// The refiner is generic over the classical operator representation of `A`
/// ([`LinearOperator`], dense [`Matrix`] by default so every existing caller
/// compiles unchanged).  The CPU half of the loop — the high-precision
/// residual `r = b − A x` recomputed every iteration — goes through the
/// operator, so a CSR / tridiagonal / stencil operator makes the hot
/// classical path O(nnz) instead of O(N²); only the one-time quantum-side
/// construction in `new` densifies (the inner correction solves are the QSVT
/// circuit, not a classical factorization, so after construction no step of
/// `solve` / `solve_many` ever materialises a dense matrix — asserted by the
/// `hybrid_refiner_never_densifies_after_construction` operator-equivalence
/// test).  Because the CSR and stencil matvecs are bit-identical to the dense
/// kernel, refining over a structured operator reproduces the dense
/// convergence history float for float (see the operator-equivalence tests).
pub struct HybridRefiner<Op: LinearOperator<f64> = Matrix<f64>> {
    operator: Op,
    solver: QsvtLinearSolver<Op>,
    options: HybridRefinementOptions,
}

impl<Op: LinearOperator<f64>> HybridRefiner<Op> {
    /// Prepare the refiner: builds the QSVT solver once (block-encoding,
    /// polynomial and compiled circuit are reused across all iterations and
    /// all right-hand sides, as in the paper's communication scheme of
    /// Fig. 1).
    pub fn new(a: &Op, options: HybridRefinementOptions) -> Result<Self, QsvtError> {
        let mut solver_options = options.solver;
        solver_options.epsilon_l = options.epsilon_l;
        let solver = QsvtLinearSolver::new(a, solver_options)?;
        Ok(HybridRefiner {
            operator: a.clone(),
            solver,
            options,
        })
    }

    /// The inner QSVT solver.
    pub fn solver(&self) -> &QsvtLinearSolver<Op> {
        &self.solver
    }

    /// The classical operator the residuals are computed against.
    pub fn operator(&self) -> &Op {
        &self.operator
    }

    /// The refinement options.
    pub fn options(&self) -> &HybridRefinementOptions {
        &self.options
    }

    /// Run Algorithm 2 for the right-hand side `b`.
    pub fn solve<R: Rng>(
        &self,
        b: &Vector<f64>,
        rng: &mut R,
    ) -> Result<(Vector<f64>, HybridHistory), QsvtError> {
        let kappa = self.solver.kappa();
        let epsilon_l = self.options.epsilon_l;
        let contraction = (epsilon_l * kappa).min(1.0);

        // Initial solve on the QPU.
        let first = self.solver.solve(b, rng)?;
        let mut x = first.solution.clone();
        let mut steps = vec![HybridStep {
            iteration: 0,
            scaled_residual: first.scaled_residual,
            theoretical_bound: contraction,
            cost: first.cost,
        }];

        let mut status = HybridStatus::MaxIterations;
        if first.scaled_residual <= self.options.target_epsilon {
            status = HybridStatus::Converged;
        } else {
            let mut prev_omega = first.scaled_residual;
            for it in 1..=self.options.max_iterations {
                // CPU: residual in high precision.
                let r = b - &self.operator.matvec(&x);
                // QPU: correction solve at accuracy ε_l.
                let correction = self.solver.solve(&r, rng)?;
                // CPU: update in high precision.
                x += &correction.solution;

                let omega = scaled_residual(&self.operator, &x, b);
                steps.push(HybridStep {
                    iteration: it,
                    scaled_residual: omega,
                    theoretical_bound: contraction.powi(it as i32 + 1),
                    cost: correction.cost,
                });

                if omega <= self.options.target_epsilon {
                    status = HybridStatus::Converged;
                    break;
                }
                if omega > prev_omega * 0.95 {
                    status = HybridStatus::Stagnated;
                    break;
                }
                prev_omega = omega;
            }
        }

        Ok((
            x,
            HybridHistory {
                steps,
                status,
                kappa,
                epsilon_l,
                target_epsilon: self.options.target_epsilon,
            },
        ))
    }

    /// Run Algorithm 2 for **many** right-hand sides against the same matrix
    /// — the multi-RHS workload (e.g. a Poisson problem under several
    /// forcing terms).  All systems share the one compiled QSVT circuit, and
    /// each round of the refinement loop batches the correction solves of
    /// every still-active system through
    /// [`QsvtLinearSolver::solve_many`] (coarse-grained thread fan-out
    /// across the batch in circuit mode).
    ///
    /// With exact readout (`shots: None`) the returned solutions and
    /// histories are identical to calling [`HybridRefiner::solve`] per
    /// right-hand side; with finite-shot sampling the RNG is consumed in
    /// batch order instead of per-system order.
    pub fn solve_many<R: Rng>(
        &self,
        bs: &[Vector<f64>],
        rng: &mut R,
    ) -> Result<Vec<(Vector<f64>, HybridHistory)>, QsvtError> {
        let kappa = self.solver.kappa();
        let epsilon_l = self.options.epsilon_l;
        let contraction = (epsilon_l * kappa).min(1.0);

        struct System {
            x: Vector<f64>,
            steps: Vec<HybridStep>,
            status: Option<HybridStatus>,
            prev_omega: f64,
        }

        // Initial solves for every right-hand side, batched.
        let firsts = self.solver.solve_many(bs, rng)?;
        let mut systems: Vec<System> = firsts
            .into_iter()
            .map(|first| {
                let status = (first.scaled_residual <= self.options.target_epsilon)
                    .then_some(HybridStatus::Converged);
                System {
                    x: first.solution.clone(),
                    prev_omega: first.scaled_residual,
                    steps: vec![HybridStep {
                        iteration: 0,
                        scaled_residual: first.scaled_residual,
                        theoretical_bound: contraction,
                        cost: first.cost,
                    }],
                    status,
                }
            })
            .collect();

        for it in 1..=self.options.max_iterations {
            let active: Vec<usize> = (0..systems.len())
                .filter(|&k| systems[k].status.is_none())
                .collect();
            if active.is_empty() {
                break;
            }
            // CPU: residuals of all active systems in high precision.
            let residuals: Vec<Vector<f64>> = active
                .iter()
                .map(|&k| &bs[k] - &self.operator.matvec(&systems[k].x))
                .collect();
            // QPU: one batched round of correction solves at accuracy ε_l.
            let corrections = self.solver.solve_many(&residuals, rng)?;
            for (&k, correction) in active.iter().zip(corrections) {
                let sys = &mut systems[k];
                // CPU: update in high precision.
                sys.x += &correction.solution;
                let omega = scaled_residual(&self.operator, &sys.x, &bs[k]);
                sys.steps.push(HybridStep {
                    iteration: it,
                    scaled_residual: omega,
                    theoretical_bound: contraction.powi(it as i32 + 1),
                    cost: correction.cost,
                });
                if omega <= self.options.target_epsilon {
                    sys.status = Some(HybridStatus::Converged);
                } else if omega > sys.prev_omega * 0.95 {
                    sys.status = Some(HybridStatus::Stagnated);
                }
                sys.prev_omega = omega;
            }
        }

        Ok(systems
            .into_iter()
            .map(|sys| {
                let history = HybridHistory {
                    steps: sys.steps,
                    status: sys.status.unwrap_or(HybridStatus::MaxIterations),
                    kappa,
                    epsilon_l,
                    target_epsilon: self.options.target_epsilon,
                };
                (sys.x, history)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::generate::{
        random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
    };
    use qls_linalg::lu::lu_solve;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = random_unit_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn converges_to_target_epsilon_for_kappa_10() {
        // The Fig. 3 setting: N = 16, kappa = 10, eps = 1e-11.
        let (a, b) = system(10.0, 16, 151);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (x, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
        assert!(history.final_residual() <= 1e-11);
        // Iteration count within the Theorem III.1 bound.
        let bound = history.iteration_bound().unwrap();
        assert!(
            history.iterations() <= bound,
            "iterations {} exceed bound {bound}",
            history.iterations()
        );
        // Solution matches LU to the target accuracy scale.
        let reference = lu_solve(&a, &b).unwrap();
        assert!((&x - &reference).norm2() / reference.norm2() < 1e-9);
    }

    #[test]
    fn residual_satisfies_theorem_bound_each_iteration() {
        let (a, b) = system(10.0, 16, 152);
        for &eps_l in &[1e-2, 1e-3] {
            let options = HybridRefinementOptions {
                target_epsilon: 1e-11,
                epsilon_l: eps_l,
                ..Default::default()
            };
            let refiner = HybridRefiner::new(&a, options).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(12);
            let (_, history) = refiner.solve(&b, &mut rng).unwrap();
            assert_eq!(history.status, HybridStatus::Converged);
            // Allow a modest constant-factor slack over the bound.
            assert!(
                history.satisfies_theorem_bound(10.0),
                "residuals {:?} vs bounds {:?}",
                history
                    .steps
                    .iter()
                    .map(|s| s.scaled_residual)
                    .collect::<Vec<_>>(),
                history
                    .steps
                    .iter()
                    .map(|s| s.theoretical_bound)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn smaller_epsilon_l_needs_fewer_iterations() {
        let (a, b) = system(10.0, 16, 153);
        let run = |eps_l: f64| -> usize {
            let options = HybridRefinementOptions {
                target_epsilon: 1e-10,
                epsilon_l: eps_l,
                ..Default::default()
            };
            let refiner = HybridRefiner::new(&a, options).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let (_, history) = refiner.solve(&b, &mut rng).unwrap();
            assert_eq!(history.status, HybridStatus::Converged);
            history.iterations()
        };
        let coarse = run(1e-2);
        let fine = run(1e-4);
        assert!(fine <= coarse);
        assert!(coarse >= 2);
    }

    #[test]
    fn contraction_factor_tracks_epsilon_l_kappa() {
        let (a, b) = system(20.0, 16, 154);
        let eps_l = 1e-3;
        let options = HybridRefinementOptions {
            target_epsilon: 1e-12,
            epsilon_l: eps_l,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let expected = eps_l * 20.0;
        for (i, &factor) in history.contraction_factors().iter().enumerate() {
            // Each contraction factor should not exceed the theoretical eps_l*kappa
            // by more than a small constant (and is usually much better).
            assert!(
                factor <= expected * 5.0,
                "iteration {i}: contraction {factor} vs expected ≤ {expected}"
            );
        }
    }

    #[test]
    fn larger_kappa_converges_with_more_iterations() {
        // The Fig. 4 regime (scaled down in kappa to keep the test fast).
        let (a100, b100) = system(100.0, 16, 155);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a100, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (_, history) = refiner.solve(&b100, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
        assert!(history.iterations() <= history.iteration_bound().unwrap());
        // At least one refinement iteration is needed: a single eps_l-accurate
        // solve cannot reach 1e-10 for kappa = 100.
        assert!(history.iterations() >= 1);
    }

    #[test]
    fn cost_accumulates_across_iterations() {
        let (a, b) = system(10.0, 16, 156);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let per_solve = history.steps[0].cost.block_encoding_calls;
        assert_eq!(
            history.total_block_encoding_calls(),
            per_solve * history.steps.len()
        );
        assert!(history.total_shots() > 0);
    }

    #[test]
    fn refinement_compiles_the_qsvt_circuit_exactly_once() {
        // Acceptance check of the compile-once engine: in circuit mode the
        // QSVT circuit is compiled during `new` and *never* inside the
        // iteration loop.  The compile counter is thread-local, so other
        // test threads cannot perturb it.
        let (a, b) = system(2.0, 4, 158);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                ..Default::default()
            },
            ..Default::default()
        };
        let before_new = qls_sim::circuit_compile_count();
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let compiles_in_new = qls_sim::circuit_compile_count() - before_new;
        assert!(
            compiles_in_new >= 1,
            "construction must compile the circuit"
        );

        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let before_solve = qls_sim::circuit_compile_count();
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let (_, _) = (
            refiner
                .solve_many(&[b.clone(), b.clone()], &mut rng)
                .unwrap(),
            (),
        );
        assert_eq!(
            qls_sim::circuit_compile_count(),
            before_solve,
            "no recompilation inside the refinement loop"
        );
        assert!(history.iterations() >= 1, "the loop actually iterated");

        // The retained recompile baseline, by contrast, compiles on every
        // inner solve — once per step of the history.
        let baseline = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-8,
                epsilon_l: 0.05,
                solver: crate::solver::QsvtSolverOptions {
                    mode: qls_qsvt::QsvtMode::CircuitReal,
                    recompile_baseline: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let before_baseline = qls_sim::circuit_compile_count();
        let (_, baseline_history) = baseline.solve(&b, &mut rng).unwrap();
        assert_eq!(
            qls_sim::circuit_compile_count() - before_baseline,
            baseline_history.steps.len(),
            "the baseline recompiles once per solve step"
        );
    }

    #[test]
    fn recompile_baseline_agrees_with_compile_once_refinement() {
        let (a, b) = system(2.0, 4, 159);
        let make = |recompile_baseline: bool| HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                recompile_baseline,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let (x_fast, h_fast) = HybridRefiner::new(&a, make(false))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        let (x_slow, h_slow) = HybridRefiner::new(&a, make(true))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        assert_eq!(h_fast.status, h_slow.status);
        assert_eq!(h_fast.steps.len(), h_slow.steps.len());
        let rel = (&x_fast - &x_slow).norm2() / x_slow.norm2();
        assert!(rel < 1e-10, "paths diverge by {rel}");
    }

    #[test]
    fn fused_refinement_agrees_with_unfused_refinement() {
        // The whole refinement loop on the optimized (fused) QSVT circuit vs
        // the unoptimized compile-once engine: same convergence history,
        // same solution to well below the target accuracy.
        let (a, b) = system(2.0, 4, 161);
        let make = |opt_level: qls_sim::OptLevel| HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                opt_level,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let (x_fused, h_fused) = HybridRefiner::new(&a, make(qls_sim::OptLevel::Fuse))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        let (x_raw, h_raw) = HybridRefiner::new(&a, make(qls_sim::OptLevel::None))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        assert_eq!(h_fused.status, h_raw.status);
        assert_eq!(h_fused.steps.len(), h_raw.steps.len());
        let rel = (&x_fused - &x_raw).norm2() / x_raw.norm2();
        assert!(rel < 1e-10, "fused and unfused refinement diverge by {rel}");
    }

    #[test]
    fn solve_many_matches_sequential_solves() {
        let (a, _) = system(10.0, 16, 160);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let bs: Vec<Vector<f64>> = (0..4).map(|_| random_unit_vector(16, &mut rng)).collect();
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let many = refiner.solve_many(&bs, &mut rng).unwrap();
        assert_eq!(many.len(), bs.len());
        for (b, (x_many, h_many)) in bs.iter().zip(&many) {
            let (x_single, h_single) = refiner.solve(b, &mut rng).unwrap();
            assert_eq!(h_many.status, h_single.status);
            assert_eq!(h_many.steps.len(), h_single.steps.len());
            // Exact readout: batched and sequential refinement are the same
            // float-for-float computation.
            assert_eq!((x_many - &x_single).norm2(), 0.0);
            for (sm, ss) in h_many.steps.iter().zip(&h_single.steps) {
                assert_eq!(sm.scaled_residual, ss.scaled_residual);
            }
        }
        // Every system individually satisfies the convergence contract.
        for (_, history) in &many {
            assert_eq!(history.status, HybridStatus::Converged);
            assert!(history.final_residual() <= 1e-10);
        }
    }

    #[test]
    fn poisson_matrix_refinement() {
        let a = qls_linalg::poisson_1d::<f64>(16, false).to_dense();
        let mut rng = ChaCha8Rng::seed_from_u64(157);
        let b = random_unit_vector(16, &mut rng);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
    }
}
