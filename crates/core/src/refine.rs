//! Algorithm 2: mixed-precision iterative refinement with a QSVT inner solver.
//!
//! This is the paper's contribution.  A first solution `x₀` is computed by the
//! QSVT at low accuracy ε_l (on the "QPU"); then, until the scaled residual
//! `ω = ‖b − A x_i‖/‖b‖` drops below the target ε, each iteration
//!
//! 1. computes the residual `r_i = b − A x_i` in high precision `u` (CPU),
//! 2. solves `A e_i = r_i` at accuracy ε_l with the QSVT (QPU),
//! 3. updates `x_{i+1} = x_i + e_i` in high precision (CPU).
//!
//! Theorem III.1: when `ε_l·κ < 1` the scaled residual contracts by a factor
//! `ε_l·κ` per iteration, so at most `⌈log ε / log(ε_l κ)⌉` iterations are
//! needed.  The refiner records the whole history (per-iteration residuals,
//! contraction factors, quantum cost) so the convergence figures (Figs. 3–4)
//! and the complexity comparison (Fig. 5) can be regenerated directly from a
//! run.
//!
//! ## Robustness: the recovery ladder
//!
//! The refinement loop is the natural place to absorb a noisy or faulty
//! inner solver — the paper's whole point is that ε_l-accurate solves
//! suffice, so a *bad* solve is just a solve whose effective ε_l was too
//! large, and re-running or improving it is always sound.  A
//! [`RecoveryPolicy`] intercepts the per-iteration health checks (solve
//! errors such as `PostSelectionFailed` or an injected transient, non-finite
//! corrections/residuals, a contraction factor ≥ 1) and escalates through a
//! bounded ladder instead of aborting:
//!
//! 1. **retry** the correction solve as-is (transient faults and unlucky
//!    post-selections are per-run accidents);
//! 2. **escalate shots** ×[`RecoveryPolicy::shot_escalation_factor`]
//!    (readout noise shrinks as `1/√shots`) — skipped under exact readout;
//! 3. **tighten the solver**: a second `QsvtLinearSolver` at
//!    `ε_l × epsilon_tighten_factor` (higher QSVT degree), built lazily on
//!    first use and reused afterwards;
//! 4. **classical fallback**: solve this iteration's correction with the
//!    operator's own structured [`InnerSolver`]
//!    ([`FactorizableOperator::factorize`]) — graceful degradation, the
//!    refinement stays correct but that step ran on the CPU.
//!
//! Every action is recorded in a [`RecoveryLog`] inside [`HybridHistory`],
//! and the terminal status distinguishes *how* the run ended:
//! [`HybridStatus::Converged`] (clean), `RecoveredConverged` (converged
//! after ≥ 1 recovery action), `Degraded` (converged but ≥ 1 iteration used
//! the classical fallback), `Failed { reason }` (the ladder — or the bare
//! solve, when recovery is disabled — could not produce a usable step).
//!
//! With recovery disabled (the default) and no fault injector attached, the
//! loop is bit-identical to the pre-recovery implementation — the house
//! equivalence-oracle pattern; `recovery_disabled_clean_path_is_bit_identical`
//! asserts it.

use crate::error::QlsError;
use crate::solver::{QsvtLinearSolver, QsvtSolverOptions, SolveCost};
use qls_linalg::{scaled_residual, FactorizableOperator, InnerSolver, Matrix, Vector};
use qls_qsvt::QsvtError;
use qls_sim::fault::SharedFaultInjector;
use rand::Rng;
use serde::Serialize;
use std::sync::OnceLock;

/// How many **consecutive** non-contracting iterations (ω_{i+1} >
/// 0.95·ω_i) it takes to declare [`HybridStatus::Stagnated`].  One noisy
/// iteration under finite-shot readout is expected and must not kill the
/// run; two in a row mean the contraction has genuinely stopped (ε_l·κ too
/// close to 1, or limiting accuracy reached).
pub const STAGNATION_WINDOW: usize = 2;

/// An iteration is "contracting" when ω_{i+1} ≤ `CONTRACTION_TOLERANCE`·ω_i
/// (the 5% slack absorbs benign rounding wiggle near limiting accuracy).
const CONTRACTION_TOLERANCE: f64 = 0.95;

/// Options of the hybrid refinement loop.
#[derive(Debug, Clone, Copy)]
pub struct HybridRefinementOptions {
    /// Target scaled residual ε (the paper uses 1e-11 in Fig. 3).
    pub target_epsilon: f64,
    /// Low accuracy ε_l of each QSVT solve.
    pub epsilon_l: f64,
    /// Hard cap on refinement iterations (safety net above the theoretical bound).
    pub max_iterations: usize,
    /// Options passed to the inner QSVT solver (mode, shots, …); its
    /// `epsilon_l` field is overwritten with the value above.
    pub solver: QsvtSolverOptions,
    /// Per-iteration health checks + escalation ladder (disabled by
    /// default: the loop behaves exactly like the pre-recovery refiner).
    pub recovery: RecoveryPolicy,
}

impl Default for HybridRefinementOptions {
    fn default() -> Self {
        HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 1e-2,
            max_iterations: 60,
            solver: QsvtSolverOptions::default(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

/// The bounded escalation ladder applied when an iteration fails its health
/// checks.  The default is **disabled** — no interception, no extra RNG
/// draws, bit-identical behaviour to the pre-recovery loop; use
/// [`RecoveryPolicy::full`] for the whole ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RecoveryPolicy {
    /// Master switch; `false` restores the abort-on-first-error loop.
    pub enabled: bool,
    /// Rung 1: how many plain re-runs of the failed correction solve.
    pub max_retries: usize,
    /// Rung 2: how many shot escalations (each multiplies the shot budget
    /// by [`RecoveryPolicy::shot_escalation_factor`]).  Skipped when the
    /// solver reads exact amplitudes (`shots: None`).
    pub shot_escalations: usize,
    /// Shot multiplier per escalation (the ×4 of the ladder: noise halves).
    pub shot_escalation_factor: usize,
    /// Rung 3: rebuild the inner solver at a tighter ε_l (higher QSVT
    /// degree), lazily on first use.
    pub tighten_solver: bool,
    /// ε_l multiplier of the tightened solver (< 1).
    pub epsilon_tighten_factor: f64,
    /// Rung 4: fall back to the operator's structured classical
    /// [`InnerSolver`] for this iteration's correction (graceful
    /// degradation; the run is marked [`HybridStatus::Degraded`]).
    pub classical_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: false,
            max_retries: 1,
            shot_escalations: 2,
            shot_escalation_factor: 4,
            tighten_solver: true,
            epsilon_tighten_factor: 0.1,
            classical_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// The full ladder: 1 retry → 2 shot escalations (×4 each) → tightened
    /// solver (ε_l/10) → classical fallback.
    pub fn full() -> Self {
        RecoveryPolicy {
            enabled: true,
            ..Default::default()
        }
    }
}

/// What a health check found wrong with one correction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HealthIssue {
    /// The inner solve itself returned an error.
    SolveFailed(FailureReason),
    /// The correction contained NaN/Inf (caught at the update boundary).
    NonFiniteCorrection,
    /// The residual of the candidate iterate was NaN/Inf.
    NonFiniteResidual,
    /// The candidate iterate did not contract the residual
    /// (ω_new > 0.95·ω_prev).
    NonContracting,
}

/// One rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RecoveryAction {
    /// Re-run the correction solve unchanged.
    Retry,
    /// Re-run with an escalated shot budget.
    EscalateShots {
        /// The escalated budget used for this attempt.
        shots: usize,
    },
    /// Re-run through the lazily built tighter-ε_l solver.
    TightenSolver,
    /// Solve this iteration's correction classically.
    ClassicalFallback,
    /// The ladder is exhausted; the step is abandoned.
    Abort,
}

/// One recorded recovery decision: which issue triggered which rung at
/// which iteration, and whether that rung produced a healthy step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RecoveryEvent {
    /// Refinement iteration (0 = initial solve).
    pub iteration: usize,
    /// The health issue that triggered this action.
    pub issue: HealthIssue,
    /// The ladder rung taken in response.
    pub action: RecoveryAction,
    /// Whether the action produced a healthy step.
    pub recovered: bool,
}

/// The audit log of every recovery action of a run, stored in
/// [`HybridHistory::recovery`].  Empty ⇔ the run never needed the ladder.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryLog {
    /// Events in the order they were taken.
    pub events: Vec<RecoveryEvent>,
}

impl RecoveryLog {
    /// True when no recovery action was ever taken.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recovery actions taken.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when any classical-fallback rung ran (⇒ the run is `Degraded`
    /// if it converged).
    pub fn used_classical_fallback(&self) -> bool {
        self.events
            .iter()
            .any(|e| e.action == RecoveryAction::ClassicalFallback && e.recovered)
    }
}

/// Why a hybrid refinement ultimately failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FailureReason {
    /// Ancilla post-selection failed and could not be recovered.
    PostSelectionFailed,
    /// An injected transient device fault (see `qls_sim::fault`).
    InjectedFault,
    /// NaN/Inf at the readout boundary (e.g. a NaN-poisoned register).
    NonFiniteReadout,
    /// NaN/Inf in the high-precision residual computation.
    NonFiniteResidual,
    /// NaN/Inf in the correction update.
    NonFiniteCorrection,
    /// Any other inner-solver error (singular matrix, phase finding, …).
    SolverError,
    /// The recovery ladder ran out of rungs without a usable step.
    RecoveryExhausted,
}

/// Why the hybrid refinement stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HybridStatus {
    /// Target scaled residual reached without any recovery action.
    Converged,
    /// Iteration cap reached first.
    MaxIterations,
    /// The residual stopped contracting for [`STAGNATION_WINDOW`]
    /// consecutive iterations (ε_l·κ too close to 1, or limiting accuracy
    /// reached).
    Stagnated,
    /// Target reached, but ≥ 1 recovery action was needed along the way.
    RecoveredConverged,
    /// Target reached, but ≥ 1 iteration fell back to the classical inner
    /// solver (the quantum solver alone did not suffice).
    Degraded,
    /// No usable step could be produced (ladder exhausted, or the bare
    /// solve failed with recovery disabled).
    Failed {
        /// The terminal failure.
        reason: FailureReason,
    },
}

impl HybridStatus {
    /// True for every status that reached the target residual.
    pub fn reached_target(&self) -> bool {
        matches!(
            self,
            HybridStatus::Converged | HybridStatus::RecoveredConverged | HybridStatus::Degraded
        )
    }
}

/// One step of the refinement history.
#[derive(Debug, Clone, Serialize)]
pub struct HybridStep {
    /// Iteration index (0 = initial solve).
    pub iteration: usize,
    /// Scaled residual ω after this step.
    pub scaled_residual: f64,
    /// Theorem III.1 prediction `(ε_l κ)^{i+1}` for this step.
    pub theoretical_bound: f64,
    /// Quantum/classical cost of the solve performed at this step.
    pub cost: SolveCost,
}

/// Complete record of a hybrid refinement run.
#[derive(Debug, Clone, Serialize)]
pub struct HybridHistory {
    /// Per-step records (index 0 is the initial solve).
    pub steps: Vec<HybridStep>,
    /// Termination status.
    pub status: HybridStatus,
    /// Condition number used for the theoretical bound.
    pub kappa: f64,
    /// ε_l of the inner solver.
    pub epsilon_l: f64,
    /// Target ε.
    pub target_epsilon: f64,
    /// Every recovery action taken (empty for a clean run).
    pub recovery: RecoveryLog,
}

impl HybridHistory {
    /// Number of refinement iterations (excluding the initial solve).
    pub fn iterations(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// Final scaled residual.
    pub fn final_residual(&self) -> f64 {
        self.steps
            .last()
            .map(|s| s.scaled_residual)
            .unwrap_or(f64::NAN)
    }

    /// Theorem III.1 iteration bound `⌈log ε / log(ε_l κ)⌉`, when it applies.
    pub fn iteration_bound(&self) -> Option<usize> {
        qls_linalg::refine::iteration_bound(self.target_epsilon, self.epsilon_l, self.kappa)
    }

    /// Per-iteration contraction factors ω_{i+1}/ω_i.
    pub fn contraction_factors(&self) -> Vec<f64> {
        self.steps
            .windows(2)
            .map(|w| {
                if w[0].scaled_residual == 0.0 {
                    0.0
                } else {
                    w[1].scaled_residual / w[0].scaled_residual
                }
            })
            .collect()
    }

    /// Total number of block-encoding calls across all solves — the quantum
    /// complexity axis of Fig. 5.
    pub fn total_block_encoding_calls(&self) -> usize {
        self.steps.iter().map(|s| s.cost.block_encoding_calls).sum()
    }

    /// Total number of measurement shots across all solves.
    pub fn total_shots(&self) -> usize {
        self.steps.iter().map(|s| s.cost.shots).sum()
    }

    /// True when every measured residual satisfies the Theorem III.1 bound
    /// `ω_i ≤ (ε_l κ)^{i+1}` up to the slack factor.
    pub fn satisfies_theorem_bound(&self, slack: f64) -> bool {
        self.steps
            .iter()
            .all(|s| s.scaled_residual <= s.theoretical_bound * slack)
    }
}

/// One correction attempt: the raw correction vector + its cost, or the
/// error the inner solve produced.
type Attempt = Result<(Vector<f64>, SolveCost), QlsError>;

/// Outcome of one guarded refinement step (initial solve or correction).
enum StepResult {
    /// A healthy step: finite, and contracting (or the initial solve).
    Accepted {
        x: Vector<f64>,
        omega: f64,
        cost: SolveCost,
    },
    /// Every rung produced finite but non-contracting candidates; this is
    /// the best of them.  The caller counts it toward the stagnation window.
    BestEffort {
        x: Vector<f64>,
        omega: f64,
        cost: SolveCost,
    },
    /// No rung produced a finite candidate at all.
    Dead { reason: FailureReason },
}

fn failure_reason(e: &QlsError) -> FailureReason {
    match e {
        QlsError::Qsvt(QsvtError::PostSelectionFailed) => FailureReason::PostSelectionFailed,
        QlsError::Qsvt(QsvtError::InjectedFault { .. }) => FailureReason::InjectedFault,
        QlsError::Qsvt(QsvtError::NonFiniteOutput) | QlsError::NonFinite { .. } => {
            FailureReason::NonFiniteReadout
        }
        QlsError::Qsvt(_) | QlsError::Linalg(_) => FailureReason::SolverError,
    }
}

fn issue_reason(issue: HealthIssue) -> FailureReason {
    match issue {
        HealthIssue::SolveFailed(reason) => reason,
        HealthIssue::NonFiniteCorrection => FailureReason::NonFiniteCorrection,
        HealthIssue::NonFiniteResidual => FailureReason::NonFiniteResidual,
        // A non-contracting attempt always leaves a best-effort candidate,
        // so it can never be the terminal reason of a Dead step.
        HealthIssue::NonContracting => FailureReason::SolverError,
    }
}

/// The hybrid CPU/QPU mixed-precision refiner (Algorithm 2).
///
/// Construction compiles; solving never does.  The matrix is fixed, so the
/// block-encoding, polynomial, phase factors *and the compiled QSVT circuit*
/// are all built exactly once in [`HybridRefiner::new`] — every refinement
/// iteration of every [`HybridRefiner::solve`] / [`HybridRefiner::solve_many`]
/// call reuses them (verified against
/// `qls_sim::circuit_compile_count` in the tests).  This is the paper's
/// access pattern: one matrix, many solves.  (The two exceptions are
/// recovery rungs: the tightened solver compiles lazily on its first use,
/// and never on a clean run.)
///
/// The refiner is generic over the classical operator representation of `A`
/// ([`FactorizableOperator`], dense [`Matrix`] by default so every existing
/// caller compiles unchanged).  The CPU half of the loop — the
/// high-precision residual `r = b − A x` recomputed every iteration — goes
/// through the operator, so a CSR / tridiagonal / stencil operator makes the
/// hot classical path O(nnz) instead of O(N²); only the one-time
/// quantum-side construction in `new` densifies (the inner correction solves
/// are the QSVT circuit, not a classical factorization, so after
/// construction no step of `solve` / `solve_many` ever materialises a dense
/// matrix — asserted by the
/// `hybrid_refiner_never_densifies_after_construction` operator-equivalence
/// test; the classical-fallback recovery rung factorizes through the
/// operator's own structured [`InnerSolver`], lazily, and only when that
/// rung actually fires).  Because the CSR and stencil matvecs are
/// bit-identical to the dense kernel, refining over a structured operator
/// reproduces the dense convergence history float for float (see the
/// operator-equivalence tests).
pub struct HybridRefiner<Op: FactorizableOperator<f64> = Matrix<f64>> {
    operator: Op,
    solver: QsvtLinearSolver<Op>,
    options: HybridRefinementOptions,
    /// Fault injector shared with the inner solver (and any tightened
    /// solver built later).
    fault: Option<SharedFaultInjector>,
    /// Recovery rung 3: the tighter-ε_l solver, built lazily on first use
    /// (`None` inside = construction failed; never retried).
    tightened: OnceLock<Option<QsvtLinearSolver<Op>>>,
    /// Recovery rung 4: the operator's structured classical solver, built
    /// lazily on first use.
    fallback: OnceLock<Option<Box<dyn InnerSolver<f64>>>>,
}

impl<Op: FactorizableOperator<f64>> HybridRefiner<Op> {
    /// Prepare the refiner: builds the QSVT solver once (block-encoding,
    /// polynomial and compiled circuit are reused across all iterations and
    /// all right-hand sides, as in the paper's communication scheme of
    /// Fig. 1).
    pub fn new(a: &Op, options: HybridRefinementOptions) -> Result<Self, QlsError> {
        let mut solver_options = options.solver;
        solver_options.epsilon_l = options.epsilon_l;
        let solver = QsvtLinearSolver::new(a, solver_options)?;
        Ok(HybridRefiner {
            operator: a.clone(),
            solver,
            options,
            fault: None,
            tightened: OnceLock::new(),
            fallback: OnceLock::new(),
        })
    }

    /// The inner QSVT solver.
    pub fn solver(&self) -> &QsvtLinearSolver<Op> {
        &self.solver
    }

    /// The classical operator the residuals are computed against.
    pub fn operator(&self) -> &Op {
        &self.operator
    }

    /// The refinement options.
    pub fn options(&self) -> &HybridRefinementOptions {
        &self.options
    }

    /// Attach a fault injector to the quantum side (and to any tightened
    /// solver the recovery ladder builds later) — see `qls_sim::fault`.
    pub fn attach_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.solver.attach_fault_injector(injector.clone());
        self.fault = Some(injector);
        // A tightened solver built before the attach would be fault-free;
        // rebuild it on next use with the injector wired in.
        self.tightened = OnceLock::new();
    }

    /// Detach and return the fault injector, restoring ideal execution.
    pub fn detach_fault_injector(&mut self) -> Option<SharedFaultInjector> {
        self.solver.detach_fault_injector();
        self.tightened = OnceLock::new();
        self.fault.take()
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.fault.as_ref()
    }

    /// The ladder of recovery actions tried **after** a failed primary
    /// attempt, in order.  Empty when the policy is disabled.
    fn recovery_ladder(&self) -> Vec<RecoveryAction> {
        let policy = &self.options.recovery;
        let mut actions = Vec::new();
        if !policy.enabled {
            return actions;
        }
        for _ in 0..policy.max_retries {
            actions.push(RecoveryAction::Retry);
        }
        if let Some(base) = self.options.solver.shots {
            let mut shots = base;
            for _ in 0..policy.shot_escalations {
                shots = shots.saturating_mul(policy.shot_escalation_factor.max(2));
                actions.push(RecoveryAction::EscalateShots { shots });
            }
        }
        if policy.tighten_solver {
            actions.push(RecoveryAction::TightenSolver);
        }
        if policy.classical_fallback {
            actions.push(RecoveryAction::ClassicalFallback);
        }
        actions
    }

    /// Rung 3's solver: ε_l × `epsilon_tighten_factor`, same mode/shots,
    /// fault injector re-attached.  Built once, on first use.
    fn tightened_solver(&self) -> Option<&QsvtLinearSolver<Op>> {
        self.tightened
            .get_or_init(|| {
                let mut opts = self.options.solver;
                opts.epsilon_l = (self.options.epsilon_l
                    * self.options.recovery.epsilon_tighten_factor)
                    .clamp(1e-14, 0.49);
                let mut solver = QsvtLinearSolver::new(&self.operator, opts).ok()?;
                if let Some(inj) = &self.fault {
                    solver.attach_fault_injector(inj.clone());
                }
                Some(solver)
            })
            .as_ref()
    }

    /// Rung 4's classical correction solve through the operator's own
    /// structured [`InnerSolver`] (built once, on first use).  The cost
    /// record is purely classical: no degree, no block-encoding calls, no
    /// shots.
    fn classical_correction(&self, r: &Vector<f64>) -> Attempt {
        let solver = self
            .fallback
            .get_or_init(|| self.operator.factorize::<f64>().ok());
        match solver {
            Some(inner) => {
                let correction = inner.solve(r)?;
                Ok((
                    correction,
                    SolveCost {
                        polynomial_degree: 0,
                        block_encoding_calls: 0,
                        shots: 0,
                        state_prep_flops: 0,
                        brent_evaluations: 0,
                        classical_matvec_flops: 2 * self.operator.nnz(),
                    },
                ))
            }
            None => Err(QlsError::Qsvt(QsvtError::Internal(
                "classical fallback factorization failed",
            ))),
        }
    }

    /// Execute one rung (`None` = the primary attempt) for the correction
    /// system `A e = r`.
    fn run_action<R: Rng>(
        &self,
        action: Option<RecoveryAction>,
        r: &Vector<f64>,
        rng: &mut R,
    ) -> Attempt {
        match action {
            None | Some(RecoveryAction::Retry) => self
                .solver
                .solve(r, rng)
                .map(|res| (res.solution, res.cost)),
            Some(RecoveryAction::EscalateShots { shots }) => self
                .solver
                .solve_with_shots(r, Some(shots), rng)
                .map(|res| (res.solution, res.cost)),
            Some(RecoveryAction::TightenSolver) => match self.tightened_solver() {
                Some(solver) => solver.solve(r, rng).map(|res| (res.solution, res.cost)),
                None => Err(QlsError::Qsvt(QsvtError::Internal(
                    "tightened solver construction failed",
                ))),
            },
            Some(RecoveryAction::ClassicalFallback) => self.classical_correction(r),
            Some(RecoveryAction::Abort) => Err(QlsError::Qsvt(QsvtError::Internal(
                "abort is not an executable recovery action",
            ))),
        }
    }

    /// One guarded refinement step: run the primary correction solve (or
    /// consume the pre-computed batched one), health-check the candidate
    /// iterate, and walk the recovery ladder until a rung produces a
    /// healthy step or the ladder is exhausted.
    ///
    /// `x = None` marks the initial solve (the "correction" *is* the
    /// iterate, and the contraction check does not apply — `prev_omega` is
    /// `None`).  On the clean path (healthy primary, which is the only
    /// possibility with recovery disabled and no faults) this performs
    /// exactly the operations of the pre-recovery loop.
    #[allow(clippy::too_many_arguments)]
    fn guarded_step<R: Rng>(
        &self,
        b: &Vector<f64>,
        x: Option<&Vector<f64>>,
        r: &Vector<f64>,
        prev_omega: Option<f64>,
        primary: Option<Attempt>,
        iteration: usize,
        rng: &mut R,
        log: &mut RecoveryLog,
    ) -> StepResult {
        let mut primary = primary;
        let mut best: Option<(Vector<f64>, f64, SolveCost)> = None;
        let mut pending: Option<HealthIssue> = None;

        let actions = std::iter::once(None).chain(self.recovery_ladder().into_iter().map(Some));
        for action in actions {
            let attempt = match primary.take() {
                Some(precomputed) if action.is_none() => precomputed,
                _ => self.run_action(action, r, rng),
            };
            let health: Result<(Vector<f64>, f64, SolveCost), HealthIssue> = match attempt {
                Err(e) => Err(HealthIssue::SolveFailed(failure_reason(&e))),
                Ok((correction, cost)) => {
                    if !correction.iter().all(|v| v.is_finite()) {
                        Err(HealthIssue::NonFiniteCorrection)
                    } else {
                        let candidate = match x {
                            Some(x0) => {
                                let mut c = x0.clone();
                                c += &correction;
                                c
                            }
                            None => correction,
                        };
                        let omega = scaled_residual(&self.operator, &candidate, b);
                        if !omega.is_finite() {
                            Err(HealthIssue::NonFiniteResidual)
                        } else {
                            let healthy = match prev_omega {
                                None => true,
                                Some(prev) => {
                                    omega <= self.options.target_epsilon
                                        || omega <= prev * CONTRACTION_TOLERANCE
                                }
                            };
                            if healthy {
                                Ok((candidate, omega, cost))
                            } else {
                                if best.as_ref().is_none_or(|(_, b_omega, _)| omega < *b_omega) {
                                    best = Some((candidate, omega, cost));
                                }
                                Err(HealthIssue::NonContracting)
                            }
                        }
                    }
                }
            };
            match health {
                Ok((x_new, omega, cost)) => {
                    if let (Some(issue), Some(act)) = (pending, action) {
                        log.events.push(RecoveryEvent {
                            iteration,
                            issue,
                            action: act,
                            recovered: true,
                        });
                    }
                    return StepResult::Accepted {
                        x: x_new,
                        omega,
                        cost,
                    };
                }
                Err(issue) => {
                    if let (Some(trigger), Some(act)) = (pending, action) {
                        log.events.push(RecoveryEvent {
                            iteration,
                            issue: trigger,
                            action: act,
                            recovered: false,
                        });
                    }
                    pending = Some(issue);
                }
            }
        }

        // Ladder exhausted (or recovery disabled and the one attempt was
        // unhealthy).
        if self.options.recovery.enabled {
            if let Some(issue) = pending {
                log.events.push(RecoveryEvent {
                    iteration,
                    issue,
                    action: RecoveryAction::Abort,
                    recovered: false,
                });
            }
        }
        match best {
            Some((x_new, omega, cost)) => StepResult::BestEffort {
                x: x_new,
                omega,
                cost,
            },
            None => StepResult::Dead {
                reason: if self.options.recovery.enabled {
                    FailureReason::RecoveryExhausted
                } else {
                    pending
                        .map(issue_reason)
                        .unwrap_or(FailureReason::SolverError)
                },
            },
        }
    }

    /// The terminal status of a run that reached the target residual.
    fn success_status(log: &RecoveryLog) -> HybridStatus {
        if log.used_classical_fallback() {
            HybridStatus::Degraded
        } else if log.is_empty() {
            HybridStatus::Converged
        } else {
            HybridStatus::RecoveredConverged
        }
    }

    /// Run Algorithm 2 for the right-hand side `b`.
    ///
    /// `Err` is reserved for malformed inputs (a non-finite `b`); every
    /// runtime failure of the loop itself — solver errors, injected faults,
    /// an exhausted recovery ladder — is reported **in-band** as
    /// [`HybridStatus::Failed`] with the partial history preserved, so
    /// multi-system callers and services can inspect what happened.
    pub fn solve<R: Rng>(
        &self,
        b: &Vector<f64>,
        rng: &mut R,
    ) -> Result<(Vector<f64>, HybridHistory), QlsError> {
        if !b.iter().all(|v| v.is_finite()) {
            return Err(QlsError::NonFinite {
                boundary: "right-hand side",
            });
        }
        let kappa = self.solver.kappa();
        let epsilon_l = self.options.epsilon_l;
        let contraction = (epsilon_l * kappa).min(1.0);
        let mut log = RecoveryLog::default();
        let mut steps = Vec::new();

        let history = |steps: Vec<HybridStep>, status, log| HybridHistory {
            steps,
            status,
            kappa,
            epsilon_l,
            target_epsilon: self.options.target_epsilon,
            recovery: log,
        };

        // Initial solve on the QPU (iteration 0), through the guard.
        let (mut x, mut prev_omega) = match self
            .guarded_step(b, None, b, None, None, 0, rng, &mut log)
        {
            StepResult::Accepted { x, omega, cost } | StepResult::BestEffort { x, omega, cost } => {
                steps.push(HybridStep {
                    iteration: 0,
                    scaled_residual: omega,
                    theoretical_bound: contraction,
                    cost,
                });
                (x, omega)
            }
            StepResult::Dead { reason } => {
                return Ok((
                    Vector::zeros(b.len()),
                    history(steps, HybridStatus::Failed { reason }, log),
                ));
            }
        };

        let mut status = HybridStatus::MaxIterations;
        if prev_omega <= self.options.target_epsilon {
            status = Self::success_status(&log);
        } else {
            let mut streak = 0usize;
            for it in 1..=self.options.max_iterations {
                // CPU: residual in high precision (boundary-guarded).
                let r = b - &self.operator.matvec(&x);
                if !r.iter().all(|v| v.is_finite()) {
                    status = HybridStatus::Failed {
                        reason: FailureReason::NonFiniteResidual,
                    };
                    break;
                }
                // QPU: correction solve at accuracy ε_l, through the guard.
                match self.guarded_step(b, Some(&x), &r, Some(prev_omega), None, it, rng, &mut log)
                {
                    StepResult::Accepted {
                        x: x_new,
                        omega,
                        cost,
                    } => {
                        x = x_new;
                        steps.push(HybridStep {
                            iteration: it,
                            scaled_residual: omega,
                            theoretical_bound: contraction.powi(it as i32 + 1),
                            cost,
                        });
                        if omega <= self.options.target_epsilon {
                            status = Self::success_status(&log);
                            break;
                        }
                        streak = 0;
                        prev_omega = omega;
                    }
                    StepResult::BestEffort {
                        x: x_new,
                        omega,
                        cost,
                    } => {
                        x = x_new;
                        steps.push(HybridStep {
                            iteration: it,
                            scaled_residual: omega,
                            theoretical_bound: contraction.powi(it as i32 + 1),
                            cost,
                        });
                        streak += 1;
                        if streak >= STAGNATION_WINDOW {
                            status = HybridStatus::Stagnated;
                            break;
                        }
                        prev_omega = omega;
                    }
                    StepResult::Dead { reason } => {
                        status = HybridStatus::Failed { reason };
                        break;
                    }
                }
            }
        }

        Ok((x, history(steps, status, log)))
    }

    /// Run Algorithm 2 for **many** right-hand sides against the same matrix
    /// — the multi-RHS workload (e.g. a Poisson problem under several
    /// forcing terms).  All systems share the one compiled QSVT circuit, and
    /// each round of the refinement loop batches the correction solves of
    /// every still-active system through
    /// [`QsvtLinearSolver::solve_many_checked`] (coarse-grained thread
    /// fan-out across the batch in circuit mode).
    ///
    /// Failures are **per-system**: one failed post-selection or injected
    /// fault only sends that system through the recovery ladder (or marks
    /// it [`HybridStatus::Failed`]) — its siblings keep refining.
    ///
    /// With exact readout (`shots: None`) the returned solutions and
    /// histories are identical to calling [`HybridRefiner::solve`] per
    /// right-hand side; with finite-shot sampling the RNG is consumed in
    /// batch order instead of per-system order.
    pub fn solve_many<R: Rng>(
        &self,
        bs: &[Vector<f64>],
        rng: &mut R,
    ) -> Result<Vec<(Vector<f64>, HybridHistory)>, QlsError> {
        for b in bs {
            if !b.iter().all(|v| v.is_finite()) {
                return Err(QlsError::NonFinite {
                    boundary: "right-hand side",
                });
            }
        }
        let kappa = self.solver.kappa();
        let epsilon_l = self.options.epsilon_l;
        let contraction = (epsilon_l * kappa).min(1.0);

        struct System {
            x: Vector<f64>,
            steps: Vec<HybridStep>,
            status: Option<HybridStatus>,
            prev_omega: f64,
            streak: usize,
            log: RecoveryLog,
        }

        // Initial solves for every right-hand side, batched; each outcome
        // then runs through the same per-system guard as the single path.
        let firsts = self.solver.solve_many_checked(bs, rng);
        let mut systems: Vec<System> = Vec::with_capacity(bs.len());
        for (b, first) in bs.iter().zip(firsts) {
            let mut log = RecoveryLog::default();
            let primary = first.map(|res| (res.solution, res.cost));
            let mut sys = System {
                x: Vector::zeros(b.len()),
                steps: Vec::new(),
                status: None,
                prev_omega: f64::INFINITY,
                streak: 0,
                log: RecoveryLog::default(),
            };
            match self.guarded_step(b, None, b, None, Some(primary), 0, rng, &mut log) {
                StepResult::Accepted { x, omega, cost }
                | StepResult::BestEffort { x, omega, cost } => {
                    sys.x = x;
                    sys.prev_omega = omega;
                    sys.steps.push(HybridStep {
                        iteration: 0,
                        scaled_residual: omega,
                        theoretical_bound: contraction,
                        cost,
                    });
                    if omega <= self.options.target_epsilon {
                        sys.status = Some(Self::success_status(&log));
                    }
                }
                StepResult::Dead { reason } => {
                    sys.status = Some(HybridStatus::Failed { reason });
                }
            }
            sys.log = log;
            systems.push(sys);
        }

        for it in 1..=self.options.max_iterations {
            let active: Vec<usize> = (0..systems.len())
                .filter(|&k| systems[k].status.is_none())
                .collect();
            if active.is_empty() {
                break;
            }
            // CPU: residuals of all active systems in high precision
            // (boundary-guarded per system).
            let mut batch: Vec<usize> = Vec::with_capacity(active.len());
            let mut residuals: Vec<Vector<f64>> = Vec::with_capacity(active.len());
            for &k in &active {
                let r = &bs[k] - &self.operator.matvec(&systems[k].x);
                if r.iter().all(|v| v.is_finite()) {
                    batch.push(k);
                    residuals.push(r);
                } else {
                    systems[k].status = Some(HybridStatus::Failed {
                        reason: FailureReason::NonFiniteResidual,
                    });
                }
            }
            if batch.is_empty() {
                break;
            }
            // QPU: one batched round of correction solves at accuracy ε_l,
            // with per-system verdicts feeding the per-system guard.
            let corrections = self.solver.solve_many_checked(&residuals, rng);
            for ((&k, r), correction) in batch.iter().zip(&residuals).zip(corrections) {
                let sys = &mut systems[k];
                let primary = correction.map(|res| (res.solution, res.cost));
                match self.guarded_step(
                    &bs[k],
                    Some(&sys.x),
                    r,
                    Some(sys.prev_omega),
                    Some(primary),
                    it,
                    rng,
                    &mut sys.log,
                ) {
                    StepResult::Accepted { x, omega, cost } => {
                        sys.x = x;
                        sys.steps.push(HybridStep {
                            iteration: it,
                            scaled_residual: omega,
                            theoretical_bound: contraction.powi(it as i32 + 1),
                            cost,
                        });
                        if omega <= self.options.target_epsilon {
                            sys.status = Some(Self::success_status(&sys.log));
                        } else {
                            sys.streak = 0;
                        }
                        sys.prev_omega = omega;
                    }
                    StepResult::BestEffort { x, omega, cost } => {
                        sys.x = x;
                        sys.steps.push(HybridStep {
                            iteration: it,
                            scaled_residual: omega,
                            theoretical_bound: contraction.powi(it as i32 + 1),
                            cost,
                        });
                        sys.streak += 1;
                        if sys.streak >= STAGNATION_WINDOW {
                            sys.status = Some(HybridStatus::Stagnated);
                        }
                        sys.prev_omega = omega;
                    }
                    StepResult::Dead { reason } => {
                        sys.status = Some(HybridStatus::Failed { reason });
                    }
                }
            }
        }

        Ok(systems
            .into_iter()
            .map(|sys| {
                let history = HybridHistory {
                    steps: sys.steps,
                    status: sys.status.unwrap_or(HybridStatus::MaxIterations),
                    kappa,
                    epsilon_l,
                    target_epsilon: self.options.target_epsilon,
                    recovery: sys.log,
                };
                (sys.x, history)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::generate::{
        random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
    };
    use qls_linalg::lu::lu_solve;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = random_unit_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn converges_to_target_epsilon_for_kappa_10() {
        // The Fig. 3 setting: N = 16, kappa = 10, eps = 1e-11.
        let (a, b) = system(10.0, 16, 151);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (x, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
        assert!(history.final_residual() <= 1e-11);
        // Iteration count within the Theorem III.1 bound.
        let bound = history.iteration_bound().unwrap();
        assert!(
            history.iterations() <= bound,
            "iterations {} exceed bound {bound}",
            history.iterations()
        );
        // Solution matches LU to the target accuracy scale.
        let reference = lu_solve(&a, &b).unwrap();
        assert!((&x - &reference).norm2() / reference.norm2() < 1e-9);
        // A clean run never touches the recovery machinery.
        assert!(history.recovery.is_empty());
    }

    #[test]
    fn residual_satisfies_theorem_bound_each_iteration() {
        let (a, b) = system(10.0, 16, 152);
        for &eps_l in &[1e-2, 1e-3] {
            let options = HybridRefinementOptions {
                target_epsilon: 1e-11,
                epsilon_l: eps_l,
                ..Default::default()
            };
            let refiner = HybridRefiner::new(&a, options).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(12);
            let (_, history) = refiner.solve(&b, &mut rng).unwrap();
            assert_eq!(history.status, HybridStatus::Converged);
            // Allow a modest constant-factor slack over the bound.
            assert!(
                history.satisfies_theorem_bound(10.0),
                "residuals {:?} vs bounds {:?}",
                history
                    .steps
                    .iter()
                    .map(|s| s.scaled_residual)
                    .collect::<Vec<_>>(),
                history
                    .steps
                    .iter()
                    .map(|s| s.theoretical_bound)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn smaller_epsilon_l_needs_fewer_iterations() {
        let (a, b) = system(10.0, 16, 153);
        let run = |eps_l: f64| -> usize {
            let options = HybridRefinementOptions {
                target_epsilon: 1e-10,
                epsilon_l: eps_l,
                ..Default::default()
            };
            let refiner = HybridRefiner::new(&a, options).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(13);
            let (_, history) = refiner.solve(&b, &mut rng).unwrap();
            assert_eq!(history.status, HybridStatus::Converged);
            history.iterations()
        };
        let coarse = run(1e-2);
        let fine = run(1e-4);
        assert!(fine <= coarse);
        assert!(coarse >= 2);
    }

    #[test]
    fn contraction_factor_tracks_epsilon_l_kappa() {
        let (a, b) = system(20.0, 16, 154);
        let eps_l = 1e-3;
        let options = HybridRefinementOptions {
            target_epsilon: 1e-12,
            epsilon_l: eps_l,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let expected = eps_l * 20.0;
        for (i, &factor) in history.contraction_factors().iter().enumerate() {
            // Each contraction factor should not exceed the theoretical eps_l*kappa
            // by more than a small constant (and is usually much better).
            assert!(
                factor <= expected * 5.0,
                "iteration {i}: contraction {factor} vs expected ≤ {expected}"
            );
        }
    }

    #[test]
    fn larger_kappa_converges_with_more_iterations() {
        // The Fig. 4 regime (scaled down in kappa to keep the test fast).
        let (a100, b100) = system(100.0, 16, 155);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a100, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let (_, history) = refiner.solve(&b100, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
        assert!(history.iterations() <= history.iteration_bound().unwrap());
        // At least one refinement iteration is needed: a single eps_l-accurate
        // solve cannot reach 1e-10 for kappa = 100.
        assert!(history.iterations() >= 1);
    }

    #[test]
    fn cost_accumulates_across_iterations() {
        let (a, b) = system(10.0, 16, 156);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(16);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let per_solve = history.steps[0].cost.block_encoding_calls;
        assert_eq!(
            history.total_block_encoding_calls(),
            per_solve * history.steps.len()
        );
        assert!(history.total_shots() > 0);
    }

    #[test]
    fn refinement_compiles_the_qsvt_circuit_exactly_once() {
        // Acceptance check of the compile-once engine: in circuit mode the
        // QSVT circuit is compiled during `new` and *never* inside the
        // iteration loop.  The compile counter is thread-local, so other
        // test threads cannot perturb it.
        let (a, b) = system(2.0, 4, 158);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                ..Default::default()
            },
            ..Default::default()
        };
        let before_new = qls_sim::circuit_compile_count();
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let compiles_in_new = qls_sim::circuit_compile_count() - before_new;
        assert!(
            compiles_in_new >= 1,
            "construction must compile the circuit"
        );

        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let before_solve = qls_sim::circuit_compile_count();
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        let (_, _) = (
            refiner
                .solve_many(&[b.clone(), b.clone()], &mut rng)
                .unwrap(),
            (),
        );
        assert_eq!(
            qls_sim::circuit_compile_count(),
            before_solve,
            "no recompilation inside the refinement loop"
        );
        assert!(history.iterations() >= 1, "the loop actually iterated");

        // The retained recompile baseline, by contrast, compiles on every
        // inner solve — once per step of the history.
        let baseline = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-8,
                epsilon_l: 0.05,
                solver: crate::solver::QsvtSolverOptions {
                    mode: qls_qsvt::QsvtMode::CircuitReal,
                    recompile_baseline: true,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let before_baseline = qls_sim::circuit_compile_count();
        let (_, baseline_history) = baseline.solve(&b, &mut rng).unwrap();
        assert_eq!(
            qls_sim::circuit_compile_count() - before_baseline,
            baseline_history.steps.len(),
            "the baseline recompiles once per solve step"
        );
    }

    #[test]
    fn recompile_baseline_agrees_with_compile_once_refinement() {
        let (a, b) = system(2.0, 4, 159);
        let make = |recompile_baseline: bool| HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                recompile_baseline,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let (x_fast, h_fast) = HybridRefiner::new(&a, make(false))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        let (x_slow, h_slow) = HybridRefiner::new(&a, make(true))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        assert_eq!(h_fast.status, h_slow.status);
        assert_eq!(h_fast.steps.len(), h_slow.steps.len());
        let rel = (&x_fast - &x_slow).norm2() / x_slow.norm2();
        assert!(rel < 1e-10, "paths diverge by {rel}");
    }

    #[test]
    fn fused_refinement_agrees_with_unfused_refinement() {
        // The whole refinement loop on the optimized (fused) QSVT circuit vs
        // the unoptimized compile-once engine: same convergence history,
        // same solution to well below the target accuracy.
        let (a, b) = system(2.0, 4, 161);
        let make = |opt_level: qls_sim::OptLevel| HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 0.05,
            solver: crate::solver::QsvtSolverOptions {
                mode: qls_qsvt::QsvtMode::CircuitReal,
                opt_level,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let (x_fused, h_fused) = HybridRefiner::new(&a, make(qls_sim::OptLevel::Fuse))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        let (x_raw, h_raw) = HybridRefiner::new(&a, make(qls_sim::OptLevel::None))
            .unwrap()
            .solve(&b, &mut rng)
            .unwrap();
        assert_eq!(h_fused.status, h_raw.status);
        assert_eq!(h_fused.steps.len(), h_raw.steps.len());
        let rel = (&x_fused - &x_raw).norm2() / x_raw.norm2();
        assert!(rel < 1e-10, "fused and unfused refinement diverge by {rel}");
    }

    #[test]
    fn solve_many_matches_sequential_solves() {
        let (a, _) = system(10.0, 16, 160);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let bs: Vec<Vector<f64>> = (0..4).map(|_| random_unit_vector(16, &mut rng)).collect();
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-2,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let many = refiner.solve_many(&bs, &mut rng).unwrap();
        assert_eq!(many.len(), bs.len());
        for (b, (x_many, h_many)) in bs.iter().zip(&many) {
            let (x_single, h_single) = refiner.solve(b, &mut rng).unwrap();
            assert_eq!(h_many.status, h_single.status);
            assert_eq!(h_many.steps.len(), h_single.steps.len());
            // Exact readout: batched and sequential refinement are the same
            // float-for-float computation.
            assert_eq!((x_many - &x_single).norm2(), 0.0);
            for (sm, ss) in h_many.steps.iter().zip(&h_single.steps) {
                assert_eq!(sm.scaled_residual, ss.scaled_residual);
            }
        }
        // Every system individually satisfies the convergence contract.
        for (_, history) in &many {
            assert_eq!(history.status, HybridStatus::Converged);
            assert!(history.final_residual() <= 1e-10);
        }
    }

    #[test]
    fn poisson_matrix_refinement() {
        let a = qls_linalg::poisson_1d::<f64>(16, false).to_dense();
        let mut rng = ChaCha8Rng::seed_from_u64(157);
        let b = random_unit_vector(16, &mut rng);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-3,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, HybridStatus::Converged);
    }

    #[test]
    fn recovery_enabled_clean_path_is_bit_identical_to_disabled() {
        // The equivalence oracle of the recovery layer: on a fault-free,
        // exact-readout run the enabled ladder is never consulted, so the
        // solution and the whole history must match the disabled path float
        // for float, with an empty log and a plain Converged status.
        let (a, b) = system(10.0, 16, 162);
        let make = |recovery: RecoveryPolicy| HybridRefinementOptions {
            target_epsilon: 1e-10,
            epsilon_l: 1e-2,
            recovery,
            ..Default::default()
        };
        let mut rng_off = ChaCha8Rng::seed_from_u64(21);
        let mut rng_on = ChaCha8Rng::seed_from_u64(21);
        let (x_off, h_off) = HybridRefiner::new(&a, make(RecoveryPolicy::default()))
            .unwrap()
            .solve(&b, &mut rng_off)
            .unwrap();
        let (x_on, h_on) = HybridRefiner::new(&a, make(RecoveryPolicy::full()))
            .unwrap()
            .solve(&b, &mut rng_on)
            .unwrap();
        assert_eq!(
            (&x_off - &x_on).norm2(),
            0.0,
            "solutions must be bit-identical"
        );
        assert_eq!(h_off.status, HybridStatus::Converged);
        assert_eq!(h_on.status, HybridStatus::Converged);
        assert_eq!(h_off.steps.len(), h_on.steps.len());
        for (s_off, s_on) in h_off.steps.iter().zip(&h_on.steps) {
            assert_eq!(s_off.scaled_residual, s_on.scaled_residual);
        }
        assert!(h_off.recovery.is_empty());
        assert!(h_on.recovery.is_empty());
    }

    #[test]
    fn stagnation_needs_two_consecutive_non_contracting_iterations() {
        // Finite-shot sampling at a modest budget: single noisy iterations
        // must not kill the run (the pre-fix one-strike rule did exactly
        // that).  With the two-strike window the run either converges or
        // stagnates only after two non-contracting iterations in a row.
        let (a, b) = system(10.0, 16, 163);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-6,
            epsilon_l: 1e-2,
            solver: crate::solver::QsvtSolverOptions {
                shots: Some(4_000_000),
                ..Default::default()
            },
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        let mut converged = 0usize;
        for seed in 0..8 {
            let mut rng = ChaCha8Rng::seed_from_u64(30 + seed);
            let (_, history) = refiner.solve(&b, &mut rng).unwrap();
            match history.status {
                HybridStatus::Converged => converged += 1,
                HybridStatus::Stagnated => {
                    // Stagnation must only be declared after two consecutive
                    // non-contracting steps: the last two contraction
                    // factors both exceed the tolerance.
                    let factors = history.contraction_factors();
                    assert!(factors.len() >= 2, "stagnated after one step");
                    let tail = &factors[factors.len() - 2..];
                    assert!(
                        tail.iter().all(|&f| f > 0.95),
                        "stagnated although the last window contracted: {factors:?}"
                    );
                }
                other => panic!("seed {seed}: unexpected status {other:?}"),
            }
        }
        // The budget is generous enough that most seeds converge — the
        // one-strike rule killed roughly every seed at this shot count.
        assert!(converged >= 6, "only {converged}/8 seeds converged");
    }

    #[test]
    fn ladder_order_matches_the_documented_escalation() {
        let (a, _) = system(10.0, 16, 164);
        let options = HybridRefinementOptions {
            target_epsilon: 1e-8,
            epsilon_l: 1e-2,
            solver: crate::solver::QsvtSolverOptions {
                shots: Some(1_000),
                ..Default::default()
            },
            recovery: RecoveryPolicy::full(),
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).unwrap();
        assert_eq!(
            refiner.recovery_ladder(),
            vec![
                RecoveryAction::Retry,
                RecoveryAction::EscalateShots { shots: 4_000 },
                RecoveryAction::EscalateShots { shots: 16_000 },
                RecoveryAction::TightenSolver,
                RecoveryAction::ClassicalFallback,
            ]
        );
        // Exact readout: the shot rung disappears, the rest stays.
        let exact = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-8,
                epsilon_l: 1e-2,
                recovery: RecoveryPolicy::full(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            exact.recovery_ladder(),
            vec![
                RecoveryAction::Retry,
                RecoveryAction::TightenSolver,
                RecoveryAction::ClassicalFallback,
            ]
        );
        // Disabled policy: no ladder at all.
        let disabled = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-8,
                epsilon_l: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(disabled.recovery_ladder().is_empty());
    }

    #[test]
    fn non_finite_right_hand_side_is_rejected_at_the_boundary() {
        let (a, mut b) = system(10.0, 16, 165);
        b[3] = f64::NAN;
        let refiner = HybridRefiner::new(&a, HybridRefinementOptions::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        match refiner.solve(&b, &mut rng) {
            Err(QlsError::NonFinite { boundary }) => assert_eq!(boundary, "right-hand side"),
            other => panic!("expected a boundary rejection, got {other:?}"),
        }
        match refiner.solve_many(&[b.clone()], &mut rng) {
            Err(QlsError::NonFinite { .. }) => {}
            other => panic!("expected a boundary rejection, got {other:?}"),
        }
    }
}
