//! Baseline solvers the hybrid algorithm is compared against.
//!
//! * [`DirectQsvtSolver`] — the left column of Table I: a *single* QSVT solve
//!   pushed all the way to the target accuracy ε (no refinement).  This is the
//!   strategy whose cost the paper extrapolates for Fig. 5; here it can also
//!   be executed (in emulation mode) for moderate κ/ε so the comparison is
//!   measured rather than extrapolated where feasible.
//! * [`classical_lu_solve`] — the classical reference solution (LAPACK-style
//!   LU with partial pivoting), used to validate every other solver.
//! * Classical mixed-precision iterative refinement (Algorithm 1) lives in
//!   [`qls_linalg::refine`] and is re-exported here for convenience.

use crate::error::QlsError;
use crate::solver::{QsvtLinearSolver, QsvtSolveResult, QsvtSolverOptions};
use qls_linalg::lu::{lu_solve, LinalgError};
pub use qls_linalg::{ClassicalRefiner, RefinementOptions};
use qls_linalg::{Matrix, Vector};
use qls_qsvt::QsvtMode;
use rand::Rng;

/// Solve with the classical LU reference solver.
pub fn classical_lu_solve(a: &Matrix<f64>, b: &Vector<f64>) -> Result<Vector<f64>, LinalgError> {
    lu_solve(a, b)
}

/// The "QSVT only" baseline: one QSVT solve at the full target accuracy ε.
pub struct DirectQsvtSolver {
    solver: QsvtLinearSolver,
    epsilon: f64,
}

impl DirectQsvtSolver {
    /// Prepare a direct QSVT solve of `A x = b` at accuracy `epsilon`.
    pub fn new(a: &Matrix<f64>, epsilon: f64, mode: QsvtMode) -> Result<Self, QlsError> {
        let solver = QsvtLinearSolver::new(
            a,
            QsvtSolverOptions {
                epsilon_l: epsilon,
                mode,
                shots: None,
                ..Default::default()
            },
        )?;
        Ok(DirectQsvtSolver { solver, epsilon })
    }

    /// The target accuracy.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The underlying single-solve QSVT solver.
    pub fn solver(&self) -> &QsvtLinearSolver {
        &self.solver
    }

    /// Perform the single high-precision solve.
    pub fn solve<R: Rng>(&self, b: &Vector<f64>, rng: &mut R) -> Result<QsvtSolveResult, QlsError> {
        self.solver.solve(b, rng)
    }

    /// Number of block-encoding calls of the single solve (the Fig. 5 cost
    /// metric for the un-refined strategy).
    pub fn block_encoding_calls(&self) -> usize {
        self.solver.quantum_resources().block_encoding_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::{HybridRefinementOptions, HybridRefiner};
    use qls_linalg::generate::{
        random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = random_unit_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn direct_qsvt_reaches_target_accuracy() {
        let (a, b) = system(5.0, 8, 161);
        let direct = DirectQsvtSolver::new(&a, 1e-8, QsvtMode::Emulation).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let result = direct.solve(&b, &mut rng).unwrap();
        assert!(result.scaled_residual < 1e-7);
        let reference = classical_lu_solve(&a, &b).unwrap();
        assert!((&result.solution - &reference).norm2() / reference.norm2() < 1e-6);
    }

    #[test]
    fn refinement_uses_fewer_block_encoding_calls_than_direct_high_precision() {
        // The Fig. 5 claim, measured: for eps << eps_l the refined solver needs
        // fewer block-encoding calls in total (per sample) than one solve at eps
        // — and vastly fewer once the O(1/eps^2) sample counts are factored in.
        let (a, b) = system(2.0, 8, 162);
        let epsilon = 1e-9;
        let epsilon_l = 0.4;

        let direct = DirectQsvtSolver::new(&a, epsilon, QsvtMode::Emulation).unwrap();
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: epsilon,
                epsilon_l,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let (_, history) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(history.status, crate::refine::HybridStatus::Converged);

        let direct_calls = direct.block_encoding_calls() as f64;
        let refined_calls = history.total_block_encoding_calls() as f64;
        // Per-circuit-run call counts are already in the same ballpark or better…
        assert!(
            refined_calls < direct_calls * history.steps.len() as f64,
            "refined {refined_calls} vs direct {direct_calls}"
        );
        // …and after weighting by the number of samples each run must be
        // repeated (1/eps² vs 1/eps_l²), refinement wins by orders of magnitude.
        let direct_total = direct_calls / (epsilon * epsilon);
        let refined_total = refined_calls / (epsilon_l * epsilon_l);
        assert!(
            refined_total < direct_total / 1e3,
            "refined total {refined_total} vs direct total {direct_total}"
        );
    }

    #[test]
    fn classical_refiner_and_hybrid_refiner_agree_on_the_solution() {
        let (a, b) = system(50.0, 16, 163);
        // Classical Algorithm 1 (f32 inner solver).
        let classical = ClassicalRefiner::<f64, f32>::new(
            &a,
            RefinementOptions {
                target_scaled_residual: 1e-12,
                max_iterations: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let (x_classical, h_classical) = classical.solve(&b).unwrap();
        // Hybrid Algorithm 2.
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-12,
                epsilon_l: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let (x_hybrid, h_hybrid) = refiner.solve(&b, &mut rng).unwrap();
        assert_eq!(h_classical.status, qls_linalg::RefinementStatus::Converged);
        assert_eq!(h_hybrid.status, crate::refine::HybridStatus::Converged);
        assert!((&x_classical - &x_hybrid).norm2() / x_classical.norm2() < 1e-9);
    }
}
