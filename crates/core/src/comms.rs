//! CPU ↔ QPU data-communication model (Fig. 1 of the paper).
//!
//! Algorithm 2 alternates between the classical and quantum processors, and
//! Fig. 1 of the paper sketches which artefacts cross the link and when:
//!
//! * once, before the first solve: the block-encoding circuit `BE(A†)`, the
//!   phase vector `Φ` (size = polynomial degree), and the state-preparation
//!   circuit `SP(b)`;
//! * at every refinement iteration: only `SP(r_i)` goes to the QPU and the
//!   sampled solution (a vector of size `N = 2^n`) comes back;
//! * the block-encoding and the phases are *not* re-sent — the "linker-loader"
//!   style reuse the paper emphasises.
//!
//! This module reproduces the figure as a quantitative event timeline with
//! byte estimates, so the communication pattern can be printed, plotted and
//! tested.

use serde::Serialize;

/// Direction of a transfer on the CPU–QPU link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Direction {
    /// From the classical host to the quantum device.
    CpuToQpu,
    /// From the quantum device back to the classical host.
    QpuToCpu,
}

/// What is being transferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Payload {
    /// The block-encoding circuit of `A†`.
    BlockEncodingCircuit,
    /// The QSVT phase vector Φ.
    PhaseVector,
    /// A state-preparation circuit (for `b` or a residual `r_i`).
    StatePreparation,
    /// The sampled solution vector.
    SampledSolution,
}

/// One transfer event of the Fig. 1 timeline.
#[derive(Debug, Clone, Serialize)]
pub struct TransferEvent {
    /// Refinement phase: 0 = setup/first solve, i ≥ 1 = iteration i.
    pub iteration: usize,
    /// Transfer direction.
    pub direction: Direction,
    /// What is transferred.
    pub payload: Payload,
    /// Estimated payload size in bytes.
    pub bytes: usize,
    /// Human-readable label (matches the annotations of Fig. 1).
    pub label: String,
}

/// Parameters of the communication model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommunicationParameters {
    /// Number of data qubits n (N = 2^n).
    pub n_qubits: usize,
    /// Gate count of the block-encoding circuit.
    pub block_encoding_gates: usize,
    /// Gate count of one state-preparation circuit.
    pub state_prep_gates: usize,
    /// Degree of the inversion polynomial (length of Φ).
    pub polynomial_degree: usize,
    /// Number of refinement iterations performed.
    pub iterations: usize,
    /// Bytes per serialised gate (circuit descriptions).
    pub bytes_per_gate: usize,
    /// Bytes per real scalar (phases, sampled amplitudes).
    pub bytes_per_scalar: usize,
}

impl Default for CommunicationParameters {
    fn default() -> Self {
        CommunicationParameters {
            n_qubits: 4,
            block_encoding_gates: 200,
            state_prep_gates: 50,
            polynomial_degree: 101,
            iterations: 5,
            bytes_per_gate: 16,
            bytes_per_scalar: 8,
        }
    }
}

/// The complete Fig. 1 timeline for one run of Algorithm 2.
#[derive(Debug, Clone, Serialize)]
pub struct CommunicationSchedule {
    /// Parameters the schedule was built from.
    pub parameters: CommunicationParameters,
    /// Ordered transfer events.
    pub events: Vec<TransferEvent>,
}

impl CommunicationSchedule {
    /// Build the timeline.
    pub fn new(parameters: CommunicationParameters) -> Self {
        let p = &parameters;
        let n_amplitudes = 1usize << p.n_qubits;
        // Setup + first solve: BE(A†), Φ and SP(b) go to the QPU once.
        let mut events = vec![TransferEvent {
            iteration: 0,
            direction: Direction::CpuToQpu,
            payload: Payload::BlockEncodingCircuit,
            bytes: p.block_encoding_gates * p.bytes_per_gate,
            label: "BE(A†)".to_string(),
        }];
        events.push(TransferEvent {
            iteration: 0,
            direction: Direction::CpuToQpu,
            payload: Payload::PhaseVector,
            bytes: p.polynomial_degree * p.bytes_per_scalar,
            label: "Φ".to_string(),
        });
        events.push(TransferEvent {
            iteration: 0,
            direction: Direction::CpuToQpu,
            payload: Payload::StatePreparation,
            bytes: p.state_prep_gates * p.bytes_per_gate,
            label: "SP(b)".to_string(),
        });
        events.push(TransferEvent {
            iteration: 0,
            direction: Direction::QpuToCpu,
            payload: Payload::SampledSolution,
            bytes: n_amplitudes * p.bytes_per_scalar,
            label: "x₀".to_string(),
        });

        // Each refinement iteration: SP(r_i) out, sampled solution back.
        for i in 1..=p.iterations {
            events.push(TransferEvent {
                iteration: i,
                direction: Direction::CpuToQpu,
                payload: Payload::StatePreparation,
                bytes: p.state_prep_gates * p.bytes_per_gate,
                label: format!("SP(r{i})"),
            });
            events.push(TransferEvent {
                iteration: i,
                direction: Direction::QpuToCpu,
                payload: Payload::SampledSolution,
                bytes: n_amplitudes * p.bytes_per_scalar,
                label: format!("x{i}"),
            });
        }

        CommunicationSchedule { parameters, events }
    }

    /// Bytes sent CPU → QPU during the setup / first solve.
    pub fn setup_bytes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.iteration == 0 && e.direction == Direction::CpuToQpu)
            .map(|e| e.bytes)
            .sum()
    }

    /// Bytes sent CPU → QPU for one refinement iteration.
    pub fn per_iteration_bytes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.iteration == 1 && e.direction == Direction::CpuToQpu)
            .map(|e| e.bytes)
            .sum()
    }

    /// Total bytes over the whole run, per direction.
    pub fn total_bytes(&self, direction: Direction) -> usize {
        self.events
            .iter()
            .filter(|e| e.direction == direction)
            .map(|e| e.bytes)
            .sum()
    }

    /// Count the transfers of a given payload type.
    pub fn count_payload(&self, payload: Payload) -> usize {
        self.events.iter().filter(|e| e.payload == payload).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_encoding_and_phases_sent_exactly_once() {
        let schedule = CommunicationSchedule::new(CommunicationParameters {
            iterations: 7,
            ..Default::default()
        });
        assert_eq!(schedule.count_payload(Payload::BlockEncodingCircuit), 1);
        assert_eq!(schedule.count_payload(Payload::PhaseVector), 1);
    }

    #[test]
    fn one_state_prep_per_solve_and_one_result_back() {
        let iterations = 5;
        let schedule = CommunicationSchedule::new(CommunicationParameters {
            iterations,
            ..Default::default()
        });
        // SP(b) + SP(r_1..r_k).
        assert_eq!(
            schedule.count_payload(Payload::StatePreparation),
            iterations + 1
        );
        assert_eq!(
            schedule.count_payload(Payload::SampledSolution),
            iterations + 1
        );
    }

    #[test]
    fn per_iteration_traffic_is_much_smaller_than_setup() {
        let schedule = CommunicationSchedule::new(CommunicationParameters::default());
        assert!(schedule.per_iteration_bytes() < schedule.setup_bytes());
    }

    #[test]
    fn totals_scale_with_iterations() {
        let small = CommunicationSchedule::new(CommunicationParameters {
            iterations: 2,
            ..Default::default()
        });
        let large = CommunicationSchedule::new(CommunicationParameters {
            iterations: 10,
            ..Default::default()
        });
        assert!(large.total_bytes(Direction::CpuToQpu) > small.total_bytes(Direction::CpuToQpu));
        assert!(large.total_bytes(Direction::QpuToCpu) > small.total_bytes(Direction::QpuToCpu));
    }

    #[test]
    fn events_are_ordered_by_iteration() {
        let schedule = CommunicationSchedule::new(CommunicationParameters::default());
        let iterations: Vec<usize> = schedule.events.iter().map(|e| e.iteration).collect();
        let mut sorted = iterations.clone();
        sorted.sort_unstable();
        assert_eq!(iterations, sorted);
    }
}
