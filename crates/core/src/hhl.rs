//! HHL (Harrow–Hassidim–Lloyd) baseline solver.
//!
//! The paper's introduction positions the QSVT solver against the two other
//! standard quantum linear-system algorithms, HHL and VQLS, and its Ref. [36]
//! studies iterative refinement on top of HHL.  This module provides a
//! complete QPE-based HHL implementation on the `qls-sim` simulator so the
//! repository can reproduce that comparison as an extension experiment:
//!
//! 1. Quantum Phase Estimation of `U = e^{iAt}` on a clock register of `t`
//!    qubits (the controlled powers `U^{2^j}` are exact multi-qubit unitaries
//!    computed from the eigendecomposition of the symmetric matrix `A`);
//! 2. an eigenvalue-controlled rotation of the flag ancilla by
//!    `θ(λ̃) = 2 arcsin(C/λ̃)`;
//! 3. the inverse QPE, and post-selection of the flag on `|1⟩` with the clock
//!    back in `|0…0⟩`.
//!
//! HHL requires a Hermitian matrix; non-symmetric systems must be embedded
//! (`[[0, A], [Aᵀ, 0]]`) by the caller.  Accuracy is limited by the clock
//! resolution (ε ≈ 2^{-t}·κ), which is exactly the limitation that motivates
//! refining HHL iteratively ([36]) or switching to the QSVT.

use num_complex::Complex64;
use qls_linalg::{Matrix, Svd, Vector};
use qls_sim::{CMatrix, Circuit, Gate, StateVector};
use serde::Serialize;

/// Configuration of the HHL solve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct HhlOptions {
    /// Number of clock (phase-estimation) qubits.
    pub clock_qubits: usize,
    /// Evolution time `t` of `e^{iAt}`; eigenvalues λ·t/(2π) must lie in (0, 1).
    /// Pass `None` to choose `t = π / λ_max` automatically.
    pub evolution_time: Option<f64>,
    /// The constant `C` of the rotation `sin θ/2 = C/λ`; `None` picks `λ_min`.
    pub rotation_constant: Option<f64>,
}

impl Default for HhlOptions {
    fn default() -> Self {
        HhlOptions {
            clock_qubits: 6,
            evolution_time: None,
            rotation_constant: None,
        }
    }
}

/// Result of an HHL solve.
#[derive(Debug, Clone)]
pub struct HhlResult {
    /// Normalised solution direction.
    pub direction: Vector<f64>,
    /// Post-selection success probability (flag = 1, clock = 0).
    pub success_probability: f64,
    /// Total number of qubits simulated.
    pub total_qubits: usize,
    /// Gate count of the HHL circuit.
    pub gate_count: usize,
}

/// Eigendecomposition of a symmetric matrix derived from its SVD (signs of the
/// eigenvalues recovered through the Rayleigh quotient).
fn symmetric_eigen(a: &Matrix<f64>) -> (Vec<f64>, Matrix<f64>) {
    let svd = Svd::new(a);
    let n = a.nrows();
    let mut eigenvalues = Vec::with_capacity(n);
    for k in 0..n {
        let u = svd.u.col(k);
        let au = a.matvec(&u);
        eigenvalues.push(u.dot(&au));
    }
    (eigenvalues, svd.u.clone())
}

/// HHL solver for symmetric positive-definite (or symmetric with known-sign
/// spectrum) matrices.
pub struct HhlSolver {
    matrix: Matrix<f64>,
    options: HhlOptions,
    eigenvalues: Vec<f64>,
    eigenvectors: Matrix<f64>,
    evolution_time: f64,
    rotation_constant: f64,
}

impl HhlSolver {
    /// Prepare the solver for a symmetric matrix.
    pub fn new(a: &Matrix<f64>, options: HhlOptions) -> Self {
        assert!(a.is_square(), "HHL needs a square matrix");
        assert!(
            a.is_symmetric(1e-10),
            "HHL needs a symmetric matrix; embed non-symmetric systems first"
        );
        assert!(a.nrows().is_power_of_two(), "dimension must be 2^n");
        let (eigenvalues, eigenvectors) = symmetric_eigen(a);
        let lambda_max = eigenvalues.iter().cloned().fold(f64::MIN, f64::max);
        let lambda_min_abs = eigenvalues.iter().map(|l| l.abs()).fold(f64::MAX, f64::min);
        assert!(lambda_min_abs > 0.0, "matrix is singular");
        let evolution_time = options
            .evolution_time
            .unwrap_or(std::f64::consts::PI / lambda_max);
        let rotation_constant = options.rotation_constant.unwrap_or(lambda_min_abs);
        HhlSolver {
            matrix: a.clone(),
            options,
            eigenvalues,
            eigenvectors,
            evolution_time,
            rotation_constant,
        }
    }

    /// The exact unitary `e^{iAt·s}` as a dense matrix.
    fn evolution_unitary(&self, steps: f64) -> CMatrix {
        let n = self.matrix.nrows();
        let t = self.evolution_time * steps;
        // U = V diag(e^{iλt}) Vᵀ.
        CMatrix::from_fn(n, n, |i, j| {
            let mut acc = Complex64::new(0.0, 0.0);
            for k in 0..n {
                let phase = Complex64::from_polar(1.0, self.eigenvalues[k] * t);
                acc += phase * self.eigenvectors[(i, k)] * self.eigenvectors[(j, k)];
            }
            acc
        })
    }

    /// Build the full HHL circuit for a prepared `|b⟩` on the data register.
    ///
    /// Register layout (little-endian): data qubits `0..n`, clock qubits
    /// `n..n+t`, rotation flag `n+t`.
    pub fn circuit(&self) -> Circuit {
        let n_data = self.matrix.nrows().trailing_zeros() as usize;
        let t = self.options.clock_qubits;
        let flag = n_data + t;
        let total = n_data + t + 1;
        let mut circuit = Circuit::new(total);

        // 1. Hadamards on the clock register.
        for q in n_data..n_data + t {
            circuit.h(q);
        }
        // 2. Controlled powers of U = e^{iAt}.
        for j in 0..t {
            let u_pow = self.evolution_unitary(2f64.powi(j as i32));
            let targets: Vec<usize> = (0..n_data).collect();
            circuit.controlled_gate(Gate::Unitary(u_pow), &targets, &[n_data + j]);
        }
        // 3. Inverse QFT on the clock register.
        circuit.append(&inverse_qft(n_data, t, total));
        // 4. Eigenvalue-controlled rotation of the flag.
        let dim_clock = 1usize << t;
        for k in 1..dim_clock {
            // Clock value k encodes the phase estimate φ = k / 2^t, i.e. the
            // eigenvalue λ̃ = 2π k / (2^t · t_evolution).
            let lambda = 2.0 * std::f64::consts::PI * (k as f64)
                / ((dim_clock as f64) * self.evolution_time);
            let ratio = (self.rotation_constant / lambda).clamp(-1.0, 1.0);
            let theta = 2.0 * ratio.asin();
            if theta.abs() < 1e-14 {
                continue;
            }
            // Controls: clock register in state |k⟩.
            let controls: Vec<usize> = (0..t).map(|b| n_data + b).collect();
            let zero_controls: Vec<usize> = (0..t)
                .filter(|b| k & (1 << b) == 0)
                .map(|b| n_data + b)
                .collect();
            for &q in &zero_controls {
                circuit.x(q);
            }
            circuit.controlled_gate(Gate::Ry(theta), &[flag], &controls);
            for &q in &zero_controls {
                circuit.x(q);
            }
        }
        // 5. Un-compute the phase estimation (QFT, controlled U^{-2^j}, H's).
        circuit.append(&inverse_qft(n_data, t, total).adjoint());
        for j in (0..t).rev() {
            let u_pow = self.evolution_unitary(-(2f64.powi(j as i32)));
            let targets: Vec<usize> = (0..n_data).collect();
            circuit.controlled_gate(Gate::Unitary(u_pow), &targets, &[n_data + j]);
        }
        for q in n_data..n_data + t {
            circuit.h(q);
        }
        circuit
    }

    /// Solve `A x = b`, returning the normalised solution direction.
    pub fn solve_direction(&self, b: &Vector<f64>) -> HhlResult {
        let n_data = self.matrix.nrows().trailing_zeros() as usize;
        let t = self.options.clock_qubits;
        let flag = n_data + t;
        let total = n_data + t + 1;

        let circuit = self.circuit();
        // Embed |b⟩ on the data register.
        let mut b_normalised = b.clone();
        b_normalised.normalize();
        let dim = self.matrix.nrows();
        let mut amps = vec![Complex64::new(0.0, 0.0); 1usize << total];
        for i in 0..dim {
            amps[i] = Complex64::new(b_normalised[i], 0.0);
        }
        let mut sv = StateVector::from_amplitudes(amps);
        sv.apply_circuit(&circuit);

        // Post-select flag = |1⟩ and clock = |0…0⟩.
        // First flip the flag so that the "good" outcome is all-zeros.
        let mut flip = Circuit::new(total);
        flip.x(flag);
        sv.apply_circuit(&flip);
        let ancillas: Vec<usize> = (n_data..total).collect();
        let success = sv.project_zeros(&ancillas);

        let mut direction: Vector<f64> = (0..dim).map(|i| sv.amplitudes()[i].re).collect();
        let norm = direction.normalize();
        let success_probability = if norm > 0.0 { success } else { 0.0 };

        HhlResult {
            direction,
            success_probability,
            total_qubits: total,
            gate_count: circuit.gate_count(),
        }
    }

    /// Relative error of the HHL direction against the exact normalised
    /// solution (diagnostic).
    pub fn direction_error(&self, b: &Vector<f64>) -> f64 {
        let result = self.solve_direction(b);
        let mut exact = Svd::new(&self.matrix).pseudo_solve(b, 1e-14);
        exact.normalize();
        // Allow a global sign flip (the post-selected state has an arbitrary sign).
        let direct = (&result.direction - &exact).norm2();
        let flipped = (&result.direction.scaled(-1.0) - &exact).norm2();
        direct.min(flipped)
    }
}

/// Inverse quantum Fourier transform on the clock register
/// (`qubits n_data .. n_data + t`), embedded in a `total`-qubit circuit.
fn inverse_qft(n_data: usize, t: usize, total: usize) -> Circuit {
    let mut circuit = Circuit::new(total);
    // Standard QFT† with the clock register in little-endian order.
    for i in (0..t).rev() {
        for j in (i + 1..t).rev() {
            let angle = -std::f64::consts::PI / 2f64.powi((j - i) as i32);
            circuit.cphase(n_data + j, n_data + i, angle);
        }
        circuit.h(n_data + i);
    }
    // Reverse the qubit order.
    for i in 0..t / 2 {
        circuit.swap(n_data + i, n_data + t - 1 - i);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::generate::{
        random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn solves_diagonal_system() {
        // Eigenvalues chosen to be exactly representable by the clock register.
        let a = Matrix::from_diag(&[1.0, 0.5]);
        let b = Vector::from_f64_slice(&[1.0, 1.0]);
        let solver = HhlSolver::new(
            &a,
            HhlOptions {
                clock_qubits: 6,
                ..Default::default()
            },
        );
        let err = solver.direction_error(&b);
        assert!(err < 5e-2, "direction error {err}");
        let result = solver.solve_direction(&b);
        assert!(result.success_probability > 0.0);
        assert_eq!(result.total_qubits, 1 + 6 + 1);
    }

    #[test]
    fn solves_small_spd_system() {
        let mut rng = ChaCha8Rng::seed_from_u64(171);
        let a = random_matrix_with_cond(
            4,
            4.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::SymmetricPositiveDefinite,
            &mut rng,
        );
        let b = random_unit_vector(4, &mut rng);
        let solver = HhlSolver::new(
            &a,
            HhlOptions {
                clock_qubits: 7,
                ..Default::default()
            },
        );
        let err = solver.direction_error(&b);
        assert!(err < 0.1, "direction error {err}");
    }

    #[test]
    fn more_clock_qubits_improve_accuracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(172);
        let a = random_matrix_with_cond(
            2,
            3.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::SymmetricPositiveDefinite,
            &mut rng,
        );
        let b = random_unit_vector(2, &mut rng);
        let coarse = HhlSolver::new(
            &a,
            HhlOptions {
                clock_qubits: 4,
                ..Default::default()
            },
        )
        .direction_error(&b);
        let fine = HhlSolver::new(
            &a,
            HhlOptions {
                clock_qubits: 8,
                ..Default::default()
            },
        )
        .direction_error(&b);
        assert!(fine <= coarse + 1e-9, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    #[should_panic]
    fn rejects_nonsymmetric_matrix() {
        let a = Matrix::from_f64_slice(2, 2, &[1.0, 0.5, 0.0, 1.0]);
        let _ = HhlSolver::new(&a, HhlOptions::default());
    }
}
