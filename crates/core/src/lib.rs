//! # qls-core
//!
//! The paper's contribution: a mixed-precision hybrid CPU/QPU linear-system
//! solver that computes a first solution with the QSVT at low accuracy ε_l and
//! refines it classically until a target accuracy ε is reached
//! (Koska–Baboulin–Gazda, "A mixed-precision quantum-classical algorithm for
//! solving linear systems").
//!
//! * [`solver`] — one QSVT solve (Remark 2 pipeline: normalise `b`, state
//!   preparation, QSVT of `A†`, readout, Brent norm recovery) with full cost
//!   accounting.
//! * [`refine`] — Algorithm 2: the hybrid iterative-refinement loop, its
//!   convergence history, the Theorem III.1 bound, and the fault-recovery
//!   ladder ([`RecoveryPolicy`]: retry → escalate shots → tighten ε_l →
//!   classical fallback) with its audit log ([`RecoveryLog`]).
//! * [`error`] — the unified [`QlsError`] taxonomy (classical, quantum and
//!   non-finite boundary failures, with `source()` chains to the root cause).
//! * [`cost`] — the quantum cost model of Table I and the Poisson breakdown of
//!   Table II.
//! * [`comms`] — the CPU↔QPU communication timeline of Fig. 1.
//! * [`baselines`] — direct high-precision QSVT (the paper's comparison
//!   strategy), the classical LU reference, and classical mixed-precision
//!   iterative refinement (Algorithm 1).
//! * [`hhl`] — a QPE-based HHL solver (extension baseline discussed in the
//!   paper's introduction).
//!
//! ## Example
//!
//! ```
//! use qls_core::{HybridRefiner, HybridRefinementOptions};
//! use qls_linalg::generate::{random_matrix_with_cond, random_unit_vector,
//!                            MatrixEnsemble, SingularValueDistribution};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let a = random_matrix_with_cond(
//!     16, 10.0,
//!     SingularValueDistribution::Geometric,
//!     MatrixEnsemble::General,
//!     &mut rng,
//! );
//! let b = random_unit_vector(16, &mut rng);
//!
//! let refiner = HybridRefiner::new(&a, HybridRefinementOptions {
//!     target_epsilon: 1e-10,
//!     epsilon_l: 1e-2,
//!     ..Default::default()
//! }).unwrap();
//! let (x, history) = refiner.solve(&b, &mut rng).unwrap();
//! assert!(history.final_residual() <= 1e-10);
//! assert!(history.iterations() <= history.iteration_bound().unwrap());
//! # let _ = x;
//! ```

pub mod baselines;
pub mod comms;
pub mod cost;
pub mod error;
pub mod hhl;
pub mod refine;
pub mod solver;

pub use baselines::{classical_lu_solve, DirectQsvtSolver};
pub use comms::{
    CommunicationParameters, CommunicationSchedule, Direction, Payload, TransferEvent,
};
pub use cost::{
    poisson_cost_breakdown, qsvt_degree_model, quantum_cost_comparison, CostParameters,
    PoissonCostParameters, PoissonCostRow, QuantumCostComparison, StrategyCost,
};
pub use error::QlsError;
pub use hhl::{HhlOptions, HhlResult, HhlSolver};
pub use refine::{
    FailureReason, HealthIssue, HybridHistory, HybridRefinementOptions, HybridRefiner,
    HybridStatus, HybridStep, RecoveryAction, RecoveryEvent, RecoveryLog, RecoveryPolicy,
    STAGNATION_WINDOW,
};
pub use solver::{
    sample_direction, QsvtLinearSolver, QsvtSolveResult, QsvtSolverOptions, SolveCost,
};
