//! Quantum and classical cost models (Tables I and II of the paper).
//!
//! Table I compares the quantum cost of solving `A x = b` once with the QSVT
//! at high precision ε against the mixed-precision refined solver:
//!
//! | quantity       | QSVT only              | QSVT + iterative refinement        |
//! |----------------|------------------------|------------------------------------|
//! | # solves       | 1                      | ⌈log ε / log(κ ε_l)⌉              |
//! | C_QSVT         | O(B κ log(κ/ε))        | O(B κ log(κ/ε_l))                  |
//! | # samples      | O(1/ε²)                | O(1/ε_l²)                          |
//! | total          | product of the above   | product of the above               |
//!
//! Table II breaks down the classical flops and quantum gate scaling of each
//! phase (state preparation, block-encoding, QSVT, solution recovery) for the
//! 1-D Poisson use case, separately for the first solve and for each
//! refinement iteration.  Both models are parameterised by the block-encoding
//! cost `B`, so they can be evaluated either with the analytic tridiagonal
//! counts of Ref. [37] or with the measured gate counts of the constructions
//! in `qls-encoding`.

use qls_linalg::refine::iteration_bound;
use serde::Serialize;

/// Parameters of the quantum cost model of Table I.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CostParameters {
    /// Condition number κ of the matrix.
    pub kappa: f64,
    /// Target (high) accuracy ε.
    pub epsilon: f64,
    /// Low accuracy ε_l of each QSVT solve (for the refined solver).
    pub epsilon_l: f64,
    /// Cost `B` of one call to the block-encoding circuit (in whatever unit
    /// the caller wants the totals: gates, T gates, seconds, …).
    pub block_encoding_cost: f64,
}

/// The Table-I cost of one strategy.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StrategyCost {
    /// Number of calls to the solver.
    pub solves: f64,
    /// Per-solve QSVT cost `C_QSVT` (block-encoding calls × B).
    pub qsvt_cost: f64,
    /// Number of calls to the block-encoding per solve (polynomial degree).
    pub block_encoding_calls_per_solve: f64,
    /// Number of measurement samples per solve.
    pub samples: f64,
    /// Total cost = solves × C_QSVT × samples.
    pub total: f64,
}

/// The two columns of Table I.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QuantumCostComparison {
    /// Parameters the comparison was evaluated at.
    pub parameters: CostParameters,
    /// Left column: direct QSVT at precision ε.
    pub qsvt_only: StrategyCost,
    /// Right column: QSVT at precision ε_l + iterative refinement.
    pub qsvt_with_refinement: StrategyCost,
    /// The ratio total(QSVT only) / total(refined); > 1 means refinement wins.
    pub speedup: f64,
}

/// Number of block-encoding calls (polynomial degree) of a QSVT solve at
/// accuracy `eps`: `d(κ, ε) ≍ κ log(κ/ε)` — the scaling the paper uses in
/// Table I (constants chosen to match the Eq. (4) construction's 2D+1 degree
/// up to its leading behaviour).
pub fn qsvt_degree_model(kappa: f64, eps: f64) -> f64 {
    assert!(kappa >= 1.0 && eps > 0.0 && eps < 1.0);
    // 2·D(ε,κ)+1 with D = sqrt(b log(4b/ε)), b = κ² log(κ/ε); asymptotically
    // this is Θ(κ log(κ/ε)); we evaluate the exact expression for fidelity
    // with the implementation.
    let b = (kappa * kappa * (kappa / eps).ln()).ceil();
    let d = (b * (4.0 * b / eps).ln()).sqrt().ceil();
    2.0 * d + 1.0
}

/// Evaluate the Table-I comparison at the given parameters.
pub fn quantum_cost_comparison(parameters: CostParameters) -> QuantumCostComparison {
    let CostParameters {
        kappa,
        epsilon,
        epsilon_l,
        block_encoding_cost,
    } = parameters;

    // Left column: one solve at accuracy ε.
    let degree_high = qsvt_degree_model(kappa, epsilon.min(0.49));
    let qsvt_only = StrategyCost {
        solves: 1.0,
        block_encoding_calls_per_solve: degree_high,
        qsvt_cost: degree_high * block_encoding_cost,
        samples: 1.0 / (epsilon * epsilon),
        total: degree_high * block_encoding_cost / (epsilon * epsilon),
    };

    // Right column: ⌈log ε / log(κ ε_l)⌉ solves at accuracy ε_l (the paper's
    // Table-I bound; at least the initial solve is always performed).
    let bound = iteration_bound(epsilon, epsilon_l, kappa)
        .map(|b| (b as f64).max(1.0))
        .unwrap_or(f64::INFINITY);
    let degree_low = qsvt_degree_model(kappa, epsilon_l.min(0.49));
    let per_solve = degree_low * block_encoding_cost;
    let samples_low = 1.0 / (epsilon_l * epsilon_l);
    let qsvt_with_refinement = StrategyCost {
        solves: bound,
        block_encoding_calls_per_solve: degree_low,
        qsvt_cost: per_solve,
        samples: samples_low,
        total: bound * per_solve * samples_low,
    };

    let speedup = qsvt_only.total / qsvt_with_refinement.total;
    QuantumCostComparison {
        parameters,
        qsvt_only,
        qsvt_with_refinement,
        speedup,
    }
}

/// One row of Table II (cost of one sub-task of the Poisson use case).
#[derive(Debug, Clone, Serialize)]
pub struct PoissonCostRow {
    /// Phase: "first solve" or "iteration".
    pub phase: &'static str,
    /// Sub-task: SP, BE, QSVT, Solution.
    pub task: &'static str,
    /// Classical cost in flops (0 when the task is fully quantum).
    pub classical_flops: f64,
    /// Quantum cost in T gates (0 when the task is fully classical).
    pub quantum_t_gates: f64,
    /// The asymptotic expression reported by the paper for this cell.
    pub paper_scaling: &'static str,
}

/// Parameters of the Table-II Poisson breakdown.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PoissonCostParameters {
    /// Number of data qubits n (N = 2^n grid points).
    pub n_qubits: usize,
    /// Condition number κ of the Poisson matrix.
    pub kappa: f64,
    /// Low accuracy ε_l of each QSVT solve.
    pub epsilon_l: f64,
    /// Target accuracy ε.
    pub epsilon: f64,
}

/// Evaluate the Table-II breakdown: classical flops and quantum T-gate counts
/// of every sub-task, for the first solve and for one refinement iteration.
pub fn poisson_cost_breakdown(p: PoissonCostParameters) -> Vec<PoissonCostRow> {
    let n = p.n_qubits as f64;
    let big_n = (1u64 << p.n_qubits) as f64;
    let kappa = p.kappa;
    // T-gate cost of one call to the tridiagonal block-encoding (Ref. [37] scaling).
    let be_t = 48.0 * n + 28.0;
    // Block-encoding calls per solve: degree of the inversion polynomial.
    let degree = qsvt_degree_model(kappa, p.epsilon_l.max(1e-14));
    let qsvt_t = degree * be_t;
    // Classical costs.
    let sp_classical = 2.0 * big_n;
    let phases_classical = kappa; // O(κ) phase estimation [32]
    let solution_classical = 4.0 * big_n + (1.0 / p.epsilon).ln().max(1.0);

    vec![
        PoissonCostRow {
            phase: "first solve",
            task: "SP",
            classical_flops: sp_classical,
            quantum_t_gates: 4.0 * n * n,
            paper_scaling: "classical O(2^n), quantum O(polylog n)",
        },
        PoissonCostRow {
            phase: "first solve",
            task: "BE",
            classical_flops: 0.0,
            quantum_t_gates: qsvt_t,
            paper_scaling: "quantum O(n κ log(κ/ε_l))",
        },
        PoissonCostRow {
            phase: "first solve",
            task: "QSVT (Φ, U_Φ)",
            classical_flops: phases_classical,
            quantum_t_gates: qsvt_t,
            paper_scaling: "classical O(κ), quantum O(n κ log(κ/ε_l))",
        },
        PoissonCostRow {
            phase: "first solve",
            task: "Solution",
            classical_flops: solution_classical,
            quantum_t_gates: 0.0,
            paper_scaling: "classical O(4n + log(1/ε))",
        },
        PoissonCostRow {
            phase: "iteration",
            task: "SP",
            classical_flops: sp_classical,
            quantum_t_gates: 4.0 * n * n,
            paper_scaling: "classical O(2^n), quantum O(polylog n)",
        },
        PoissonCostRow {
            phase: "iteration",
            task: "BE",
            classical_flops: 0.0,
            quantum_t_gates: qsvt_t,
            paper_scaling: "quantum O(n κ log(κ/ε_l))",
        },
        PoissonCostRow {
            phase: "iteration",
            task: "QSVT (U_Φ)",
            classical_flops: 0.0,
            quantum_t_gates: qsvt_t,
            paper_scaling: "quantum O(n κ log(κ/ε_l))",
        },
        PoissonCostRow {
            phase: "iteration",
            task: "Solution",
            classical_flops: solution_classical,
            quantum_t_gates: 0.0,
            paper_scaling: "classical O(4n + log(1/ε))",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(kappa: f64, eps: f64, eps_l: f64) -> CostParameters {
        CostParameters {
            kappa,
            epsilon: eps,
            epsilon_l: eps_l,
            block_encoding_cost: 1.0,
        }
    }

    #[test]
    fn refinement_wins_when_eps_much_smaller_than_eps_l() {
        // The Fig. 5 regime: kappa = 2, eps_l ≈ 1/kappa, eps ≪ eps_l.
        let comparison = quantum_cost_comparison(params(2.0, 1e-8, 0.4));
        assert!(comparison.speedup > 1.0, "speedup {}", comparison.speedup);
        assert!(comparison.qsvt_with_refinement.total < comparison.qsvt_only.total);
    }

    #[test]
    fn costs_coincide_when_eps_equals_eps_l() {
        // At ε = ε_l both strategies run the same polynomial degree and the same
        // number of samples per solve; the measured Fig. 5 curves therefore meet
        // there (the analytic worst-case bound still allows a few refinement
        // iterations, which is why the comparison is per-solve here).
        let comparison = quantum_cost_comparison(params(2.0, 0.4, 0.4));
        assert_eq!(
            comparison.qsvt_only.block_encoding_calls_per_solve,
            comparison
                .qsvt_with_refinement
                .block_encoding_calls_per_solve
        );
        assert_eq!(
            comparison.qsvt_only.samples,
            comparison.qsvt_with_refinement.samples
        );
        // And the advantage appears as ε shrinks below ε_l.
        let tight = quantum_cost_comparison(params(2.0, 1e-8, 0.4));
        assert!(tight.speedup > comparison.speedup);
    }

    #[test]
    fn sample_count_scales_inverse_square() {
        let c1 = quantum_cost_comparison(params(10.0, 1e-6, 1e-2));
        assert!((c1.qsvt_only.samples - 1e12).abs() / 1e12 < 1e-9);
        assert!((c1.qsvt_with_refinement.samples - 1e4).abs() / 1e4 < 1e-9);
    }

    #[test]
    fn degree_model_increases_with_kappa_and_accuracy() {
        assert!(qsvt_degree_model(10.0, 1e-4) > qsvt_degree_model(10.0, 1e-2));
        assert!(qsvt_degree_model(100.0, 1e-2) > qsvt_degree_model(10.0, 1e-2));
    }

    #[test]
    fn degree_model_matches_constructed_polynomial() {
        // The model and the actual InversePolynomial should agree exactly.
        for &(kappa, eps) in &[(2.0, 1e-2), (10.0, 1e-3), (50.0, 1e-2)] {
            let poly = qls_poly::InversePolynomial::new(kappa, eps);
            let model = qsvt_degree_model(kappa, eps);
            assert_eq!(model as usize, poly.degree());
        }
    }

    #[test]
    fn speedup_grows_as_target_accuracy_tightens() {
        let loose = quantum_cost_comparison(params(2.0, 1e-4, 0.4));
        let tight = quantum_cost_comparison(params(2.0, 1e-10, 0.4));
        assert!(tight.speedup > loose.speedup);
    }

    #[test]
    fn poisson_breakdown_has_eight_rows_and_sensible_scalings() {
        let rows = poisson_cost_breakdown(PoissonCostParameters {
            n_qubits: 4,
            kappa: 100.0,
            epsilon_l: 1e-2,
            epsilon: 1e-10,
        });
        assert_eq!(rows.len(), 8);
        // Quantum-only tasks have zero classical flops and vice versa.
        let be_row = rows
            .iter()
            .find(|r| r.phase == "iteration" && r.task == "BE")
            .unwrap();
        assert_eq!(be_row.classical_flops, 0.0);
        assert!(be_row.quantum_t_gates > 0.0);
        let sol_row = rows
            .iter()
            .find(|r| r.phase == "iteration" && r.task == "Solution")
            .unwrap();
        assert_eq!(sol_row.quantum_t_gates, 0.0);
        assert!(sol_row.classical_flops > 0.0);
        // The first solve includes the O(κ) classical phase computation, the
        // iterations do not.
        let first_qsvt = rows
            .iter()
            .find(|r| r.phase == "first solve" && r.task.starts_with("QSVT"))
            .unwrap();
        let iter_qsvt = rows
            .iter()
            .find(|r| r.phase == "iteration" && r.task.starts_with("QSVT"))
            .unwrap();
        assert!(first_qsvt.classical_flops > 0.0);
        assert_eq!(iter_qsvt.classical_flops, 0.0);
    }

    #[test]
    fn poisson_quantum_cost_grows_with_n_and_kappa() {
        let small = poisson_cost_breakdown(PoissonCostParameters {
            n_qubits: 4,
            kappa: 50.0,
            epsilon_l: 1e-2,
            epsilon: 1e-10,
        });
        let large = poisson_cost_breakdown(PoissonCostParameters {
            n_qubits: 8,
            kappa: 200.0,
            epsilon_l: 1e-2,
            epsilon: 1e-10,
        });
        let total =
            |rows: &[PoissonCostRow]| -> f64 { rows.iter().map(|r| r.quantum_t_gates).sum() };
        assert!(total(&large) > total(&small));
    }
}
