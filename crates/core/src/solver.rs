//! The QSVT linear-system solver (one "QPU solve" of the paper).
//!
//! [`QsvtLinearSolver`] performs a single low-accuracy solve of `A x = b` the
//! way Algorithm 2 of the paper invokes its QPU:
//!
//! 1. normalise `b` (quantum algorithms operate on unit states — Remark 2);
//! 2. prepare the state, apply the QSVT of `A†` with the Eq. (4) polynomial
//!    (through `qls-qsvt`, either the simulated circuit or the ideal-output
//!    emulation), post-select the ancillas;
//! 3. read out the solution *direction* `η = x/‖x‖`, exactly or through a
//!    finite number of measurement shots (`O(1/ε_l²)` in the paper's model);
//! 4. recover the solution norm classically with Brent's method
//!    (`argmin_μ ‖A(μη) − b‖`) and return `x̃ = μ η`.
//!
//! The per-solve resource record (block-encoding calls, shots, classical
//! flops) feeds the cost model of [`crate::cost`].

use crate::error::QlsError;
use qls_cache::CachePolicy;
use qls_encoding::StatePreparation;
use qls_linalg::{brent_minimize, scaled_residual, LinearOperator, Matrix, Vector};
use qls_qsvt::{QsvtInverter, QsvtMode, QsvtResources};
use qls_sim::fault::{lock_injector, SharedFaultInjector};
use qls_sim::{shots_for_accuracy, ExecMode, OptLevel};
use rand::Rng;
use serde::Serialize;

/// Configuration of a QSVT solve.
#[derive(Debug, Clone, Copy)]
pub struct QsvtSolverOptions {
    /// Low (solver) accuracy ε_l targeted by the QSVT solve.
    pub epsilon_l: f64,
    /// Execution mode for the quantum part.
    pub mode: QsvtMode,
    /// Number of measurement shots used to read out the solution direction;
    /// `None` reads the exact amplitudes from the simulator (noiseless
    /// readout, the regime of the paper's convergence plots).
    pub shots: Option<usize>,
    /// Iteration/evaluation budget of the Brent norm-recovery step.
    pub brent_tolerance: f64,
    /// Circuit-optimization level of the compiled QSVT circuit (circuit mode
    /// only): the default `OptLevel::Fuse` runs gate fusion + diagonal
    /// merging before compiling; `OptLevel::None` keeps the compiled form
    /// one-op-per-gate (the unoptimized compile-once baseline the perf
    /// trajectory measures fusion against).
    pub opt_level: OptLevel,
    /// Perf-trajectory baseline switch: when `true`, every solve applies the
    /// QSVT circuit through the **uncached** pre-compile-once path
    /// (`QsvtInverter::solve_direction_uncached` — the circuit is recompiled
    /// on each call, as every solve did before the execution-engine layer).
    /// Retained so `bench_json` can measure compile-once vs
    /// recompile-per-iteration end to end and tests can check the two paths
    /// agree.  Leave `false` outside benchmarks.
    pub recompile_baseline: bool,
    /// Persistent artifact cache policy (`qls-cache`).  `Enabled` — the
    /// default — lets repeat constructions of the same solver (same matrix
    /// spectrum, accuracy, and options) load the QSVT phase factors and the
    /// fused circuit from disk instead of regenerating them; results are
    /// bit-identical either way.  `CachePolicy::Disabled` is the escape
    /// hatch that never reads or writes the cache directory.
    pub cache: CachePolicy,
}

impl Default for QsvtSolverOptions {
    fn default() -> Self {
        QsvtSolverOptions {
            epsilon_l: 1e-2,
            mode: QsvtMode::Emulation,
            shots: None,
            brent_tolerance: 1e-12,
            opt_level: OptLevel::default(),
            recompile_baseline: false,
            cache: CachePolicy::default(),
        }
    }
}

impl QsvtSolverOptions {
    /// The number of shots the paper's model would prescribe for this ε_l
    /// (`O(1/ε_l²)`), whether or not sampling is enabled.
    pub fn model_shots(&self) -> usize {
        shots_for_accuracy(self.epsilon_l, 1.0)
    }
}

/// Result of one QSVT solve.
#[derive(Debug, Clone)]
pub struct QsvtSolveResult {
    /// The recovered (de-normalised) solution `x̃ = μ η`.
    pub solution: Vector<f64>,
    /// The normalised direction `η` returned by the quantum routine.
    pub direction: Vector<f64>,
    /// The recovered norm `μ ≈ ‖x‖`.
    pub scale: f64,
    /// Scaled residual `‖b − A x̃‖/‖b‖` of the returned solution.
    pub scaled_residual: f64,
    /// Ancilla post-selection success probability of the QSVT circuit.
    pub success_probability: f64,
    /// Per-solve cost record.
    pub cost: SolveCost,
}

/// Cost bookkeeping for a single solve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SolveCost {
    /// Degree of the inversion polynomial.
    pub polynomial_degree: usize,
    /// Calls to the block-encoding of `A†` (and its adjoint).
    pub block_encoding_calls: usize,
    /// Shots used for the readout (the model value when exact readout is used).
    pub shots: usize,
    /// Classical flops of the state-preparation preprocessing (tree build).
    pub state_prep_flops: usize,
    /// Classical evaluations used by the Brent norm recovery.
    pub brent_evaluations: usize,
    /// Classical flops of the residual/verification mat-vec.
    pub classical_matvec_flops: usize,
}

/// A prepared QSVT solver for a fixed matrix.
///
/// Generic over the classical operator representation of `A`
/// ([`LinearOperator`], dense [`Matrix`] by default so existing callers
/// compile unchanged): the quantum side (SVD, block-encoding, compiled QSVT
/// circuit) is built once from the densified matrix in
/// [`QsvtLinearSolver::new`], while every **per-solve classical step** — the
/// Brent norm-recovery matvec and the residual check — runs through the
/// operator at O(nnz).
pub struct QsvtLinearSolver<Op: LinearOperator<f64> = Matrix<f64>> {
    operator: Op,
    inverter: QsvtInverter,
    options: QsvtSolverOptions,
}

impl<Op: LinearOperator<f64>> QsvtLinearSolver<Op> {
    /// Prepare the solver (builds the inverse polynomial and, in circuit mode,
    /// the phase factors and the optimized, compiled-once QSVT circuit).
    /// The densification needed by the quantum-side construction happens here,
    /// once — never on the solve path.
    pub fn new(a: &Op, options: QsvtSolverOptions) -> Result<Self, QlsError> {
        // The densified temporary is dropped before the operator is cloned,
        // so the dense default (`to_dense` = clone) never holds an extra
        // N² buffer beyond what the inverter keeps.
        let inverter = QsvtInverter::with_config(
            &a.to_dense(),
            options.epsilon_l,
            options.mode,
            options.opt_level,
            ExecMode::default(),
            options.cache,
        )?;
        Ok(QsvtLinearSolver {
            operator: a.clone(),
            inverter,
            options,
        })
    }

    /// Attach a fault injector to the quantum side (see `qls_sim::fault`).
    /// Amplitude noise and transients degrade each inner solve; readout
    /// sign corruption composes with the finite-shot sampling path.
    pub fn attach_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.inverter.attach_fault_injector(injector);
    }

    /// Detach and return the fault injector, restoring ideal execution.
    pub fn detach_fault_injector(&mut self) -> Option<SharedFaultInjector> {
        self.inverter.detach_fault_injector()
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.inverter.fault_injector()
    }

    /// The solver options.
    pub fn options(&self) -> &QsvtSolverOptions {
        &self.options
    }

    /// The classical operator the per-solve matvecs run through.
    pub fn operator(&self) -> &Op {
        &self.operator
    }

    /// The condition number of the prepared matrix (from its SVD).
    pub fn kappa(&self) -> f64 {
        self.inverter.kappa()
    }

    /// Quantum-side resource description (degree, block-encoding calls, …).
    pub fn quantum_resources(&self) -> QsvtResources {
        self.inverter.resources()
    }

    /// The circuit-optimizer's before/after report for the compiled QSVT
    /// circuit (`Some` only in circuit mode with fusion on).
    pub fn circuit_stats(&self) -> Option<&qls_sim::CircuitStats> {
        self.inverter.circuit_stats()
    }

    /// Solve `A x = b` once at accuracy ε_l.  `rng` is only used when shot
    /// sampling is enabled.
    pub fn solve<R: Rng>(&self, b: &Vector<f64>, rng: &mut R) -> Result<QsvtSolveResult, QlsError> {
        self.solve_with_shots(b, self.options.shots, rng)
    }

    /// [`QsvtLinearSolver::solve`] with a per-call shot override (`None`
    /// reads exact amplitudes).  This is the recovery ladder's
    /// shot-escalation rung: the same prepared solver, more measurements.
    pub fn solve_with_shots<R: Rng>(
        &self,
        b: &Vector<f64>,
        shots: Option<usize>,
        rng: &mut R,
    ) -> Result<QsvtSolveResult, QlsError> {
        assert_eq!(b.len(), self.operator.nrows(), "dimension mismatch");
        // Quantum solve: direction of the solution, through the compiled-once
        // circuit (or the retained recompile-per-call baseline when the
        // benchmark switch asks for it).
        let (direction, success_probability) = if self.options.recompile_baseline {
            self.inverter.solve_direction_uncached(b)?
        } else {
            self.inverter.solve_direction(b)?
        };
        self.finish_solve(b, direction, success_probability, shots, rng)
    }

    /// Solve `A x = b_k` for **many** right-hand sides, reusing the one
    /// compiled QSVT circuit across the whole batch
    /// (`QsvtInverter::solve_direction_batch`, which fans the registers out
    /// across threads in circuit mode).  Results are identical to calling
    /// [`QsvtLinearSolver::solve`] per right-hand side in order.  The first
    /// per-system failure aborts the whole batch; use
    /// [`QsvtLinearSolver::solve_many_checked`] to keep the healthy systems.
    pub fn solve_many<R: Rng>(
        &self,
        bs: &[Vector<f64>],
        rng: &mut R,
    ) -> Result<Vec<QsvtSolveResult>, QlsError> {
        self.solve_many_checked(bs, rng).into_iter().collect()
    }

    /// [`QsvtLinearSolver::solve_many`] with a **per-system verdict**: one
    /// failed post-selection (or injected fault) no longer poisons the whole
    /// multi-RHS batch — the affected system carries its own error while
    /// every other system still returns its solution.
    pub fn solve_many_checked<R: Rng>(
        &self,
        bs: &[Vector<f64>],
        rng: &mut R,
    ) -> Vec<Result<QsvtSolveResult, QlsError>> {
        if self.options.recompile_baseline {
            // The baseline has no batch path — it models the engine-less API.
            return bs.iter().map(|b| self.solve(b, rng)).collect();
        }
        let directions = self.inverter.solve_direction_batch_checked(bs);
        bs.iter()
            .zip(directions)
            .map(|(b, outcome)| {
                let (direction, success) = outcome?;
                self.finish_solve(b, direction, success, self.options.shots, rng)
            })
            .collect()
    }

    /// Classical pre/post-processing shared by the single and batched solve:
    /// state-preparation accounting, optional finite-shot readout (with a
    /// per-call shot override), Brent norm recovery (Remark 2) and the cost
    /// record.  Guards the readout boundary: a non-finite direction (e.g. a
    /// NaN-poisoned register from an injected fault) is reported as
    /// [`QlsError::NonFinite`] instead of leaking into the refinement loop.
    fn finish_solve<R: Rng>(
        &self,
        b: &Vector<f64>,
        mut direction: Vector<f64>,
        success_probability: f64,
        shots_override: Option<usize>,
        rng: &mut R,
    ) -> Result<QsvtSolveResult, QlsError> {
        // Classical pre-processing: the state-preparation tree of b/‖b‖.
        let prep = StatePreparation::new(b);
        let state_prep_flops = prep.classical_flops;

        // Optional finite-shot readout: perturb magnitudes with multinomial
        // sampling noise, keep the signs (sign recovery is assumed exact, see
        // qls-sim::measure::signed_from_magnitudes).  An attached fault
        // injector's readout corruption composes with the sampled path —
        // sign flips model exactly the failure `signed_from_magnitudes`
        // assumes away.
        let shots = shots_override.unwrap_or_else(|| self.options.model_shots());
        if let Some(s) = shots_override {
            direction = sample_direction(&direction, s, rng);
            if let Some(inj) = self.inverter.fault_injector() {
                lock_injector(inj).corrupt_readout(direction.as_mut_slice());
            }
        }

        // Readout boundary guard: everything downstream (Brent, residual)
        // assumes finite values.
        if !direction.iter().all(|v| v.is_finite()) {
            return Err(QlsError::NonFinite {
                boundary: "readout",
            });
        }

        // Classical post-processing: norm recovery (Remark 2).
        let a_eta = self.operator.matvec(&direction);
        let b_norm = b.norm2();
        let upper = if a_eta.norm2() > 0.0 {
            2.0 * b_norm / a_eta.norm2() * 2.0
        } else {
            1.0
        };
        let objective = |mu: f64| {
            let mut r = b.clone();
            r.axpy(-mu, &a_eta);
            let v = r.norm2();
            v * v
        };
        let brent = brent_minimize(
            objective,
            0.0,
            upper.max(1e-6),
            self.options.brent_tolerance,
            200,
        );
        let scale = brent.x;

        let solution = direction.scaled(scale);
        let omega = scaled_residual(&self.operator, &solution, b);

        Ok(QsvtSolveResult {
            solution,
            direction,
            scale,
            scaled_residual: omega,
            success_probability,
            cost: SolveCost {
                polynomial_degree: self.inverter.resources().degree,
                block_encoding_calls: self.inverter.resources().block_encoding_calls,
                shots,
                state_prep_flops,
                brent_evaluations: brent.evaluations,
                classical_matvec_flops: 2 * self.operator.nnz(),
            },
        })
    }
}

/// Simulate a finite-shot readout of a normalised real direction vector:
/// magnitudes are re-estimated from a multinomial sample of `shots` outcomes,
/// signs are kept from the exact direction.
pub fn sample_direction<R: Rng>(direction: &Vector<f64>, shots: usize, rng: &mut R) -> Vector<f64> {
    let probs: Vec<f64> = direction.iter().map(|&x| x * x).collect();
    let mut counts = vec![0usize; probs.len()];
    // Cumulative distribution.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(1e-300);
    for _ in 0..shots {
        let r: f64 = rng.gen_range(0.0..total);
        let idx = cdf.partition_point(|&c| c < r).min(probs.len() - 1);
        counts[idx] += 1;
    }
    let mut sampled: Vector<f64> = counts
        .iter()
        .zip(direction.iter())
        .map(|(&c, &d)| {
            let mag = (c as f64 / shots as f64).sqrt();
            if d < 0.0 {
                -mag
            } else {
                mag
            }
        })
        .collect();
    sampled.normalize();
    sampled
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::generate::{
        random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
    };
    use qls_linalg::lu::lu_solve;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = random_unit_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn single_solve_reaches_epsilon_l_accuracy() {
        let (a, b) = system(10.0, 16, 141);
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = solver.solve(&b, &mut rng).unwrap();
        // The scaled residual of a single low-accuracy solve is ≲ ε_l·κ.
        assert!(result.scaled_residual < 1e-3 * 10.0 * 2.0);
        // And the solution is close to the LU reference.
        let reference = lu_solve(&a, &b).unwrap();
        let err = (&result.solution - &reference).norm2() / reference.norm2();
        assert!(err < 5e-3, "forward error {err}");
    }

    #[test]
    fn scale_recovery_matches_least_squares() {
        let (a, b) = system(5.0, 8, 142);
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 1e-4,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = solver.solve(&b, &mut rng).unwrap();
        // Analytic optimum of min_mu ||mu * (A eta) - b||: mu = (A eta)·b / ||A eta||².
        let a_eta = a.matvec(&result.direction);
        let mu_star = a_eta.dot(&b) / a_eta.dot(&a_eta);
        assert!(
            (result.scale - mu_star).abs() / mu_star < 1e-5,
            "Brent {} vs analytic {mu_star}",
            result.scale
        );
    }

    #[test]
    fn shot_noise_degrades_gracefully() {
        let (a, b) = system(10.0, 16, 143);
        let exact = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 1e-4,
                shots: None,
                ..Default::default()
            },
        )
        .unwrap();
        let sampled = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 1e-4,
                shots: Some(200_000),
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let r_exact = exact.solve(&b, &mut rng).unwrap();
        let r_sampled = sampled.solve(&b, &mut rng).unwrap();
        assert!(r_sampled.scaled_residual >= r_exact.scaled_residual * 0.5);
        // With 2e5 shots the sampled solve is still a usable low-precision solve.
        assert!(r_sampled.scaled_residual < 0.1);
    }

    #[test]
    fn cost_record_is_populated() {
        let (a, b) = system(10.0, 16, 144);
        let solver = QsvtLinearSolver::new(
            &a,
            QsvtSolverOptions {
                epsilon_l: 1e-2,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let result = solver.solve(&b, &mut rng).unwrap();
        assert!(result.cost.polynomial_degree > 0);
        assert_eq!(
            result.cost.block_encoding_calls,
            result.cost.polynomial_degree
        );
        assert_eq!(result.cost.shots, shots_for_accuracy(1e-2, 1.0));
        assert!(result.cost.state_prep_flops > 0);
        assert!(result.cost.brent_evaluations > 0);
        assert!(result.success_probability > 0.0);
    }

    #[test]
    fn sampled_direction_stays_normalised() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let direction = Vector::from_f64_slice(&[0.6, -0.64, 0.48, 0.0]);
        let sampled = sample_direction(&direction, 10_000, &mut rng);
        assert!((sampled.norm2() - 1.0).abs() < 1e-12);
        // Signs preserved.
        assert!(sampled[1] <= 0.0);
        assert!(sampled[0] >= 0.0);
    }

    #[test]
    fn sampling_recovers_every_sign_on_random_directions() {
        // Property: with enough shots the sampled direction never flips a
        // sign on coordinates with non-negligible probability mass.
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let direction = random_unit_vector(16, &mut rng);
            let sampled = sample_direction(&direction, 100_000, &mut rng);
            for (s, d) in sampled.iter().zip(direction.iter()) {
                if d.abs() > 0.05 {
                    assert!(
                        s * d >= 0.0,
                        "seed {seed}: sign flipped on coordinate with mass {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampling_error_shrinks_with_shot_count() {
        // Property: the readout error follows the O(1/sqrt(shots)) model —
        // averaged over seeds, 100x the shots must cut the error by well
        // over 2x (the theoretical factor is 10x).
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let direction = random_unit_vector(32, &mut rng);
        let mut err_lo = 0.0;
        let mut err_hi = 0.0;
        for seed in 0..10 {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            err_lo += (&sample_direction(&direction, 1_000, &mut rng) - &direction).norm2();
            err_hi += (&sample_direction(&direction, 100_000, &mut rng) - &direction).norm2();
        }
        assert!(
            err_hi < err_lo / 2.0,
            "100x shots only improved {err_lo:.4} -> {err_hi:.4}"
        );
    }

    #[test]
    fn zero_amplitude_coordinates_never_receive_counts() {
        // Property: a coordinate with zero probability mass can never be hit
        // by the multinomial sampler, at any seed.
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let direction = Vector::from_f64_slice(&[0.8, 0.0, -0.6, 0.0, 0.0, 0.0, 0.0, 0.0]);
            let sampled = sample_direction(&direction, 5_000, &mut rng);
            assert_eq!(sampled[1], 0.0, "seed {seed}");
            for i in 3..8 {
                assert_eq!(sampled[i], 0.0, "seed {seed}, coordinate {i}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let direction = Vector::from_f64_slice(&[0.6, -0.64, 0.48, 0.0]);
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let a = sample_direction(&direction, 10_000, &mut rng_a);
        let b = sample_direction(&direction, 10_000, &mut rng_b);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
