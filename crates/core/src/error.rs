//! The workspace-level error taxonomy.
//!
//! Every failure a hybrid solve can hit — classical factorization trouble
//! (`qls-linalg`), phase-factor or QSVT-circuit trouble (`qls-qsvt`,
//! including injected faults from `qls_sim::fault`), or a non-finite value
//! crossing a layer boundary — converges into one [`QlsError`] with a full
//! [`std::error::Error::source`] chain, so callers match on a single enum
//! and diagnostics can walk down to the root cause
//! (`QlsError → QsvtError → PhaseError`).
//!
//! Non-finite guards live at the boundaries where NaN/Inf can *enter* the
//! computation — the QSVT readout (`QsvtError::NonFiniteOutput`), the
//! residual computation and the correction update
//! ([`QlsError::NonFinite`]) — instead of letting NaN propagate into
//! comparisons, where it silently fails every `==`/`<` test and corrupts
//! control flow without a trace.

use qls_linalg::lu::LinalgError;
use qls_qsvt::QsvtError;

/// Unified error for the hybrid solver stack.
#[derive(Debug, Clone)]
pub enum QlsError {
    /// A classical linear-algebra failure (LU/Cholesky/Thomas factorization,
    /// dimension mismatch, singular pivot).
    Linalg(LinalgError),
    /// A quantum-side failure (singular matrix, phase finding, ancilla
    /// post-selection, injected fault, non-finite circuit output).
    Qsvt(QsvtError),
    /// A non-finite (NaN/Inf) value was caught crossing the named layer
    /// boundary ("residual", "readout", "correction", …).
    NonFinite {
        /// Which boundary the value was caught at.
        boundary: &'static str,
    },
}

impl std::fmt::Display for QlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QlsError::Linalg(e) => write!(f, "classical linear algebra failed: {e}"),
            QlsError::Qsvt(e) => write!(f, "quantum solve failed: {e}"),
            QlsError::NonFinite { boundary } => {
                write!(f, "non-finite value crossed the {boundary} boundary")
            }
        }
    }
}

impl std::error::Error for QlsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QlsError::Linalg(e) => Some(e),
            QlsError::Qsvt(e) => Some(e),
            QlsError::NonFinite { .. } => None,
        }
    }
}

impl From<LinalgError> for QlsError {
    fn from(e: LinalgError) -> Self {
        QlsError::Linalg(e)
    }
}

impl From<QsvtError> for QlsError {
    fn from(e: QsvtError) -> Self {
        QlsError::Qsvt(e)
    }
}

impl QlsError {
    /// True when a retry (possibly with more shots or a tighter solver) can
    /// plausibly succeed: post-selection failures, injected transients and
    /// non-finite outputs are per-run accidents; singular matrices and
    /// dimension mismatches are not.
    pub fn is_transient(&self) -> bool {
        match self {
            QlsError::Qsvt(QsvtError::PostSelectionFailed)
            | QlsError::Qsvt(QsvtError::InjectedFault { .. })
            | QlsError::Qsvt(QsvtError::NonFiniteOutput)
            | QlsError::NonFinite { .. } => true,
            QlsError::Qsvt(_) | QlsError::Linalg(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_qsvt::PhaseError;

    #[test]
    fn source_chain_reaches_the_root_cause() {
        let root = PhaseError::MixedParity;
        let err = QlsError::from(QsvtError::Phases(root));
        let qsvt = std::error::Error::source(&err).expect("QlsError -> QsvtError");
        let phase = qsvt.source().expect("QsvtError -> PhaseError");
        assert!(phase.to_string().contains("parity"), "{phase}");
        assert!(std::error::Error::source(&QlsError::NonFinite {
            boundary: "residual"
        })
        .is_none());
    }

    #[test]
    fn transience_classification() {
        assert!(QlsError::from(QsvtError::PostSelectionFailed).is_transient());
        assert!(QlsError::from(QsvtError::InjectedFault { run_index: 3 }).is_transient());
        assert!(QlsError::from(QsvtError::NonFiniteOutput).is_transient());
        assert!(QlsError::NonFinite {
            boundary: "readout"
        }
        .is_transient());
        assert!(!QlsError::from(QsvtError::SingularMatrix).is_transient());
        assert!(!QlsError::from(LinalgError::NotSquare).is_transient());
    }
}
