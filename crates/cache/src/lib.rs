//! # qls-cache
//!
//! Persistent fingerprint-keyed artifact cache: the layer that turns repeat
//! solver construction into a disk read.
//!
//! On the committed QSVT workload, `build_seconds` is ~80x `solve_seconds`:
//! phase-factor generation and circuit fusion dominate a solver's lifetime,
//! yet both are pure functions of their inputs.  This crate stores those
//! artifacts on disk, keyed by a collision-resistant content fingerprint of
//! the inputs, so every process after the first pays a read instead of a
//! quasi-Newton solve or an optimizer pass.
//!
//! ## Fingerprint scheme
//!
//! A cache key is a 128-bit [`Fingerprint`]: two independent fixed-key
//! SipHash-2-4 lanes over a typed, length-delimited encoding of the
//! artifact's *parent inputs* ([`FingerprintBuilder`]).  Per kind:
//!
//! * **QSVT phase factors** (`qsvt-phases`): the Chebyshev coefficient
//!   vector by `f64` bit pattern, plus every phase-finding option.  The
//!   coefficients already encode (κ, ε, degree), so the key identifies the
//!   mathematical problem, not the call site.
//! * **Fused circuits** (`fused-circuits`): register width, the full raw
//!   operation list (gate kind tags, angle/matrix bit patterns, targets,
//!   controls), every fusion option, and the [`machine_fingerprint`] —
//!   measured-cost fusion is timing-dependent, so entries never migrate
//!   between unlike machines; on one machine a warm hit replays the cold
//!   run's fusion decisions exactly.
//! * **Calibration tables** (`fusion-calibration`): register size and the
//!   [`machine_fingerprint`].
//!
//! ## Invalidation rules
//!
//! Entries are invalidated by *never being found*, not by deletion:
//!
//! * any input change changes the fingerprint → different file,
//! * each kind carries a format version in both the directory layout
//!   (`<kind>/v<N>/`) and the entry envelope (`"schema"`) — bumping it
//!   orphans old entries,
//! * corrupt, truncated, wrong-schema, or wrong-key files deserialize
//!   unsuccessfully and count as misses — the cache **never errors**; worst
//!   case it regenerates,
//! * writers stage to a temp file and `rename(2)` into place, so concurrent
//!   writers race benignly (last atomic rename wins; readers see a complete
//!   entry or none).
//!
//! ## Location
//!
//! [`CacheStore::open`] resolves, in order: the thread-local
//! [`with_cache_dir`] override (tests), the `QLS_CACHE_DIR` environment
//! variable (empty disables caching), then `$XDG_CACHE_HOME/qls` or
//! `$HOME/.cache/qls`.  No resolvable directory → caching silently off.
//!
//! ## Observability
//!
//! [`cache_hit_count`] / [`cache_miss_count`] are thread-local counters in
//! the house style of `qls_sim::circuit_compile_count`: read them around a
//! region to assert "warm construction never regenerates" at any layer.

mod hash;

pub use hash::{machine_fingerprint, siphash24, Fingerprint, FingerprintBuilder};

use std::cell::{Cell, RefCell};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether a constructor consults the persistent artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Consult and populate the cache (the default at the solver layers).
    #[default]
    Enabled,
    /// Never touch the cache — the escape hatch for benchmarking cold
    /// paths, bit-identity baselines, and air-gapped runs.
    Disabled,
}

impl CachePolicy {
    /// True when the policy allows cache use.
    pub fn is_enabled(self) -> bool {
        self == CachePolicy::Enabled
    }
}

thread_local! {
    static CACHE_HITS: Cell<usize> = const { Cell::new(0) };
    static CACHE_MISSES: Cell<usize> = const { Cell::new(0) };
    static CACHE_DIR_OVERRIDE: RefCell<Option<PathBuf>> = const { RefCell::new(None) };
}

/// Number of cache lookups by this thread that found a usable entry.
pub fn cache_hit_count() -> usize {
    CACHE_HITS.with(|c| c.get())
}

/// Number of cache lookups by this thread that found nothing usable
/// (absent, corrupt, stale-version, or unreadable entries all count here).
pub fn cache_miss_count() -> usize {
    CACHE_MISSES.with(|c| c.get())
}

/// Run `f` with the cache rooted at `dir` on this thread, restoring the
/// previous root afterwards (panic-safe).  The test-isolation primitive:
/// suites point each test at its own temp directory instead of racing on
/// `QLS_CACHE_DIR` with `std::env::set_var`.
pub fn with_cache_dir<R>(dir: impl Into<PathBuf>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<PathBuf>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CACHE_DIR_OVERRIDE.with(|o| *o.borrow_mut() = prev);
        }
    }
    let prev = CACHE_DIR_OVERRIDE.with(|o| o.borrow_mut().replace(dir.into()));
    let _restore = Restore(prev);
    f()
}

/// The directory [`CacheStore::open`] would use right now, if any.
pub fn resolve_cache_dir() -> Option<PathBuf> {
    if let Some(dir) = CACHE_DIR_OVERRIDE.with(|o| o.borrow().clone()) {
        return Some(dir);
    }
    if let Ok(dir) = std::env::var("QLS_CACHE_DIR") {
        if dir.is_empty() {
            return None; // explicit opt-out
        }
        return Some(PathBuf::from(dir));
    }
    if let Ok(xdg) = std::env::var("XDG_CACHE_HOME") {
        if !xdg.is_empty() {
            return Some(Path::new(&xdg).join("qls"));
        }
    }
    if let Ok(home) = std::env::var("HOME") {
        if !home.is_empty() {
            return Some(Path::new(&home).join(".cache").join("qls"));
        }
    }
    None
}

/// Monotonic suffix for staged temp files, so concurrent writers in one
/// process never collide on the staging name (cross-process uniqueness
/// comes from the pid component).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// An on-disk artifact store: `root/<kind>/v<version>/<fingerprint>.json`.
///
/// Every operation is infallible from the caller's perspective: lookups
/// return `Option`, writes return a best-effort `bool`, and no IO problem
/// ever propagates as an error — a broken cache degrades to cold builds.
#[derive(Debug, Clone)]
pub struct CacheStore {
    root: PathBuf,
}

impl CacheStore {
    /// Open the store at the currently resolved cache directory (see the
    /// crate docs for the resolution order).  `None` means caching is
    /// unavailable/opted out — callers fall through to the cold path.
    pub fn open() -> Option<CacheStore> {
        resolve_cache_dir().map(|root| CacheStore { root })
    }

    /// Open a store rooted at an explicit directory.
    pub fn at(root: impl Into<PathBuf>) -> CacheStore {
        CacheStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, kind: &str, version: u32, key: Fingerprint) -> PathBuf {
        self.root
            .join(kind)
            .join(format!("v{version}"))
            .join(format!("{}.json", key.hex()))
    }

    fn schema(kind: &str, version: u32) -> String {
        format!("qls-cache/{kind}/v{version}")
    }

    /// Look up an entry.  Absent, corrupt, wrong-schema, or wrong-key files
    /// are all misses; a usable entry deserializes into `T`.  Ticks
    /// [`cache_hit_count`] / [`cache_miss_count`].
    pub fn load<T: serde::DeserializeOwned>(
        &self,
        kind: &str,
        version: u32,
        key: Fingerprint,
    ) -> Option<T> {
        let loaded = self.load_quiet(kind, version, key);
        match loaded {
            Some(_) => CACHE_HITS.with(|c| c.set(c.get() + 1)),
            None => CACHE_MISSES.with(|c| c.set(c.get() + 1)),
        }
        loaded
    }

    /// [`CacheStore::load`] without touching the hit/miss counters.
    pub fn load_quiet<T: serde::DeserializeOwned>(
        &self,
        kind: &str,
        version: u32,
        key: Fingerprint,
    ) -> Option<T> {
        let text = fs::read_to_string(self.entry_path(kind, version, key)).ok()?;
        let value = serde::parse_json(&text).ok()?;
        match value.get("schema") {
            Some(serde::Value::Str(s)) if *s == Self::schema(kind, version) => {}
            _ => return None,
        }
        match value.get("key") {
            Some(serde::Value::Str(s)) if *s == key.hex() => {}
            _ => return None,
        }
        serde::from_value(value.get("payload")?).ok()
    }

    /// Write an entry: serialize, stage to a temp file in the final
    /// directory, `rename(2)` into place.  Returns `false` (never errors)
    /// when any step fails — the artifact is simply not cached.
    pub fn store<T: serde::Serialize + ?Sized>(
        &self,
        kind: &str,
        version: u32,
        key: Fingerprint,
        value: &T,
    ) -> bool {
        let path = self.entry_path(kind, version, key);
        let Some(dir) = path.parent() else {
            return false;
        };
        if fs::create_dir_all(dir).is_err() {
            return false;
        }
        let envelope = serde::Value::Map(vec![
            (
                "schema".to_string(),
                serde::Value::Str(Self::schema(kind, version)),
            ),
            ("key".to_string(), serde::Value::Str(key.hex())),
            ("payload".to_string(), serde::to_value(value)),
        ]);
        let text = serde::to_json_string(&ValueDoc(envelope));
        let staged = dir.join(format!(
            ".{}.{}.{}.tmp",
            key.hex(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&staged, text).is_err() {
            let _ = fs::remove_file(&staged);
            return false;
        }
        if fs::rename(&staged, &path).is_err() {
            let _ = fs::remove_file(&staged);
            return false;
        }
        true
    }
}

/// Adapter so a raw [`serde::Value`] document can go through
/// [`serde::to_json_string`] (which takes a `Serialize` type).
struct ValueDoc(serde::Value);

impl serde::Serialize for ValueDoc {
    fn serialize(&self) -> serde::Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qls-cache-unit-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Artifact {
        label: String,
        values: Vec<f64>,
    }

    fn sample() -> (Fingerprint, Artifact) {
        let art = Artifact {
            label: "phases".to_string(),
            values: vec![0.1, -2.5, std::f64::consts::PI],
        };
        let key = FingerprintBuilder::new("unit-test")
            .write_f64_slice(&art.values)
            .finish();
        (key, art)
    }

    #[test]
    fn store_then_load_roundtrips() {
        let root = temp_root("roundtrip");
        let store = CacheStore::at(&root);
        let (key, art) = sample();
        assert_eq!(store.load::<Artifact>("k", 1, key), None);
        assert!(store.store("k", 1, key, &art));
        assert_eq!(store.load::<Artifact>("k", 1, key), Some(art));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn hit_and_miss_counters_tick() {
        let root = temp_root("counters");
        let store = CacheStore::at(&root);
        let (key, art) = sample();
        let (h0, m0) = (cache_hit_count(), cache_miss_count());
        assert!(store.load::<Artifact>("k", 1, key).is_none());
        assert_eq!(cache_miss_count(), m0 + 1);
        store.store("k", 1, key, &art);
        assert!(store.load::<Artifact>("k", 1, key).is_some());
        assert_eq!(cache_hit_count(), h0 + 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_bump_is_a_miss() {
        let root = temp_root("version");
        let store = CacheStore::at(&root);
        let (key, art) = sample();
        store.store("k", 1, key, &art);
        assert_eq!(store.load::<Artifact>("k", 2, key), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_misses_not_errors() {
        let root = temp_root("corrupt");
        let store = CacheStore::at(&root);
        let (key, art) = sample();
        store.store("k", 1, key, &art);
        let path = store.entry_path("k", 1, key);
        for bad in [
            "",                                                                   // truncated to nothing
            "{\"schema\":\"qls-cache/k/v1\"", // cut mid-document
            "not json at all",                // garbage
            "{\"schema\":\"qls-cache/other/v1\",\"key\":\"x\",\"payload\":null}", // wrong schema
            "{\"schema\":\"qls-cache/k/v1\",\"key\":\"0\",\"payload\":null}", // wrong key
        ] {
            fs::write(&path, bad).unwrap();
            assert_eq!(store.load::<Artifact>("k", 1, key), None, "{bad:?}");
        }
        // A wrong-shape payload under the right envelope is also a miss.
        fs::write(
            &path,
            format!(
                "{{\"schema\":\"qls-cache/k/v1\",\"key\":\"{}\",\"payload\":{{\"label\":3}}}}",
                key.hex()
            ),
        )
        .unwrap();
        assert_eq!(store.load::<Artifact>("k", 1, key), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn with_cache_dir_overrides_and_restores() {
        let root_a = temp_root("override-a");
        let root_b = temp_root("override-b");
        let (key, art) = sample();
        with_cache_dir(&root_a, || {
            let store = CacheStore::open().unwrap();
            assert_eq!(store.root(), root_a.as_path());
            store.store("k", 1, key, &art);
            // Nested override wins, then restores.
            with_cache_dir(&root_b, || {
                let inner = CacheStore::open().unwrap();
                assert_eq!(inner.root(), root_b.as_path());
                assert_eq!(inner.load::<Artifact>("k", 1, key), None);
            });
            assert_eq!(CacheStore::open().unwrap().root(), root_a.as_path());
        });
        let _ = fs::remove_dir_all(&root_a);
        let _ = fs::remove_dir_all(&root_b);
    }

    #[test]
    fn qls_cache_dir_env_isolates_and_empty_disables() {
        // All env-var assertions live in this one test: `set_var` is
        // process-global, and every other test in this binary goes through
        // the thread-local override or an explicit root, so nothing races.
        let root = temp_root("env");
        std::env::set_var("QLS_CACHE_DIR", &root);
        assert_eq!(resolve_cache_dir().as_deref(), Some(root.as_path()));
        let (key, art) = sample();
        let store = CacheStore::open().expect("env-pointed store");
        assert_eq!(store.root(), root.as_path());
        assert!(store.store("k", 1, key, &art));
        assert!(store.entry_path("k", 1, key).starts_with(&root));
        assert_eq!(store.load::<Artifact>("k", 1, key), Some(art));
        // The thread-local override still beats the environment.
        let other = temp_root("env-override");
        with_cache_dir(&other, || {
            assert_eq!(resolve_cache_dir().as_deref(), Some(other.as_path()));
        });
        // An empty value is the documented opt-out: caching silently off.
        std::env::set_var("QLS_CACHE_DIR", "");
        assert_eq!(resolve_cache_dir(), None);
        assert!(CacheStore::open().is_none());
        std::env::remove_var("QLS_CACHE_DIR");
        let _ = fs::remove_dir_all(&root);
        let _ = fs::remove_dir_all(&other);
    }

    #[test]
    fn concurrent_writers_leave_one_complete_entry() {
        let root = temp_root("concurrent");
        let (key, _) = sample();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let root = root.clone();
                std::thread::spawn(move || {
                    let store = CacheStore::at(&root);
                    let art = Artifact {
                        label: format!("writer-{i}"),
                        values: vec![i as f64; 64],
                    };
                    for _ in 0..50 {
                        assert!(store.store("k", 1, key, &art));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let root = root.clone();
                std::thread::spawn(move || {
                    let store = CacheStore::at(&root);
                    for _ in 0..100 {
                        // Readers may miss (before the first rename) but must
                        // never observe a torn entry: a hit is a complete,
                        // self-consistent artifact from exactly one writer.
                        if let Some(a) = store.load_quiet::<Artifact>("k", 1, key) {
                            let i: f64 = a.label.strip_prefix("writer-").unwrap().parse().unwrap();
                            assert_eq!(a.values, vec![i; 64]);
                        }
                    }
                })
            })
            .collect();
        for t in threads.into_iter().chain(readers) {
            t.join().unwrap();
        }
        let _ = fs::remove_dir_all(&root);
    }
}
