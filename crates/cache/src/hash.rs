//! Stable content hashing for cache keys.
//!
//! Cache keys must be identical across processes, builds, and Rust versions,
//! so [`std::hash`] (whose `Hasher` is seeded per-process for HashMaps and
//! whose algorithm is unspecified) cannot be used.  This module hand-rolls
//! SipHash-2-4 — the classic short-input PRF — with *fixed* keys, and a
//! [`Fingerprint`] is two independent 64-bit SipHash runs over the same
//! byte stream (128 bits total), which makes accidental collisions across a
//! cache directory's lifetime negligible.

/// SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v0 = 0x736f6d6570736575u64 ^ k0;
    let mut v1 = 0x646f72616e646f6du64 ^ k1;
    let mut v2 = 0x6c7967656e657261u64 ^ k0;
    let mut v3 = 0x7465646279746573u64 ^ k1;

    macro_rules! sipround {
        () => {
            v0 = v0.wrapping_add(v1);
            v1 = v1.rotate_left(13);
            v1 ^= v0;
            v0 = v0.rotate_left(32);
            v2 = v2.wrapping_add(v3);
            v3 = v3.rotate_left(16);
            v3 ^= v2;
            v0 = v0.wrapping_add(v3);
            v3 = v3.rotate_left(21);
            v3 ^= v0;
            v2 = v2.wrapping_add(v1);
            v1 = v1.rotate_left(17);
            v1 ^= v2;
            v2 = v2.rotate_left(32);
        };
    }

    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let m = u64::from_le_bytes(chunk.try_into().unwrap());
        v3 ^= m;
        sipround!();
        sipround!();
        v0 ^= m;
    }
    // Final block: remaining bytes plus the length in the top byte.
    let rest = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, &b) in rest.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v3 ^= last;
    sipround!();
    sipround!();
    v0 ^= last;
    v2 ^= 0xff;
    sipround!();
    sipround!();
    sipround!();
    sipround!();
    v0 ^ v1 ^ v2 ^ v3
}

/// A 128-bit stable content fingerprint — the cache key type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Lower-case hex form used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

// Fixed key pairs for the two independent SipHash lanes.  Arbitrary but
// frozen: changing them invalidates every existing cache entry (by design —
// treat them as part of the entry-format version).
const LANE_A: (u64, u64) = (0x716c732d63616368, 0x652d6c616e652d41); // "qls-cach","e-lane-A"
const LANE_B: (u64, u64) = (0x716c732d63616368, 0x652d6c616e652d42); // "qls-cach","e-lane-B"

/// Incremental builder of a [`Fingerprint`] over typed inputs.
///
/// Every `write_*` method is length- or tag-delimited, so distinct input
/// *sequences* produce distinct byte streams (no concatenation ambiguity:
/// `("ab", "c")` and `("a", "bc")` hash differently).  Floats are hashed by
/// IEEE-754 bit pattern — the same discipline the bit-identity tests use —
/// so `-0.0 != 0.0` and every NaN payload is distinct.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    buf: Vec<u8>,
}

impl FingerprintBuilder {
    /// Start a fingerprint in a named domain (e.g. `"qsvt-phases"`).  The
    /// domain separates key spaces: identical payloads in different domains
    /// never collide.
    pub fn new(domain: &str) -> Self {
        let mut b = FingerprintBuilder { buf: Vec::new() };
        b.write_str(domain);
        b
    }

    /// Append raw bytes, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Append a UTF-8 string, length-prefixed.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Append a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `usize` (widened to `u64`).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Append an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Append a slice of `f64` by bit pattern, length-prefixed.
    pub fn write_f64_slice(&mut self, vs: &[f64]) -> &mut Self {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self
    }

    /// Append a slice of `usize`, length-prefixed.
    pub fn write_usize_slice(&mut self, vs: &[usize]) -> &mut Self {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.buf.extend_from_slice(&(v as u64).to_le_bytes());
        }
        self
    }

    /// Finish: two independent SipHash-2-4 lanes over the accumulated bytes.
    pub fn finish(&self) -> Fingerprint {
        let a = siphash24(LANE_A.0, LANE_A.1, &self.buf);
        let b = siphash24(LANE_B.0, LANE_B.1, &self.buf);
        Fingerprint(((a as u128) << 64) | b as u128)
    }
}

/// A 64-bit fingerprint of *this machine's performance class*, for cache
/// entries whose content depends on local timing (measured fusion-cost
/// calibration tables, and the fused circuits chosen under them).  Coarse on
/// purpose: architecture, OS, and SIMD capability — enough that an artifact
/// cache copied between unlike machines misses instead of importing another
/// machine's timing decisions, while rebuilds on the same machine hit.
pub fn machine_fingerprint() -> u64 {
    let mut b = FingerprintBuilder::new("machine");
    b.write_str(std::env::consts::ARCH);
    b.write_str(std::env::consts::OS);
    #[cfg(target_arch = "x86_64")]
    b.write_u64(u64::from(std::arch::is_x86_feature_detected!("avx2")));
    #[cfg(not(target_arch = "x86_64"))]
    b.write_u64(2);
    b.finish().0 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siphash24_matches_reference_vectors() {
        // The reference test vector from the SipHash paper: key
        // 000102…0f, messages 00, 0001, 000102, … — spot-check a few.
        let k0 = 0x0706050403020100u64;
        let k1 = 0x0f0e0d0c0b0a0908u64;
        let msg: Vec<u8> = (0u8..15).collect();
        let expected: [(usize, u64); 4] = [
            (0, 0x726fdb47dd0e0e31),
            (1, 0x74f839c593dc67fd),
            (8, 0x93f5f5799a932462),
            (15, 0xa129ca6149be45e5),
        ];
        for (len, want) in expected {
            assert_eq!(siphash24(k0, k1, &msg[..len]), want, "len {len}");
        }
    }

    #[test]
    fn fingerprints_are_stable_and_input_sensitive() {
        let fp = |f: &dyn Fn(&mut FingerprintBuilder)| {
            let mut b = FingerprintBuilder::new("test");
            f(&mut b);
            b.finish()
        };
        let base = fp(&|b| {
            b.write_f64_slice(&[1.0, 2.0]);
        });
        // Deterministic across calls.
        assert_eq!(
            base,
            fp(&|b| {
                b.write_f64_slice(&[1.0, 2.0]);
            })
        );
        // Sensitive to values, length splits, and domains.
        assert_ne!(
            base,
            fp(&|b| {
                b.write_f64_slice(&[1.0, f64::from_bits(2.0f64.to_bits() + 1)]);
            })
        );
        assert_ne!(
            base,
            fp(&|b| {
                b.write_f64_slice(&[1.0]);
                b.write_f64_slice(&[2.0]);
            })
        );
        assert_ne!(base, FingerprintBuilder::new("other").finish());
        // -0.0 and 0.0 are distinct inputs (bit-pattern hashing).
        assert_ne!(
            fp(&|b| {
                b.write_f64(0.0);
            }),
            fp(&|b| {
                b.write_f64(-0.0);
            })
        );
    }

    #[test]
    fn machine_fingerprint_is_stable_within_a_process() {
        assert_eq!(machine_fingerprint(), machine_fingerprint());
    }
}
