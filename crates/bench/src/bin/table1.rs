//! Table I — quantum cost of the QSVT solver with and without mixed-precision
//! iterative refinement.
//!
//! The paper's Table I is symbolic; this binary evaluates both columns of the
//! table over a grid of (κ, ε, ε_l) settings, printing the number of solves,
//! the per-solve QSVT cost (in block-encoding calls), the sample counts and
//! the resulting totals, plus the refined-over-direct speedup.

use qls_bench::format_table;
use qls_core::{quantum_cost_comparison, CostParameters};

fn main() {
    println!("Table I — quantum cost for QSVT-based linear-system solution");
    println!("(block-encoding cost B = 1, so C_QSVT is reported in block-encoding calls)\n");

    let settings = [
        (2.0, 1e-6, 0.4),
        (2.0, 1e-10, 0.4),
        (10.0, 1e-8, 1e-2),
        (10.0, 1e-11, 1e-2),
        (100.0, 1e-8, 1e-3),
        (100.0, 1e-11, 1e-3),
        (1000.0, 1e-10, 1e-4),
    ];

    let mut rows = Vec::new();
    for &(kappa, epsilon, epsilon_l) in &settings {
        let cmp = quantum_cost_comparison(CostParameters {
            kappa,
            epsilon,
            epsilon_l,
            block_encoding_cost: 1.0,
        });
        rows.push(vec![
            format!("{kappa:.0}"),
            format!("{epsilon:.0e}"),
            format!("{epsilon_l:.0e}"),
            format!("{:.0}", cmp.qsvt_only.solves),
            format!("{:.2e}", cmp.qsvt_only.qsvt_cost),
            format!("{:.2e}", cmp.qsvt_only.samples),
            format!("{:.2e}", cmp.qsvt_only.total),
            format!("{:.0}", cmp.qsvt_with_refinement.solves),
            format!("{:.2e}", cmp.qsvt_with_refinement.qsvt_cost),
            format!("{:.2e}", cmp.qsvt_with_refinement.samples),
            format!("{:.2e}", cmp.qsvt_with_refinement.total),
            format!("{:.2e}", cmp.speedup),
        ]);
    }

    let table = format_table(
        &[
            "kappa",
            "eps",
            "eps_l",
            "solves(direct)",
            "C_QSVT(direct)",
            "samples(direct)",
            "total(direct)",
            "solves(IR)",
            "C_QSVT(IR)",
            "samples(IR)",
            "total(IR)",
            "speedup",
        ],
        &rows,
    );
    println!("{table}");
    println!("Reading: \"direct\" = single QSVT solve at accuracy eps (left column of Table I);");
    println!("\"IR\" = QSVT at accuracy eps_l + iterative refinement (right column).");
    println!("The speedup column is total(direct)/total(IR); values >> 1 reproduce the paper's");
    println!("claim that refinement reduces the quantum cost whenever eps << eps_l < 1/kappa.");
}
