//! Fig. 5 — quantum complexity (calls to the block-encoding) of the QSVT
//! solver with and without mixed-precision iterative refinement, κ = 2.
//!
//! As in the paper: the "QSVT only" curve is obtained from the analytic cost
//! model (running a high-precision QSVT directly would be intractable on
//! hardware and pointless in simulation), while the "QSVT with iterative
//! refinement" curve is *measured* by running Algorithm 2 with ε_l ≈ 1/κ and
//! counting the block-encoding calls actually performed.  The two curves must
//! coincide at ε = ε_l and separate as ε decreases.

use qls_bench::{experiment_rng, format_table, paper_test_system};
use qls_core::{qsvt_degree_model, HybridRefinementOptions, HybridRefiner, HybridStatus};

fn main() {
    let kappa = 2.0;
    let epsilon_l = 0.4; // ≈ 1/kappa, as in the paper
    let (a, b) = paper_test_system(16, kappa, 42);

    println!(
        "Fig. 5 — block-encoding calls vs target accuracy, kappa = {kappa}, eps_l = {epsilon_l}\n"
    );

    let epsilons: [f64; 13] = [
        0.4, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12,
    ];
    let mut rows = Vec::new();
    for &epsilon in &epsilons {
        // Analytic "QSVT only" cost: one solve at accuracy eps (polynomial
        // degree = block-encoding calls), extrapolated exactly as in the paper.
        let direct_calls = qsvt_degree_model(kappa, epsilon.min(0.49));

        // Measured "QSVT + IR" cost: run Algorithm 2 and count the calls.
        let options = HybridRefinementOptions {
            target_epsilon: epsilon,
            epsilon_l,
            max_iterations: 200,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).expect("refiner");
        let mut rng = experiment_rng(5);
        let (_, history) = refiner.solve(&b, &mut rng).expect("solve");
        assert_eq!(history.status, HybridStatus::Converged, "eps = {epsilon}");
        let refined_calls = history.total_block_encoding_calls();

        rows.push(vec![
            format!("{epsilon:.0e}"),
            format!("{:.0}", direct_calls),
            format!("{refined_calls}"),
            format!("{}", history.steps.len()),
            format!("{:.2}", direct_calls / refined_calls as f64),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "target eps",
                "BE calls (QSVT only, analytic)",
                "BE calls (QSVT + IR, measured)",
                "solves (IR)",
                "ratio direct/IR"
            ],
            &rows
        )
    );
    println!("Expected shape (paper Fig. 5): the two columns coincide at eps = eps_l and the");
    println!("'QSVT only' column grows with log(1/eps) while the refined solver pays the same");
    println!("small per-solve degree once per iteration; the advantage grows further when the");
    println!("O(1/eps^2) vs O(1/eps_l^2) sampling overhead is folded in (Table I).");
}
