//! Fig. 3 — scaled residual per refinement iteration for κ = 10,
//! target ε = 1e-11 and several values of ε_l.
//!
//! Reproduces the paper's Fig. 3 setting: a random 16×16 matrix with condition
//! number 10, ‖b‖ = 1, target accuracy 1e-11, and three QSVT accuracies ε_l.
//! For every run the per-iteration scaled residual is printed next to the
//! Theorem III.1 prediction `(ε_l κ)^{i+1}`, and the measured iteration count
//! is compared with the bound `⌈log ε / log(ε_l κ)⌉`.

use qls_bench::{ascii_semilog_plot, experiment_rng, format_table, paper_test_system};
use qls_core::{HybridRefinementOptions, HybridRefiner, HybridStatus};

fn main() {
    let kappa = 10.0;
    let epsilon = 1e-11;
    let epsilon_l_values = [1e-2, 1e-3, 1e-4];
    let (a, b) = paper_test_system(16, kappa, 42);

    println!("Fig. 3 — scaled residual until convergence (N = 16, kappa = {kappa}, eps = {epsilon:.0e})\n");

    let mut series = Vec::new();
    for &epsilon_l in &epsilon_l_values {
        let options = HybridRefinementOptions {
            target_epsilon: epsilon,
            epsilon_l,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).expect("refiner");
        let mut rng = experiment_rng(7);
        let (_, history) = refiner.solve(&b, &mut rng).expect("solve");
        assert_eq!(
            history.status,
            HybridStatus::Converged,
            "eps_l = {epsilon_l}"
        );

        println!(
            "eps_l = {epsilon_l:.0e}  (contraction factor eps_l*kappa = {:.0e})",
            epsilon_l * kappa
        );
        let rows: Vec<Vec<String>> = history
            .steps
            .iter()
            .map(|s| {
                vec![
                    format!("{}", s.iteration),
                    format!("{:.3e}", s.scaled_residual),
                    format!("{:.3e}", s.theoretical_bound),
                    format!("{}", s.cost.block_encoding_calls),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(
                &[
                    "iteration",
                    "scaled residual",
                    "Thm III.1 bound",
                    "BE calls"
                ],
                &rows
            )
        );
        println!(
            "iterations: {} (Theorem III.1 bound: {}), final residual {:.3e}\n",
            history.iterations(),
            history
                .iteration_bound()
                .map(|b| b.to_string())
                .unwrap_or_else(|| "n/a".to_string()),
            history.final_residual()
        );
        series.push((
            format!("eps_l = {epsilon_l:.0e}"),
            history
                .steps
                .iter()
                .map(|s| s.scaled_residual)
                .collect::<Vec<_>>(),
        ));
    }

    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(name, values)| (name.as_str(), values.clone()))
        .collect();
    println!("semilog convergence plot (x: iteration, y: scaled residual):");
    println!("{}", ascii_semilog_plot(&named, 16));
    println!("Expected shape (paper Fig. 3): straight lines on the semilog scale — geometric");
    println!("contraction by ~eps_l*kappa per iteration — with smaller eps_l giving steeper");
    println!("lines and fewer iterations, and every run meeting eps = 1e-11 within the bound.");
}
