//! Table II — complexity breakdown for solving the 1-D Poisson equation with
//! the mixed-precision QSVT solver.
//!
//! Prints, for the first solve and for one refinement iteration, the classical
//! flop count and the quantum T-gate estimate of every sub-task (state
//! preparation, block-encoding, QSVT, solution recovery), evaluated with the
//! analytic tridiagonal block-encoding costs (paper Ref. [37]) and the Eq.-(4)
//! polynomial degree.  Also cross-checks the analytic block-encoding model
//! against the concrete circuit constructed in `qls-encoding`.

use qls_bench::format_table;
use qls_core::{poisson_cost_breakdown, PoissonCostParameters};
use qls_encoding::{BlockEncoding, TridiagBlockEncoding};
use qls_linalg::poisson_1d_condition_number;

fn main() {
    let n_qubits = 4; // N = 16 grid points, the paper's experimental size
    let kappa = poisson_1d_condition_number(1 << n_qubits);
    let params = PoissonCostParameters {
        n_qubits,
        kappa,
        epsilon_l: 1e-2,
        epsilon: 1e-11,
    };

    println!(
        "Table II — complexity for solving the Poisson equation (N = 2^{n_qubits} = {})",
        1 << n_qubits
    );
    println!(
        "kappa(Poisson, N={}) = {:.2}, eps_l = {:.0e}, eps = {:.0e}\n",
        1 << n_qubits,
        kappa,
        params.epsilon_l,
        params.epsilon
    );

    let rows: Vec<Vec<String>> = poisson_cost_breakdown(params)
        .iter()
        .map(|r| {
            vec![
                r.phase.to_string(),
                r.task.to_string(),
                if r.classical_flops > 0.0 {
                    format!("{:.2e}", r.classical_flops)
                } else {
                    "-".to_string()
                },
                if r.quantum_t_gates > 0.0 {
                    format!("{:.2e}", r.quantum_t_gates)
                } else {
                    "-".to_string()
                },
                r.paper_scaling.to_string(),
            ]
        })
        .collect();
    let table = format_table(
        &[
            "phase",
            "task",
            "classical (flops)",
            "quantum (T gates)",
            "paper scaling",
        ],
        &rows,
    );
    println!("{table}");

    // Cross-check: the concrete block-encoding circuit we can actually simulate.
    let be = TridiagBlockEncoding::new(3);
    let analytic = be.analytic_resources();
    println!("\nBlock-encoding realisations for n = 3 (N = 8):");
    println!(
        "  analytic (Ref. [37] model): {} primitive gates, depth {}, {} T gates, {} ancillas",
        analytic.primitive_gates, analytic.depth, analytic.t_count, analytic.ancilla_qubits
    );
    println!(
        "  simulated (LCU construction): {} gates, {} ancillas, alpha = {:.3}",
        be.circuit().gate_count(),
        be.num_ancilla_qubits(),
        be.alpha()
    );
    // Simulation-side cost of the same circuit: what the optimizer pass of
    // `qls_sim::fuse` does to the op count and per-application sweep work.
    let fusion = qls_sim::fusion_stats(be.circuit());
    println!(
        "  simulator fusion: {} raw -> {} fused ops ({:.1}x), \
         sweep work {} -> {} multiplies ({:.1}x)",
        fusion.raw_ops,
        fusion.fused_ops,
        fusion.op_reduction(),
        fusion.raw_sweep_work,
        fusion.fused_sweep_work,
        fusion.work_reduction()
    );
    println!("\nThe per-iteration rows show that only state preparation and the solution");
    println!("recovery touch the CPU once the block-encoding and the phases have been");
    println!("compiled and transferred (they are reused across iterations).");
}
