//! `bench_json` — the machine-readable perf-trajectory benchmark.
//!
//! Times representative simulator workloads and writes `BENCH_simulator.json`
//! so every future PR can compare against the recorded numbers:
//!
//! 1. a random mixed-gate circuit on 16 qubits (the simulator hot path),
//!    measured through the specialized kernel dispatch *and* through the
//!    retained generic reference path of `qls_sim::kernels::reference`, both
//!    pinned to one thread — their ratio is the kernel speedup — plus the
//!    kernel path at the machine's full thread count for the parallel scaling
//!    factor;
//! 2. a full gate-level QSVT solve on the paper's 4-qubit (N = 16) test
//!    system (Section IV experimental setup), through the **fused**
//!    compile-once engine (the default `OptLevel::Fuse`), the unoptimized
//!    compile-once engine (`OptLevel::None`) *and* the retained uncached
//!    per-call path — their ratios are the gate-fusion and compile-once
//!    speedups, and the `fusion_op_reduction` stat records how far the
//!    optimizer shrinks the degree-d QSVT circuit; the build is measured
//!    twice through the artifact cache (`qls_cache`) — cold (fresh cache
//!    directory, includes the store writes) and warm (pre-populated
//!    directory) — with `warm_vs_cold_build_speedup` recording the payoff
//!    and `build_phase_generations_warm` / `build_fusion_passes_warm`
//!    asserting (at 0) that the warm build regenerates nothing;
//! 3. dense-unitary extraction (`circuit_unitary`), the verification hot
//!    loop;
//! 4. an end-to-end hybrid refinement solve (Algorithm 2, circuit mode):
//!    fused vs unfused compile-once vs the recompile-per-iteration baseline,
//!    plus the circuit-compile counts (from the thread-local
//!    `qls_sim::circuit_compile_count`);
//! 5. the multi-RHS workload: one refiner, many right-hand sides — batched
//!    (`HybridRefiner::solve_many`) vs a sequential loop of `solve`;
//! 6. the structured-operator residual workload (`sparse_residual`): the
//!    refinement-loop hot path `r = b − A x` on the 2-D Poisson problem
//!    through the dense matrix, the CSR operator and the matrix-free stencil
//!    — the O(N²) vs O(nnz) comparison of the operator layer, at N = 4096
//!    and N = 16384 on the full preset;
//! 7. the structured-inner-solve workloads: the classical refiner through the
//!    inner solver selected by `FactorizableOperator::factorize` — Thomas vs
//!    the retained densify-LU oracle on 1-D Poisson (N = 16384 on the full
//!    preset, with a solution-agreement guard), matrix-free Jacobi-CG on 3-D
//!    Poisson (`StencilNd`), Jacobi-BiCGSTAB on nonsymmetric
//!    convection-diffusion, and Jacobi-CG on a shifted graph Laplacian at
//!    N ~ 10^5;
//! 8. the fault-injected recovery workload (`noisy_refinement_recovery`):
//!    the hybrid refiner under a seeded `FaultPlan` (amplitude noise + one
//!    scheduled transient) with the full `RecoveryPolicy` ladder armed, vs
//!    the same solve clean — the measured overhead of self-healing, plus
//!    the recovery-event count and final status;
//! 9. the Fig. 4 large-κ workload (`fig4_large_kappa`): the hybrid solve at
//!    κ = 100/200/300 with ε_l·κ = 1/4 (emulation path) — condition number,
//!    polynomial degree, iteration count and solve seconds per κ;
//! 10. the sharded-execution workload (`sharded_vs_flat`): the random
//!     mixed-gate circuit through the sharded register engine
//!     (`qls_sim::shard`, 4 shards) vs the flat engine, with the
//!     deterministic static-model execution plan (shard-local/exchanged/flat
//!     op counts, exchange rounds, per-shard bytes) and the QSVT circuit's
//!     exchange rounds with and without the low-support fusion preference —
//!     the binary asserts the preference retires at least one round.
//!
//! Kernel-bound workloads additionally report `simd_vs_scalar_speedup` —
//! the vectorized kernel bodies against their bit-identical scalar oracles
//! (`with_scalar_kernels` for the statevector, `matvec_scalar` for CSR),
//! pinned to one thread — and the random-circuit workload records the
//! static vs micro-calibrated fused op counts (`calibrated_fusion_ops`).
//! Parallel workloads carry `machine_threads` and a
//! `parallel_speedup_meaningful` flag (false on 1-thread machines, where
//! the ~1.0 ratios would otherwise read as regressions).
//!
//! Usage: `bench_json [--preset small|full] [--out PATH] [--compare BASELINE]`.
//! The `small` preset shrinks every workload so CI can validate the artifact
//! in seconds; the committed `BENCH_simulator.json` comes from the `full`
//! preset.  `--compare` turns the run into a perf-regression gate: after
//! emitting the artifact it checks the fresh numbers against the committed
//! baseline — generous fractional floors on the timing *ratios* (which
//! survive preset and machine changes where absolute seconds do not) and
//! exact ceilings on the deterministic counters (circuit compiles in the
//! refinement loop, sharded exchange rounds, warm-build regenerations) — and
//! exits nonzero listing every violated floor.

use qls_bench::{experiment_rng, layered_circuit, paper_test_system, random_circuit};
use qls_cache::with_cache_dir;
use qls_core::HybridStatus;
use qls_core::{HybridRefinementOptions, HybridRefiner, QsvtSolverOptions};
use qls_linalg::{
    convection_diffusion_2d, poisson_1d, poisson_2d, poisson_3d, random_connected_graph,
    shifted_graph_laplacian, ClassicalRefiner, RefinementOptions, SparseMatrix, StencilNd,
    TridiagonalMatrix, Vector,
};
use qls_qsvt::{phase_generation_count, QsvtInverter, QsvtMode};
use qls_sim::kernels::reference;
use qls_sim::{
    calibration_count, circuit_compile_count, circuit_unitary, fusion_pass_count, optimize_circuit,
    optimize_circuit_for, sharding_stats, with_scalar_kernels, ExecMode, FusionOptions, OptLevel,
    QuantumExecutor, ShardedCircuit, StateVector,
};
use rayon::ThreadPoolBuilder;
use serde::{parse_json, Value};
use std::fmt::Write as _;
use std::time::Instant;

struct Preset {
    name: &'static str,
    random_qubits: usize,
    random_ops: usize,
    random_reps: usize,
    generic_reps: usize,
    qsvt_n: usize,
    qsvt_kappa: f64,
    qsvt_eps: f64,
    unitary_qubits: usize,
    unitary_layers: usize,
    refine_reps: usize,
    refine_target: f64,
    multi_rhs: usize,
    /// Square 2-D Poisson grid sides for the structured-residual workload
    /// (N = side²).
    sparse_grids: [usize; 2],
    /// 1-D Poisson order for the structured-inner-solve workload (Thomas vs
    /// densify-LU inside the classical refiner).
    inner_tridiag_n: usize,
    /// Cubic 3-D Poisson grid side for the matrix-free CG refinement
    /// workload (N = side³).
    poisson3d_grid: usize,
    /// Square convection-diffusion grid side for the BiCGSTAB refinement
    /// workload (N = side²).
    convdiff_grid: usize,
    /// Vertex count of the shifted-graph-Laplacian refinement workload.
    graph_n: usize,
    /// Extra random edges on top of the spanning tree of the graph workload.
    graph_extra_edges: usize,
    /// Condition numbers of the Fig. 4 large-κ hybrid solves (emulation
    /// path, ε_l tied to κ by ε_l·κ = 1/4 as in the paper).
    fig4_kappas: &'static [f64],
    /// Outer convergence target of the Fig. 4 workload.
    fig4_eps: f64,
}

const FULL: Preset = Preset {
    name: "full",
    random_qubits: 16,
    random_ops: 120,
    // Interleaved min-of-N: enough rounds that both sides catch a quiet
    // window of this (shared) machine.
    random_reps: 15,
    generic_reps: 3,
    qsvt_n: 16,
    qsvt_kappa: 8.0,
    qsvt_eps: 0.05,
    unitary_qubits: 8,
    unitary_layers: 5,
    refine_reps: 3,
    refine_target: 1e-10,
    multi_rhs: 8,
    sparse_grids: [64, 128], // N = 4096 and N = 16384
    inner_tridiag_n: 16384,
    poisson3d_grid: 24, // N = 13824
    convdiff_grid: 64,  // N = 4096
    graph_n: 100_000,
    graph_extra_edges: 300_000,
    fig4_kappas: &[100.0, 200.0, 300.0],
    fig4_eps: 1e-11,
};

const SMALL: Preset = Preset {
    name: "small",
    random_qubits: 10,
    random_ops: 40,
    random_reps: 3,
    generic_reps: 2,
    qsvt_n: 4,
    qsvt_kappa: 2.0,
    qsvt_eps: 0.05,
    unitary_qubits: 5,
    unitary_layers: 3,
    refine_reps: 2,
    refine_target: 1e-6,
    multi_rhs: 3,
    sparse_grids: [16, 32], // N = 256 and N = 1024: seconds, not minutes, in CI
    inner_tridiag_n: 1024,
    poisson3d_grid: 8, // N = 512
    convdiff_grid: 16, // N = 256
    graph_n: 2000,
    graph_extra_edges: 6000,
    fig4_kappas: &[25.0],
    fig4_eps: 1e-8,
};

/// Minimum over `reps` timed runs of `f`, in seconds.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Minimum over `reps` *interleaved* timed runs of `f` and `g`: each round
/// times one call of each, so slow drifts of the machine (frequency
/// scaling, a noisy co-tenant) hit both sides equally and their *ratio*
/// stays meaningful.  One untimed warmup of each absorbs cold-start
/// effects (first-touch page faults, instruction-cache misses) that would
/// otherwise bias against whichever side runs first.
fn time_min_pair(reps: usize, mut f: impl FnMut(), mut g: impl FnMut()) -> (f64, f64) {
    f();
    g();
    let (mut best_f, mut best_g) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best_f = best_f.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        g();
        best_g = best_g.min(start.elapsed().as_secs_f64());
    }
    (best_f, best_g)
}

fn single_thread_pool() -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
}

fn main() {
    let mut preset = FULL;
    let mut out_path = String::from("BENCH_simulator.json");
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                let v = args.next().expect("--preset needs a value");
                preset = match v.as_str() {
                    "full" => FULL,
                    "small" => SMALL,
                    other => panic!("unknown preset {other:?} (use small|full)"),
                };
            }
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--compare" => compare_path = Some(args.next().expect("--compare needs a value")),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let machine_threads = rayon::current_num_threads();
    // On a 1-thread machine the parallel-vs-sequential ratios measure
    // nothing but noise (~1.0); the JSON carries this flag per parallel
    // workload so a trajectory reader never mistakes them for regressions.
    let parallel_meaningful = machine_threads > 1;
    eprintln!(
        "bench_json: preset = {}, machine threads = {machine_threads}{}",
        preset.name,
        if parallel_meaningful {
            ""
        } else {
            " (parallel speedups not meaningful at 1 thread)"
        }
    );

    // -- Workload 1: random mixed-gate circuit (the hot path) ---------------
    let circ = random_circuit(preset.random_qubits, preset.random_ops, 20260728);
    let n = preset.random_qubits;
    let (kernel_1t, scalar_1t) = single_thread_pool().install(|| {
        time_min_pair(
            preset.random_reps,
            || {
                std::hint::black_box(StateVector::run(&circ));
            },
            || {
                with_scalar_kernels(|| {
                    std::hint::black_box(StateVector::run(&circ));
                })
            },
        )
    });
    let generic_1t = single_thread_pool().install(|| {
        time_min(preset.generic_reps, || {
            let mut sv = StateVector::zero_state(n);
            reference::apply_circuit(&mut sv, &circ);
            std::hint::black_box(sv.probability(0));
        })
    });
    let kernel_nt = time_min(preset.random_reps, || {
        std::hint::black_box(StateVector::run(&circ));
    });
    let kernel_speedup = generic_1t / kernel_1t;
    let simd_speedup = scalar_1t / kernel_1t;
    let parallel_speedup = kernel_1t / kernel_nt;
    // Static vs micro-calibrated fusion pricing on the same circuit; the
    // calibration-cache counter shows the measured model timed its kernel
    // classes at most once per register size.
    let static_fusion_ops = optimize_circuit(&circ, &FusionOptions::default()).len();
    let calibrated_fusion_ops = optimize_circuit(&circ, &FusionOptions::measured()).len();
    let fusion_calibrations = calibration_count();
    eprintln!(
        "  random_{n}q: kernel {kernel_1t:.4}s, scalar {scalar_1t:.4}s \
         ({simd_speedup:.2}x simd), generic {generic_1t:.4}s \
         ({kernel_speedup:.1}x), {machine_threads}-thread {kernel_nt:.4}s \
         ({parallel_speedup:.2}x scaling); fusion {static_fusion_ops} static \
         -> {calibrated_fusion_ops} calibrated ops ({fusion_calibrations} calibrations)"
    );

    // -- Workload 2: QSVT solve on the paper's test system ------------------
    // Three engines: fused compile-once (the default), unoptimized
    // compile-once (`OptLevel::None`), and the retained uncached per-call
    // oracle.  `solve_seconds` keeps its historical meaning (unoptimized
    // compile-once) so the perf trajectory stays comparable across PRs.
    //
    // The build is timed through the artifact cache, hermetically (a bench
    // temp directory, so the run never reads or pollutes the user's
    // `~/.cache/qls`): `build_seconds` keeps its historical from-scratch
    // meaning — each rep sees a fresh empty directory (and now also pays the
    // store writes) — while `build_seconds_warm` rebuilds against a
    // pre-populated directory, where phase factors and the fused circuit are
    // disk reads.  The thread-local generation counters pin the warm path to
    // exactly zero phase-factor generations and zero fusion passes.
    let (a, b) = paper_test_system(preset.qsvt_n, preset.qsvt_kappa, 1);
    let bench_cache_root =
        std::env::temp_dir().join(format!("qls-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bench_cache_root);
    let mut cold_rep = 0usize;
    let qsvt_build = time_min(3, || {
        cold_rep += 1;
        let dir = bench_cache_root.join(format!("cold-{cold_rep}"));
        with_cache_dir(dir, || {
            std::hint::black_box(
                QsvtInverter::new(&a, preset.qsvt_eps, QsvtMode::CircuitReal)
                    .expect("QSVT inverter construction"),
            );
        });
    });
    let warm_dir = bench_cache_root.join("warm");
    let (inverter, unfused_inverter, qsvt_build_warm, warm_phase_gens, warm_fusion_passes) =
        with_cache_dir(warm_dir, || {
            // Populate the directory, keeping this (cache-built) engine for
            // the solve measurements below.
            let inverter = QsvtInverter::new(&a, preset.qsvt_eps, QsvtMode::CircuitReal)
                .expect("QSVT inverter construction");
            let (p0, f0) = (phase_generation_count(), fusion_pass_count());
            let warm = time_min(3, || {
                std::hint::black_box(
                    QsvtInverter::new(&a, preset.qsvt_eps, QsvtMode::CircuitReal)
                        .expect("warm QSVT inverter construction"),
                );
            });
            let unfused_inverter = QsvtInverter::with_opt_level(
                &a,
                preset.qsvt_eps,
                QsvtMode::CircuitReal,
                OptLevel::None,
            )
            .expect("unfused QSVT inverter construction");
            (
                inverter,
                unfused_inverter,
                warm,
                phase_generation_count() - p0,
                fusion_pass_count() - f0,
            )
        });
    let warm_build_speedup = qsvt_build / qsvt_build_warm;
    assert_eq!(
        warm_phase_gens, 0,
        "warm build must not regenerate phase factors"
    );
    assert_eq!(
        warm_fusion_passes, 0,
        "warm build must not rerun the fusion pass"
    );
    let degree = inverter.resources().degree;
    let fusion = *inverter.circuit_stats().expect("fusion stats");
    let qsvt_solve_fused = time_min(3, || {
        std::hint::black_box(inverter.solve_direction(&b).expect("fused QSVT solve"));
    });
    let qsvt_solve = time_min(3, || {
        std::hint::black_box(
            unfused_inverter
                .solve_direction(&b)
                .expect("unfused QSVT solve"),
        );
    });
    let qsvt_solve_uncached = time_min(3, || {
        std::hint::black_box(
            inverter
                .solve_direction_uncached(&b)
                .expect("uncached QSVT solve"),
        );
    });
    let qsvt_solve_speedup = qsvt_solve_uncached / qsvt_solve;
    let qsvt_fused_speedup = qsvt_solve / qsvt_solve_fused;
    // SIMD vs scalar kernel bodies on the same fused engine, pinned to one
    // thread so the ratio is pure kernel-body arithmetic.
    let (qsvt_simd_1t, qsvt_scalar_1t) = single_thread_pool().install(|| {
        time_min_pair(
            3,
            || {
                std::hint::black_box(inverter.solve_direction(&b).expect("simd QSVT solve"));
            },
            || {
                with_scalar_kernels(|| {
                    std::hint::black_box(inverter.solve_direction(&b).expect("scalar QSVT solve"));
                })
            },
        )
    });
    let qsvt_simd_speedup = qsvt_scalar_1t / qsvt_simd_1t;
    eprintln!(
        "  qsvt_solve n={} kappa={} eps={:.0e}: degree {degree}, build cold {qsvt_build:.4}s \
         vs warm {qsvt_build_warm:.4}s ({warm_build_speedup:.1}x, {warm_phase_gens} phase \
         generations / {warm_fusion_passes} fusion passes warm), \
         fused solve {qsvt_solve_fused:.4}s, unfused {qsvt_solve:.4}s \
         ({qsvt_fused_speedup:.1}x fusion), uncached {qsvt_solve_uncached:.4}s \
         ({qsvt_solve_speedup:.1}x compile-once), simd {qsvt_simd_1t:.4}s vs \
         scalar {qsvt_scalar_1t:.4}s ({qsvt_simd_speedup:.2}x); \
         fusion {} -> {} ops ({:.1}x)",
        preset.qsvt_n,
        preset.qsvt_kappa,
        preset.qsvt_eps,
        fusion.raw_ops,
        fusion.fused_ops,
        fusion.op_reduction()
    );

    // -- Workload 3: dense-unitary extraction -------------------------------
    let ucirc = layered_circuit(preset.unitary_qubits, preset.unitary_layers);
    let unitary_secs = time_min(2, || {
        std::hint::black_box(circuit_unitary(&ucirc));
    });
    eprintln!(
        "  circuit_unitary {}q x {} layers: {unitary_secs:.4}s",
        preset.unitary_qubits, preset.unitary_layers
    );

    // -- Workload 4: end-to-end hybrid refinement (Algorithm 2) -------------
    // Fused compile-once (the default: optimized QSVT circuit compiled in
    // `new`, reused by every iteration) vs the unoptimized compile-once
    // engine vs the retained recompile-per-iteration baseline.  All refiners
    // are built outside the timed region: the comparison isolates what the
    // solve itself pays.  `compile_once_seconds` keeps its historical
    // meaning (unoptimized compile-once).
    let refine_options = |opt_level: OptLevel, recompile_baseline: bool| HybridRefinementOptions {
        target_epsilon: preset.refine_target,
        epsilon_l: preset.qsvt_eps,
        solver: QsvtSolverOptions {
            mode: QsvtMode::CircuitReal,
            opt_level,
            recompile_baseline,
            ..Default::default()
        },
        ..Default::default()
    };
    let fused_refiner =
        HybridRefiner::new(&a, refine_options(OptLevel::Fuse, false)).expect("fused refiner");
    let compile_once_refiner = HybridRefiner::new(&a, refine_options(OptLevel::None, false))
        .expect("compile-once refiner");
    let recompile_refiner =
        HybridRefiner::new(&a, refine_options(OptLevel::None, true)).expect("recompile refiner");
    let mut rng = experiment_rng(2);
    let (_, history) = fused_refiner.solve(&b, &mut rng).expect("refinement solve");
    let refine_iterations = history.iterations();
    let compiles_before = circuit_compile_count();
    let _ = fused_refiner.solve(&b, &mut rng).expect("solve");
    let compile_once_compiles = circuit_compile_count() - compiles_before;
    let compiles_before = circuit_compile_count();
    let _ = recompile_refiner.solve(&b, &mut rng).expect("solve");
    let recompile_compiles = circuit_compile_count() - compiles_before;
    let refine_fused = time_min(preset.refine_reps, || {
        let mut rng = experiment_rng(3);
        std::hint::black_box(fused_refiner.solve(&b, &mut rng).expect("solve"));
    });
    let refine_compile_once = time_min(preset.refine_reps, || {
        let mut rng = experiment_rng(3);
        std::hint::black_box(compile_once_refiner.solve(&b, &mut rng).expect("solve"));
    });
    let refine_recompile = time_min(preset.refine_reps, || {
        let mut rng = experiment_rng(3);
        std::hint::black_box(recompile_refiner.solve(&b, &mut rng).expect("solve"));
    });
    let refine_speedup = refine_recompile / refine_compile_once;
    let refine_fused_speedup = refine_compile_once / refine_fused;
    let (refine_simd_1t, refine_scalar_1t) = single_thread_pool().install(|| {
        time_min_pair(
            preset.refine_reps,
            || {
                let mut rng = experiment_rng(3);
                std::hint::black_box(fused_refiner.solve(&b, &mut rng).expect("solve"));
            },
            || {
                with_scalar_kernels(|| {
                    let mut rng = experiment_rng(3);
                    std::hint::black_box(fused_refiner.solve(&b, &mut rng).expect("solve"));
                })
            },
        )
    });
    let refine_simd_speedup = refine_scalar_1t / refine_simd_1t;
    eprintln!(
        "  hybrid_refinement n={} kappa={} eps_l={:.0e} target={:.0e}: \
         {refine_iterations} iterations, fused {refine_fused:.4}s \
         ({refine_fused_speedup:.1}x over unfused, {compile_once_compiles} circuit compiles \
         in the loop), unfused compile-once {refine_compile_once:.4}s, \
         recompile {refine_recompile:.4}s ({recompile_compiles} compiles) — \
         {refine_speedup:.1}x compile-once; simd {refine_simd_1t:.4}s vs \
         scalar {refine_scalar_1t:.4}s ({refine_simd_speedup:.2}x)",
        preset.qsvt_n, preset.qsvt_kappa, preset.qsvt_eps, preset.refine_target
    );

    // -- Workload 5: multi-RHS — batched vs sequential solves ---------------
    let bs: Vec<Vector<f64>> = {
        let mut rng = experiment_rng(4);
        (0..preset.multi_rhs)
            .map(|_| qls_linalg::generate::random_unit_vector(preset.qsvt_n, &mut rng))
            .collect()
    };
    let batched_secs = time_min(preset.refine_reps, || {
        let mut rng = experiment_rng(5);
        std::hint::black_box(
            fused_refiner
                .solve_many(&bs, &mut rng)
                .expect("batched solve"),
        );
    });
    let sequential_secs = time_min(preset.refine_reps, || {
        let mut rng = experiment_rng(5);
        for b in &bs {
            std::hint::black_box(fused_refiner.solve(b, &mut rng).expect("solve"));
        }
    });
    let batch_speedup = sequential_secs / batched_secs;
    eprintln!(
        "  multi_rhs {} right-hand sides: batched {batched_secs:.4}s, \
         sequential {sequential_secs:.4}s ({batch_speedup:.2}x)",
        preset.multi_rhs
    );

    // -- Workload 6: structured-operator residual (dense vs CSR vs stencil) --
    // The refinement-loop hot path r = b − A x on the 2-D Poisson problem.
    // Dense pays O(N²) time (and memory: the N = 16384 matrix is ~2 GiB),
    // the CSR and stencil operators pay O(nnz) — same floats out either way
    // (the structured matvecs are bit-identical to the dense kernel).
    let mut sparse_json = String::new();
    for &g in &preset.sparse_grids {
        let n = g * g;
        let stencil = poisson_2d::<f64>(g, g, false);
        let csr = stencil.to_sparse();
        let nnz = csr.nnz();
        let x: Vector<f64> = (0..n).map(|i| ((i % 101) as f64 / 101.0) - 0.5).collect();
        let b: Vector<f64> = (0..n).map(|i| ((i % 89) as f64 / 89.0) - 0.5).collect();
        // The SpMV's scalar oracle (`matvec_scalar`) is timed interleaved
        // with the SIMD path: the SIMD-vs-scalar ratio of the residual hot
        // loop itself, robust to machine-load drifts.
        let (csr_secs, csr_scalar_secs) = time_min_pair(
            5,
            || {
                std::hint::black_box(&b - &csr.matvec(&x));
            },
            || {
                std::hint::black_box(&b - &csr.matvec_scalar(&x));
            },
        );
        let stencil_secs = time_min(5, || {
            std::hint::black_box(&b - &stencil.matvec(&x));
        });
        let (dense_secs, reference) = {
            // Scoped so the dense matrix is dropped before the next size.
            let dense = stencil.to_dense();
            let secs = time_min(3, || {
                std::hint::black_box(&b - &dense.matvec(&x));
            });
            (secs, &b - &dense.matvec(&x))
        };
        // Equivalence guard: the timed operators compute the same residual.
        assert_eq!(
            (&b - &csr.matvec(&x)).as_slice(),
            reference.as_slice(),
            "CSR residual must be bit-identical to dense"
        );
        assert_eq!(
            (&b - &stencil.matvec(&x)).as_slice(),
            reference.as_slice(),
            "stencil residual must be bit-identical to dense"
        );
        let csr_speedup = dense_secs / csr_secs;
        let csr_simd_speedup = csr_scalar_secs / csr_secs;
        let stencil_speedup = dense_secs / stencil_secs;
        eprintln!(
            "  sparse_residual N={n} (grid {g}x{g}, nnz {nnz}): dense {dense_secs:.6}s, \
             csr {csr_secs:.6}s ({csr_speedup:.1}x, {csr_simd_speedup:.2}x over scalar \
             {csr_scalar_secs:.6}s), stencil {stencil_secs:.6}s ({stencil_speedup:.1}x)"
        );
        let _ = write!(
            sparse_json,
            r#",
    {{
      "name": "sparse_residual",
      "matrix_size": {n},
      "grid": {g},
      "nnz": {nnz},
      "dense_residual_seconds": {dense_secs:.6},
      "csr_residual_seconds": {csr_secs:.6},
      "csr_scalar_residual_seconds": {csr_scalar_secs:.6},
      "simd_vs_scalar_speedup": {csr_simd_speedup:.3},
      "stencil_residual_seconds": {stencil_secs:.6},
      "csr_vs_dense_speedup": {csr_speedup:.3},
      "stencil_vs_dense_speedup": {stencil_speedup:.3}
    }}"#
        );
    }

    // -- Workload 7: structured inner solvers (the end of the densify wall) --
    // The whole classical refiner — factorisation *and* solve — through the
    // structured inner solver selected by `FactorizableOperator::factorize`
    // vs the retained densify + dense-LU oracle.  On the 1-D Poisson problem
    // the comparison is Thomas (O(N)) vs a densified O(N²) factorisation; at
    // N = 16384 the dense copy alone is ~2 GiB.  Both paths refine to the
    // same target, and an agreement guard pins their solutions together.
    let mut structured_json = String::new();
    {
        let n = preset.inner_tridiag_n;
        // f64 inner: at this size the 1-D Poisson kappa ~ N² overwhelms an
        // f32 inner solve (epsilon_l * kappa > 1), so both sides run the
        // uniform-precision configuration — the comparison is about the
        // factorisation cost, not the precision gap.
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        };
        let tri = poisson_1d::<f64>(n, false);
        let b: Vector<f64> = (0..n).map(|i| ((i % 97) as f64 / 97.0) - 0.5).collect();
        let solve_structured = || {
            let refiner = ClassicalRefiner::<f64, f64, TridiagonalMatrix<f64>>::new(&tri, opts)
                .expect("structured refiner");
            refiner.solve(&b).expect("structured solve").0
        };
        let solve_densify = || {
            let refiner =
                ClassicalRefiner::<f64, f64, TridiagonalMatrix<f64>>::with_dense_lu(&tri, opts)
                    .expect("densify-LU refiner");
            refiner.solve(&b).expect("densify-LU solve").0
        };
        let x_structured = solve_structured();
        let x_densify = solve_densify();
        let agreement = (&x_structured - &x_densify).norm2() / x_densify.norm2();
        assert!(
            agreement <= 1e-10,
            "structured and densify-LU refiners disagree by {agreement:e}"
        );
        let structured_secs = time_min(3, || {
            std::hint::black_box(solve_structured());
        });
        let densify_secs = time_min(2, || {
            std::hint::black_box(solve_densify());
        });
        let inner_speedup = densify_secs / structured_secs;
        eprintln!(
            "  structured_inner_solve N={n} (1-D Poisson, thomas vs densify-LU): \
             structured {structured_secs:.6}s, densify-LU {densify_secs:.6}s \
             ({inner_speedup:.1}x), agreement {agreement:.2e}"
        );
        let _ = write!(
            structured_json,
            r#",
    {{
      "name": "structured_inner_solve",
      "matrix_size": {n},
      "inner_solver": "thomas",
      "structured_solve_seconds": {structured_secs:.6},
      "densify_lu_solve_seconds": {densify_secs:.6},
      "structured_vs_densify_speedup": {inner_speedup:.3},
      "solution_agreement": {agreement:.3e}
    }}"#
        );
    }

    // 3-D Poisson through the d-dimensional stencil: matrix-free Jacobi-CG
    // inner solves at f32, true mixed precision (epsilon_l * kappa << 1).
    {
        let g = preset.poisson3d_grid;
        let n = g * g * g;
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        };
        let a = poisson_3d::<f64>(g, g, g, false);
        let b: Vector<f64> = (0..n).map(|i| ((i % 89) as f64 / 89.0) - 0.5).collect();
        let refiner =
            ClassicalRefiner::<f64, f32, StencilNd<f64>>::new(&a, opts).expect("3-D refiner");
        let (_, history) = refiner.solve(&b).expect("3-D solve");
        let iterations = history.iterations();
        let solve_secs = time_min(3, || {
            std::hint::black_box(refiner.solve(&b).expect("3-D solve"));
        });
        eprintln!(
            "  poisson3d_refinement N={n} (grid {g}^3, jacobi-cg inner): \
             {solve_secs:.6}s, {iterations} iterations"
        );
        let _ = write!(
            structured_json,
            r#",
    {{
      "name": "poisson3d_refinement",
      "matrix_size": {n},
      "grid": {g},
      "inner_solver": "jacobi-cg",
      "iterations": {iterations},
      "solve_seconds": {solve_secs:.6}
    }}"#
        );
    }

    // Nonsymmetric convection-diffusion: the BiCGSTAB inner path.
    {
        let g = preset.convdiff_grid;
        let n = g * g;
        let (px, py) = (0.5, 0.25);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        };
        let a = convection_diffusion_2d::<f64>(g, g, px, py);
        let b: Vector<f64> = (0..n).map(|i| ((i % 83) as f64 / 83.0) - 0.5).collect();
        let refiner =
            ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&a, opts).expect("cd refiner");
        let (_, history) = refiner.solve(&b).expect("cd solve");
        let iterations = history.iterations();
        let solve_secs = time_min(3, || {
            std::hint::black_box(refiner.solve(&b).expect("cd solve"));
        });
        eprintln!(
            "  convection_diffusion_refinement N={n} (grid {g}x{g}, peclet ({px}, {py}), \
             jacobi-bicgstab inner): {solve_secs:.6}s, {iterations} iterations"
        );
        let _ = write!(
            structured_json,
            r#",
    {{
      "name": "convection_diffusion_refinement",
      "matrix_size": {n},
      "grid": {g},
      "peclet_x": {px},
      "peclet_y": {py},
      "inner_solver": "jacobi-bicgstab",
      "iterations": {iterations},
      "solve_seconds": {solve_secs:.6}
    }}"#
        );
    }

    // Shifted graph Laplacian at N ~ 10^5: matrix-free CG at a scale where a
    // dense copy (N² doubles) would not even fit in memory comfortably.
    {
        let n = preset.graph_n;
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        };
        let edges = {
            let mut rng = experiment_rng(23);
            random_connected_graph(n, preset.graph_extra_edges, &mut rng)
        };
        let a: SparseMatrix<f64> = shifted_graph_laplacian(n, &edges, 0.5);
        let nnz = a.nnz();
        let b: Vector<f64> = (0..n).map(|i| ((i % 79) as f64 / 79.0) - 0.5).collect();
        let refiner =
            ClassicalRefiner::<f64, f32, SparseMatrix<f64>>::new(&a, opts).expect("graph refiner");
        let (_, history) = refiner.solve(&b).expect("graph solve");
        let iterations = history.iterations();
        let solve_secs = time_min(3, || {
            std::hint::black_box(refiner.solve(&b).expect("graph solve"));
        });
        eprintln!(
            "  graph_laplacian_refinement N={n} (nnz {nnz}, jacobi-cg inner): \
             {solve_secs:.6}s, {iterations} iterations"
        );
        let _ = write!(
            structured_json,
            r#",
    {{
      "name": "graph_laplacian_refinement",
      "matrix_size": {n},
      "nnz": {nnz},
      "inner_solver": "jacobi-cg",
      "iterations": {iterations},
      "solve_seconds": {solve_secs:.6}
    }}"#
        );
    }

    // -- Workload 8: fault-injected refinement + recovery ladder -------------
    // The robustness layer's overhead, measured: the same system solved
    // clean (no injector, recovery armed but never consulted) and under a
    // seeded fault plan (amplitude noise + one scheduled transient) that
    // forces the ladder to act.  Emulation mode keeps the workload about
    // the recovery machinery, not circuit execution.
    let mut recovery_json = String::new();
    {
        use qls_core::refine::RecoveryPolicy;
        use qls_sim::{FaultInjector, FaultPlan, TransientKind};
        let options = HybridRefinementOptions {
            target_epsilon: preset.refine_target,
            epsilon_l: preset.qsvt_eps,
            recovery: RecoveryPolicy::full(),
            ..Default::default()
        };
        let clean_refiner = HybridRefiner::new(&a, options).expect("clean refiner");
        let clean_secs = time_min(preset.refine_reps, || {
            let mut rng = experiment_rng(6);
            std::hint::black_box(clean_refiner.solve(&b, &mut rng).expect("clean solve"));
        });
        let plan = FaultPlan::new(41)
            .with_amplitude_noise(1e-4)
            .with_transient(1, TransientKind::InjectedError);
        let make_faulted = || {
            let mut refiner = HybridRefiner::new(&a, options).expect("faulted refiner");
            refiner.attach_fault_injector(FaultInjector::shared(plan.clone()));
            refiner
        };
        let (_, history) = {
            let refiner = make_faulted();
            let mut rng = experiment_rng(6);
            refiner.solve(&b, &mut rng).expect("recovered solve")
        };
        let recovery_events = history.recovery.len();
        let status = format!("{:?}", history.status);
        assert!(
            history.status.reached_target(),
            "the ladder must absorb the benchmark fault plan: {status}"
        );
        assert!(recovery_events > 0, "the plan must trigger the ladder");
        let recovered_secs = time_min(preset.refine_reps, || {
            // A fresh injector per run replays the exact same fault stream.
            let refiner = make_faulted();
            let mut rng = experiment_rng(6);
            std::hint::black_box(refiner.solve(&b, &mut rng).expect("recovered solve"));
        });
        let recovery_overhead = recovered_secs / clean_secs;
        eprintln!(
            "  noisy_refinement_recovery n={} (sigma 1e-4, transient at run 1): \
             clean {clean_secs:.6}s, recovered {recovered_secs:.6}s \
             ({recovery_overhead:.2}x), {recovery_events} recovery events, status {status}",
            preset.qsvt_n
        );
        let _ = write!(
            recovery_json,
            r#",
    {{
      "name": "noisy_refinement_recovery",
      "matrix_size": {qsvt_n},
      "amplitude_sigma": 1e-4,
      "clean_solve_seconds": {clean_secs:.6},
      "recovered_solve_seconds": {recovered_secs:.6},
      "recovery_overhead": {recovery_overhead:.3},
      "recovery_events": {recovery_events},
      "final_status": "{status}"
    }}"#,
            qsvt_n = preset.qsvt_n,
        );
    }

    // -- Workload 9: Fig. 4 large-κ hybrid solves ----------------------------
    // The large-condition-number regime of the `fig4_large_kappa` binary,
    // recorded in the perf trajectory: ε_l tied to κ (ε_l·κ = 1/4, as the
    // paper's angle-estimation algorithm fixes it), emulation path (the
    // polynomial degree reaches tens of thousands).  One entry per κ with
    // the degree and end-to-end solve seconds.
    let mut fig4_json = String::new();
    for (idx, &kappa) in preset.fig4_kappas.iter().enumerate() {
        let epsilon = preset.fig4_eps;
        let epsilon_l = 0.25 / kappa;
        let (a4, b4) = paper_test_system(16, kappa, 100 + idx as u64);
        let options = HybridRefinementOptions {
            target_epsilon: epsilon,
            epsilon_l,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a4, options).expect("fig4 refiner");
        let (_, history) = {
            let mut rng = experiment_rng(11 + idx as u64);
            refiner.solve(&b4, &mut rng).expect("fig4 solve")
        };
        assert_eq!(history.status, HybridStatus::Converged, "kappa = {kappa}");
        let degree = history.steps[0].cost.polynomial_degree;
        let iterations = history.iterations();
        let solve_secs = time_min(1, || {
            let mut rng = experiment_rng(11 + idx as u64);
            std::hint::black_box(refiner.solve(&b4, &mut rng).expect("fig4 solve"));
        });
        eprintln!(
            "  fig4_large_kappa kappa={kappa}: eps={epsilon:.0e}, eps_l={epsilon_l:.2e}, \
             degree {degree}, {iterations} iterations, {solve_secs:.4}s"
        );
        let _ = write!(
            fig4_json,
            r#",
    {{
      "name": "fig4_large_kappa",
      "matrix_size": 16,
      "kappa": {kappa},
      "epsilon": {epsilon:e},
      "epsilon_l": {epsilon_l:e},
      "polynomial_degree": {degree},
      "iterations": {iterations},
      "solve_seconds": {solve_secs:.6}
    }}"#
        );
    }

    // -- Workload 10: sharded vs flat execution ------------------------------
    // Wall time of the random mixed-gate circuit through the sharded engine
    // (4 shards, chunk-parallel with pairwise exchanges) vs the flat engine,
    // interleaved so the ratio survives machine drift.  The execution-plan
    // numbers come from `sharding_stats` (static cost model — deterministic,
    // machine-independent) so CI can assert on them.
    let shard_count = 4usize;
    let scirc = random_circuit(preset.random_qubits, preset.random_ops, 20260807);
    let flat_exec = QuantumExecutor::with_exec_mode(&scirc, OptLevel::Fuse, ExecMode::Flat);
    let sharded_exec = QuantumExecutor::with_exec_mode(
        &scirc,
        OptLevel::Fuse,
        ExecMode::Sharded {
            shards: shard_count,
        },
    );
    let (sharded_secs, flat_secs) = time_min_pair(
        preset.random_reps,
        || {
            std::hint::black_box(sharded_exec.run_zero());
        },
        || {
            std::hint::black_box(flat_exec.run_zero());
        },
    );
    let sharded_speedup = flat_secs / sharded_secs;
    let sstats = sharding_stats(&scirc, shard_count);
    // The low-support fusion preference on the QSVT solve circuit: exchange
    // rounds of the fused degree-d circuit with the shard boundary armed vs
    // without (both static-model, both compiled for the same 4 shards).
    // The preference exists to retire exchange rounds — hold it to that.
    let qsvt_circ = inverter.qsvt_circuit().expect("qsvt circuit").circuit();
    let qsvt_nq = qsvt_circ.num_qubits();
    let boundary = qsvt_nq.saturating_sub(shard_count.trailing_zeros() as usize);
    let preferred = optimize_circuit_for(
        qsvt_circ,
        qsvt_nq,
        &FusionOptions::default().with_shard_boundary(boundary),
    );
    let unpreferred = optimize_circuit_for(qsvt_circ, qsvt_nq, &FusionOptions::default());
    let preferred_plan = ShardedCircuit::compile(&preferred, qsvt_nq, shard_count);
    let unpreferred_plan = ShardedCircuit::compile(&unpreferred, qsvt_nq, shard_count);
    let qsvt_rounds = preferred_plan.exchange_rounds();
    let qsvt_rounds_unpreferred = unpreferred_plan.exchange_rounds();
    assert!(
        qsvt_rounds < qsvt_rounds_unpreferred,
        "low-support fusion preference must retire at least one exchange round on the fused \
         QSVT circuit ({qsvt_rounds} preferred vs {qsvt_rounds_unpreferred} unpreferred)"
    );
    eprintln!(
        "  sharded_vs_flat {n}q x {shard_count} shards: sharded {sharded_secs:.4}s, \
         flat {flat_secs:.4}s ({sharded_speedup:.2}x), plan {} local / {} exchanged / {} flat \
         ops in {} rounds + {} gathers, {} KiB/shard; qsvt rounds {qsvt_rounds} preferred vs \
         {qsvt_rounds_unpreferred} unpreferred",
        sstats.local_ops,
        sstats.exchanged_ops,
        sstats.flat_ops,
        sstats.exchange_rounds,
        sstats.flat_gathers,
        sstats.per_shard_bytes / 1024,
    );
    let mut sharded_json = String::new();
    let _ = write!(
        sharded_json,
        r#",
    {{
      "name": "sharded_vs_flat",
      "qubits": {n},
      "ops": {ops},
      "shard_count": {shard_count},
      "shard_boundary": {shard_boundary},
      "per_shard_amplitudes": {per_shard_amplitudes},
      "per_shard_bytes": {per_shard_bytes},
      "local_ops": {local_ops},
      "exchanged_ops": {exchanged_ops},
      "flat_ops": {flat_ops},
      "exchange_rounds": {exchange_rounds},
      "flat_gathers": {flat_gathers},
      "sharded_seconds": {sharded_secs:.6},
      "flat_seconds": {flat_secs:.6},
      "sharded_vs_flat_speedup": {sharded_speedup:.3},
      "machine_threads": {machine_threads},
      "parallel_speedup_meaningful": {parallel_meaningful},
      "qsvt_shard_count": {shard_count},
      "qsvt_exchange_rounds": {qsvt_rounds},
      "qsvt_exchange_rounds_unpreferred": {qsvt_rounds_unpreferred},
      "qsvt_flat_gathers": {qsvt_flat_gathers},
      "qsvt_flat_gathers_unpreferred": {qsvt_flat_gathers_unpreferred}
    }}"#,
        ops = preset.random_ops,
        shard_boundary = sstats.shard_boundary,
        per_shard_amplitudes = sstats.per_shard_amplitudes,
        per_shard_bytes = sstats.per_shard_bytes,
        local_ops = sstats.local_ops,
        exchanged_ops = sstats.exchanged_ops,
        flat_ops = sstats.flat_ops,
        exchange_rounds = sstats.exchange_rounds,
        flat_gathers = sstats.flat_gathers,
        qsvt_flat_gathers = preferred_plan.flat_gathers(),
        qsvt_flat_gathers_unpreferred = unpreferred_plan.flat_gathers(),
    );

    // -- Emit JSON -----------------------------------------------------------
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "schema": "qls-bench/simulator/v1",
  "preset": "{preset_name}",
  "unix_seconds": {unix_seconds},
  "machine_threads": {machine_threads},
  "workloads": [
    {{
      "name": "random_circuit",
      "qubits": {n},
      "ops": {ops},
      "kernel_single_thread_seconds": {kernel_1t:.6},
      "scalar_single_thread_seconds": {scalar_1t:.6},
      "simd_vs_scalar_speedup": {simd_speedup:.3},
      "generic_single_thread_seconds": {generic_1t:.6},
      "kernel_parallel_seconds": {kernel_nt:.6},
      "kernel_vs_generic_speedup": {kernel_speedup:.3},
      "machine_threads": {machine_threads},
      "parallel_speedup_meaningful": {parallel_meaningful},
      "parallel_vs_single_thread_speedup": {parallel_speedup:.3},
      "static_fusion_ops": {static_fusion_ops},
      "calibrated_fusion_ops": {calibrated_fusion_ops},
      "fusion_calibrations": {fusion_calibrations}
    }},
    {{
      "name": "qsvt_solve_circuit_mode",
      "matrix_size": {qsvt_n},
      "kappa": {qsvt_kappa},
      "epsilon": {qsvt_eps:e},
      "polynomial_degree": {degree},
      "build_seconds": {qsvt_build:.6},
      "build_seconds_warm": {qsvt_build_warm:.6},
      "warm_vs_cold_build_speedup": {warm_build_speedup:.3},
      "build_phase_generations_warm": {warm_phase_gens},
      "build_fusion_passes_warm": {warm_fusion_passes},
      "solve_seconds": {qsvt_solve:.6},
      "fused_solve_seconds": {qsvt_solve_fused:.6},
      "fused_vs_unfused_speedup": {qsvt_fused_speedup:.3},
      "uncached_solve_seconds": {qsvt_solve_uncached:.6},
      "compile_once_vs_uncached_speedup": {qsvt_solve_speedup:.3},
      "simd_solve_seconds": {qsvt_simd_1t:.6},
      "scalar_solve_seconds": {qsvt_scalar_1t:.6},
      "simd_vs_scalar_speedup": {qsvt_simd_speedup:.3},
      "raw_circuit_ops": {fusion_raw_ops},
      "fused_circuit_ops": {fusion_fused_ops},
      "fusion_op_reduction": {fusion_op_reduction:.3}
    }},
    {{
      "name": "circuit_unitary",
      "qubits": {uq},
      "layers": {ul},
      "seconds": {unitary_secs:.6}
    }},
    {{
      "name": "hybrid_refinement_circuit_mode",
      "matrix_size": {qsvt_n},
      "kappa": {qsvt_kappa},
      "epsilon_l": {qsvt_eps:e},
      "target_epsilon": {refine_target:e},
      "iterations": {refine_iterations},
      "compile_once_seconds": {refine_compile_once:.6},
      "fused_solve_seconds": {refine_fused:.6},
      "fused_vs_unfused_speedup": {refine_fused_speedup:.3},
      "recompile_seconds": {refine_recompile:.6},
      "compile_once_vs_recompile_speedup": {refine_speedup:.3},
      "simd_solve_seconds": {refine_simd_1t:.6},
      "scalar_solve_seconds": {refine_scalar_1t:.6},
      "simd_vs_scalar_speedup": {refine_simd_speedup:.3},
      "compile_once_circuit_compiles": {compile_once_compiles},
      "recompile_circuit_compiles": {recompile_compiles}
    }},
    {{
      "name": "multi_rhs_refinement",
      "matrix_size": {qsvt_n},
      "num_rhs": {multi_rhs},
      "batched_seconds": {batched_secs:.6},
      "sequential_seconds": {sequential_secs:.6},
      "machine_threads": {machine_threads},
      "parallel_speedup_meaningful": {parallel_meaningful},
      "batched_vs_sequential_speedup": {batch_speedup:.3}
    }}{sparse_json}{structured_json}{recovery_json}{fig4_json}{sharded_json}
  ]
}}
"#,
        preset_name = preset.name,
        ops = preset.random_ops,
        qsvt_n = preset.qsvt_n,
        qsvt_kappa = preset.qsvt_kappa,
        qsvt_eps = preset.qsvt_eps,
        uq = preset.unitary_qubits,
        ul = preset.unitary_layers,
        refine_target = preset.refine_target,
        multi_rhs = preset.multi_rhs,
        fusion_raw_ops = fusion.raw_ops,
        fusion_fused_ops = fusion.fused_ops,
        fusion_op_reduction = fusion.op_reduction(),
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("bench_json: wrote {out_path}");
    print!("{json}");
    let _ = std::fs::remove_dir_all(&bench_cache_root);

    // -- Perf-regression gate (--compare) ------------------------------------
    if let Some(baseline_path) = compare_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let violations = compare_against_baseline(&json, &baseline);
        if violations.is_empty() {
            eprintln!("bench_json: no perf regressions against {baseline_path}");
        } else {
            eprintln!(
                "bench_json: {} perf regression(s) against {baseline_path}:",
                violations.len()
            );
            for v in &violations {
                eprintln!("  REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// A perf floor checked by `--compare`: the current value of
/// `workload.field` must stay at or above `fraction` of the committed
/// baseline value.  The fractions are deliberately generous — the committed
/// artifact comes from the `full` preset on a quiet machine while the gate
/// usually runs the `small` preset on shared CI hardware, so only a
/// *collapse* of a ratio (a lost kernel, a disabled cache, a fusion pass
/// that stopped firing) should trip them, not machine noise.
struct RatioFloor {
    workload: &'static str,
    field: &'static str,
    fraction: f64,
}

/// A deterministic counter checked by `--compare`: the current value of
/// `workload.field` must not exceed the committed baseline value.  These
/// counters (circuit compiles in the refinement loop, sharded exchange
/// rounds, warm-build regenerations) are machine- and preset-independent
/// once at their floor, so any increase is a real regression.
struct CounterCeiling {
    workload: &'static str,
    field: &'static str,
}

const RATIO_FLOORS: &[RatioFloor] = &[
    RatioFloor {
        workload: "random_circuit",
        field: "kernel_vs_generic_speedup",
        fraction: 0.25,
    },
    RatioFloor {
        workload: "random_circuit",
        field: "simd_vs_scalar_speedup",
        fraction: 0.5,
    },
    RatioFloor {
        workload: "sparse_residual",
        field: "simd_vs_scalar_speedup",
        fraction: 0.3,
    },
    // The fusion and warm-build payoffs scale with circuit size and
    // polynomial degree, so the small-preset gate run sits far below the
    // full-preset baseline even when healthy; these floors are set where
    // only a collapse to ~1.0x (cache or fusion effectively disabled)
    // lands under them.
    RatioFloor {
        workload: "qsvt_solve_circuit_mode",
        field: "fused_vs_unfused_speedup",
        fraction: 0.03,
    },
    RatioFloor {
        workload: "qsvt_solve_circuit_mode",
        field: "warm_vs_cold_build_speedup",
        fraction: 0.1,
    },
    RatioFloor {
        workload: "hybrid_refinement_circuit_mode",
        field: "compile_once_vs_recompile_speedup",
        fraction: 0.2,
    },
];

const COUNTER_CEILINGS: &[CounterCeiling] = &[
    CounterCeiling {
        workload: "hybrid_refinement_circuit_mode",
        field: "compile_once_circuit_compiles",
    },
    CounterCeiling {
        workload: "qsvt_solve_circuit_mode",
        field: "build_phase_generations_warm",
    },
    CounterCeiling {
        workload: "qsvt_solve_circuit_mode",
        field: "build_fusion_passes_warm",
    },
    CounterCeiling {
        workload: "sharded_vs_flat",
        field: "qsvt_exchange_rounds",
    },
];

/// First workload entry named `name` in a parsed artifact.
fn find_workload<'v>(doc: &'v Value, name: &str) -> Option<&'v Value> {
    match doc.get("workloads")? {
        Value::Seq(items) => items
            .iter()
            .find(|w| matches!(w.get("name"), Some(Value::Str(s)) if s == name)),
        _ => None,
    }
}

fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn workload_field(doc: &Value, workload: &str, field: &str) -> Result<f64, String> {
    let w = find_workload(doc, workload).ok_or_else(|| format!("missing workload {workload}"))?;
    let v = w
        .get(field)
        .ok_or_else(|| format!("workload {workload} missing field {field}"))?;
    numeric(v).ok_or_else(|| format!("workload {workload} field {field} is not numeric"))
}

/// Check the fresh artifact against the committed baseline; returns the list
/// of violated floors/ceilings (empty = gate passes).  A field missing from
/// the *baseline* is skipped — that is how new fields roll out (the gate
/// starts enforcing them once a regenerated baseline is committed) — but a
/// field missing from the *current* run is a violation: the gate must never
/// silently pass because a workload stopped being emitted.
fn compare_against_baseline(current_json: &str, baseline_json: &str) -> Vec<String> {
    let current: Value = match parse_json(current_json) {
        Ok(v) => v,
        Err(e) => return vec![format!("current artifact is not valid JSON: {e}")],
    };
    let baseline: Value = match parse_json(baseline_json) {
        Ok(v) => v,
        Err(e) => return vec![format!("baseline artifact is not valid JSON: {e}")],
    };
    let mut violations = Vec::new();
    for floor in RATIO_FLOORS {
        let base = match workload_field(&baseline, floor.workload, floor.field) {
            Ok(v) => v,
            Err(_) => continue, // not in the baseline yet: nothing to hold
        };
        match workload_field(&current, floor.workload, floor.field) {
            Ok(cur) => {
                let min = floor.fraction * base;
                if cur < min {
                    violations.push(format!(
                        "{}.{} = {cur:.3} fell below {min:.3} ({}x of baseline {base:.3})",
                        floor.workload, floor.field, floor.fraction
                    ));
                }
            }
            Err(e) => violations.push(e),
        }
    }
    for ceiling in COUNTER_CEILINGS {
        let base = match workload_field(&baseline, ceiling.workload, ceiling.field) {
            Ok(v) => v,
            Err(_) => continue,
        };
        match workload_field(&current, ceiling.workload, ceiling.field) {
            Ok(cur) => {
                if cur > base {
                    violations.push(format!(
                        "{}.{} = {cur} exceeds the committed baseline {base}",
                        ceiling.workload, ceiling.field
                    ));
                }
            }
            Err(e) => violations.push(e),
        }
    }
    violations
}
