//! `bench_json` — the machine-readable perf-trajectory benchmark.
//!
//! Times representative simulator workloads and writes `BENCH_simulator.json`
//! so every future PR can compare against the recorded numbers:
//!
//! 1. a random mixed-gate circuit on 16 qubits (the simulator hot path),
//!    measured through the specialized kernel dispatch *and* through the
//!    retained generic reference path of `qls_sim::kernels::reference`, both
//!    pinned to one thread — their ratio is the kernel speedup — plus the
//!    kernel path at the machine's full thread count for the parallel scaling
//!    factor;
//! 2. a full gate-level QSVT solve on the paper's 4-qubit (N = 16) test
//!    system (Section IV experimental setup);
//! 3. dense-unitary extraction (`circuit_unitary`), the verification hot
//!    loop.
//!
//! Usage: `bench_json [--preset small|full] [--out PATH]`.  The `small`
//! preset shrinks every workload so CI can validate the artifact in seconds;
//! the committed `BENCH_simulator.json` comes from the `full` preset.

use qls_bench::{layered_circuit, paper_test_system, random_circuit};
use qls_qsvt::{QsvtInverter, QsvtMode};
use qls_sim::kernels::reference;
use qls_sim::{circuit_unitary, StateVector};
use rayon::ThreadPoolBuilder;
use std::fmt::Write as _;
use std::time::Instant;

struct Preset {
    name: &'static str,
    random_qubits: usize,
    random_ops: usize,
    random_reps: usize,
    generic_reps: usize,
    qsvt_n: usize,
    qsvt_kappa: f64,
    qsvt_eps: f64,
    unitary_qubits: usize,
    unitary_layers: usize,
}

const FULL: Preset = Preset {
    name: "full",
    random_qubits: 16,
    random_ops: 120,
    random_reps: 5,
    generic_reps: 3,
    qsvt_n: 16,
    qsvt_kappa: 8.0,
    qsvt_eps: 0.05,
    unitary_qubits: 8,
    unitary_layers: 5,
};

const SMALL: Preset = Preset {
    name: "small",
    random_qubits: 10,
    random_ops: 40,
    random_reps: 3,
    generic_reps: 2,
    qsvt_n: 4,
    qsvt_kappa: 2.0,
    qsvt_eps: 0.05,
    unitary_qubits: 5,
    unitary_layers: 3,
};

/// Minimum over `reps` timed runs of `f`, in seconds.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn single_thread_pool() -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool")
}

fn main() {
    let mut preset = FULL;
    let mut out_path = String::from("BENCH_simulator.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => {
                let v = args.next().expect("--preset needs a value");
                preset = match v.as_str() {
                    "full" => FULL,
                    "small" => SMALL,
                    other => panic!("unknown preset {other:?} (use small|full)"),
                };
            }
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown argument {other:?}"),
        }
    }

    let machine_threads = rayon::current_num_threads();
    eprintln!(
        "bench_json: preset = {}, machine threads = {machine_threads}",
        preset.name
    );

    // -- Workload 1: random mixed-gate circuit (the hot path) ---------------
    let circ = random_circuit(preset.random_qubits, preset.random_ops, 20260728);
    let n = preset.random_qubits;
    let kernel_1t = single_thread_pool().install(|| {
        time_min(preset.random_reps, || {
            std::hint::black_box(StateVector::run(&circ));
        })
    });
    let generic_1t = single_thread_pool().install(|| {
        time_min(preset.generic_reps, || {
            let mut sv = StateVector::zero_state(n);
            reference::apply_circuit(&mut sv, &circ);
            std::hint::black_box(sv.probability(0));
        })
    });
    let kernel_nt = time_min(preset.random_reps, || {
        std::hint::black_box(StateVector::run(&circ));
    });
    let kernel_speedup = generic_1t / kernel_1t;
    let parallel_speedup = kernel_1t / kernel_nt;
    eprintln!(
        "  random_{n}q: kernel {kernel_1t:.4}s, generic {generic_1t:.4}s \
         ({kernel_speedup:.1}x), {machine_threads}-thread {kernel_nt:.4}s \
         ({parallel_speedup:.2}x scaling)"
    );

    // -- Workload 2: QSVT solve on the paper's test system ------------------
    let (a, b) = paper_test_system(preset.qsvt_n, preset.qsvt_kappa, 1);
    let build_start = Instant::now();
    let inverter = QsvtInverter::new(&a, preset.qsvt_eps, QsvtMode::CircuitReal)
        .expect("QSVT inverter construction");
    let qsvt_build = build_start.elapsed().as_secs_f64();
    let degree = inverter.resources().degree;
    let qsvt_solve = time_min(2, || {
        std::hint::black_box(inverter.solve_direction(&b).expect("QSVT solve"));
    });
    eprintln!(
        "  qsvt_solve n={} kappa={} eps={:.0e}: degree {degree}, build {qsvt_build:.4}s, \
         solve {qsvt_solve:.4}s",
        preset.qsvt_n, preset.qsvt_kappa, preset.qsvt_eps
    );

    // -- Workload 3: dense-unitary extraction -------------------------------
    let ucirc = layered_circuit(preset.unitary_qubits, preset.unitary_layers);
    let unitary_secs = time_min(2, || {
        std::hint::black_box(circuit_unitary(&ucirc));
    });
    eprintln!(
        "  circuit_unitary {}q x {} layers: {unitary_secs:.4}s",
        preset.unitary_qubits, preset.unitary_layers
    );

    // -- Emit JSON -----------------------------------------------------------
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut json = String::new();
    let _ = write!(
        json,
        r#"{{
  "schema": "qls-bench/simulator/v1",
  "preset": "{preset_name}",
  "unix_seconds": {unix_seconds},
  "machine_threads": {machine_threads},
  "workloads": [
    {{
      "name": "random_circuit",
      "qubits": {n},
      "ops": {ops},
      "kernel_single_thread_seconds": {kernel_1t:.6},
      "generic_single_thread_seconds": {generic_1t:.6},
      "kernel_parallel_seconds": {kernel_nt:.6},
      "kernel_vs_generic_speedup": {kernel_speedup:.3},
      "parallel_vs_single_thread_speedup": {parallel_speedup:.3}
    }},
    {{
      "name": "qsvt_solve_circuit_mode",
      "matrix_size": {qsvt_n},
      "kappa": {qsvt_kappa},
      "epsilon": {qsvt_eps:e},
      "polynomial_degree": {degree},
      "build_seconds": {qsvt_build:.6},
      "solve_seconds": {qsvt_solve:.6}
    }},
    {{
      "name": "circuit_unitary",
      "qubits": {uq},
      "layers": {ul},
      "seconds": {unitary_secs:.6}
    }}
  ]
}}
"#,
        preset_name = preset.name,
        ops = preset.random_ops,
        qsvt_n = preset.qsvt_n,
        qsvt_kappa = preset.qsvt_kappa,
        qsvt_eps = preset.qsvt_eps,
        uq = preset.unitary_qubits,
        ul = preset.unitary_layers,
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("bench_json: wrote {out_path}");
    print!("{json}");
}
