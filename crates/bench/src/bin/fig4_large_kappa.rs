//! Fig. 4 — scaled residual per refinement iteration for larger condition
//! numbers κ = 100, 200, 300.
//!
//! In the paper this experiment uses the angle-estimation algorithm of
//! Ref. [32], which fixes ε_l itself; here the polynomial accuracy is tied to
//! the condition number the same way (ε_l chosen so that ε_l·κ = 1/4), and the
//! QSVT is applied through the emulation path (the degree reaches tens of
//! thousands — see DESIGN.md).  The printed iteration counts must stay below
//! the Theorem III.1 bound, as the paper observes.

use qls_bench::{ascii_semilog_plot, experiment_rng, format_table, paper_test_system};
use qls_core::{HybridRefinementOptions, HybridRefiner, HybridStatus};

fn main() {
    let epsilon = 1e-11;
    let kappas = [100.0, 200.0, 300.0];
    println!("Fig. 4 — scaled residual until convergence for kappa = 100, 200, 300 (N = 16, eps = {epsilon:.0e})\n");

    let mut series = Vec::new();
    for (idx, &kappa) in kappas.iter().enumerate() {
        // eps_l fixed by the construction, as in the paper where the angle
        // estimation algorithm determines it: eps_l * kappa = 1/4.
        let epsilon_l = 0.25 / kappa;
        let (a, b) = paper_test_system(16, kappa, 100 + idx as u64);
        let options = HybridRefinementOptions {
            target_epsilon: epsilon,
            epsilon_l,
            ..Default::default()
        };
        let refiner = HybridRefiner::new(&a, options).expect("refiner");
        let mut rng = experiment_rng(11 + idx as u64);
        let (_, history) = refiner.solve(&b, &mut rng).expect("solve");
        assert_eq!(history.status, HybridStatus::Converged, "kappa = {kappa}");

        println!(
            "kappa = {kappa}: eps_l = {epsilon_l:.2e}, polynomial degree {}",
            history.steps[0].cost.polynomial_degree
        );
        let rows: Vec<Vec<String>> = history
            .steps
            .iter()
            .map(|s| {
                vec![
                    format!("{}", s.iteration),
                    format!("{:.3e}", s.scaled_residual),
                    format!("{:.3e}", s.theoretical_bound),
                ]
            })
            .collect();
        println!(
            "{}",
            format_table(&["iteration", "scaled residual", "Thm III.1 bound"], &rows)
        );
        println!(
            "iterations: {} (bound: {}), final residual {:.3e}\n",
            history.iterations(),
            history
                .iteration_bound()
                .map(|b| b.to_string())
                .unwrap_or_else(|| "n/a".to_string()),
            history.final_residual()
        );
        series.push((
            format!("kappa = {kappa}"),
            history
                .steps
                .iter()
                .map(|s| s.scaled_residual)
                .collect::<Vec<_>>(),
        ));
    }

    let named: Vec<(&str, Vec<f64>)> = series
        .iter()
        .map(|(name, values)| (name.as_str(), values.clone()))
        .collect();
    println!("semilog convergence plot (x: iteration, y: scaled residual):");
    println!("{}", ascii_semilog_plot(&named, 16));
    println!("Expected shape (paper Fig. 4): convergence remains geometric for the larger");
    println!("condition numbers and the measured iteration count stays below the bound.");
}
