//! Fig. 1 — CPU ↔ QPU communication scheme of Algorithm 2.
//!
//! Runs the hybrid solver on the paper's experimental setting (N = 16,
//! κ = 10), then prints the transfer timeline: which artefacts cross the
//! CPU–QPU link, in which direction, at which iteration, and how many bytes,
//! reproducing the structure of the paper's Fig. 1 with quantitative sizes.

use qls_bench::{experiment_rng, format_table, paper_test_system};
use qls_core::{
    CommunicationParameters, CommunicationSchedule, Direction, HybridRefinementOptions,
    HybridRefiner,
};
use qls_encoding::{BlockEncoding, LcuBlockEncoding, StatePreparation};

fn main() {
    let (a, b) = paper_test_system(16, 10.0, 42);
    let options = HybridRefinementOptions {
        target_epsilon: 1e-11,
        epsilon_l: 1e-2,
        ..Default::default()
    };
    let refiner = HybridRefiner::new(&a, options).expect("refiner");
    let mut rng = experiment_rng(7);
    let (_, history) = refiner.solve(&b, &mut rng).expect("solve");

    // Concrete circuit sizes for the transfers.
    let be = LcuBlockEncoding::of_adjoint(&a, 1e-12);
    let sp = StatePreparation::new(&b).circuit();
    let params = CommunicationParameters {
        n_qubits: 4,
        block_encoding_gates: be.circuit().gate_count(),
        state_prep_gates: sp.gate_count(),
        polynomial_degree: history.steps[0].cost.polynomial_degree,
        iterations: history.iterations(),
        bytes_per_gate: 16,
        bytes_per_scalar: 8,
    };
    let schedule = CommunicationSchedule::new(params);

    println!("Fig. 1 — CPU-QPU communication scheme for Algorithm 2 (N = 16, kappa = 10)");
    println!(
        "run: {} refinement iterations, polynomial degree {}\n",
        history.iterations(),
        params.polynomial_degree
    );

    let rows: Vec<Vec<String>> = schedule
        .events
        .iter()
        .map(|e| {
            vec![
                format!("{}", e.iteration),
                match e.direction {
                    Direction::CpuToQpu => "CPU -> QPU".to_string(),
                    Direction::QpuToCpu => "QPU -> CPU".to_string(),
                },
                e.label.clone(),
                format!("{}", e.bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["iteration", "direction", "payload", "bytes"], &rows)
    );

    println!(
        "setup transfer (BE(A\u{2020}) + \u{03a6} + SP(b)): {} bytes",
        schedule.setup_bytes()
    );
    println!(
        "per-iteration transfer (SP(r_i) only):       {} bytes",
        schedule.per_iteration_bytes()
    );
    println!(
        "total CPU->QPU: {} bytes, total QPU->CPU: {} bytes",
        schedule.total_bytes(Direction::CpuToQpu),
        schedule.total_bytes(Direction::QpuToCpu)
    );
    println!(
        "\nAs in the paper's Fig. 1, the block-encoding of A\u{2020} and the phase vector \u{03a6}"
    );
    println!("cross the link once; every further iteration only ships the residual's state-");
    println!("preparation circuit out and the sampled solution back.");
}
