//! Fig. 2 — block-encoding of the tridiagonal (Poisson) matrix.
//!
//! Builds the block-encoding of `tridiag(-1, 2, -1)` used by the Poisson use
//! case, verifies the defining property `α·⟨0|U|0⟩ = A` numerically, and
//! prints the circuit summary (gate histogram, depth, ancillas) together with
//! the analytic resource model of the published circuit (paper Ref. [37]).

use qls_bench::format_table;
use qls_encoding::{BlockEncoding, BlockEncodingExt, TridiagBlockEncoding};
use qls_sim::{estimate_resources, TCountModel};

fn main() {
    println!("Fig. 2 — block-encoding of the tridiagonal matrix of Eq. (7)\n");
    let mut rows = Vec::new();
    for n in [2usize, 3, 4] {
        let be = TridiagBlockEncoding::new(n);
        let reference = be.dense_matrix();
        let err = be.encoding_error(&reference);
        let est = estimate_resources(be.circuit(), &TCountModel::default());
        let analytic = be.analytic_resources();
        rows.push(vec![
            format!("{n}"),
            format!("{}", 1 << n),
            format!("{:.3}", be.alpha()),
            format!("{}", be.num_ancilla_qubits()),
            format!("{}", est.gate_count),
            format!("{}", est.depth),
            format!("{}", est.estimated_t_count),
            format!("{}", analytic.primitive_gates),
            format!("{}", analytic.t_count),
            format!("{:.2e}", err),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "n",
                "N",
                "alpha",
                "ancillas",
                "gates(sim)",
                "depth(sim)",
                "T(sim)",
                "gates(analytic)",
                "T(analytic)",
                "encoding error"
            ],
            &rows
        )
    );

    // Show the first operations of the n = 2 circuit as a concrete "Fig. 2".
    let be = TridiagBlockEncoding::new(2);
    println!(
        "first operations of the n = 2 encoding circuit ({}):",
        be.method_name()
    );
    for (i, op) in be.circuit().operations().iter().take(20).enumerate() {
        println!(
            "  {:>3}: {:<8} targets {:?} controls {:?}",
            i,
            op.gate.name(),
            op.targets,
            op.controls
        );
    }
    println!("  ... ({} operations total)", be.circuit().gate_count());
    println!("\nThe 'encoding error' column verifies alpha * <0|U|0> = A entry-wise; the");
    println!("analytic columns give the O(n) gate counts of the published double-log-depth");
    println!("construction, which the Table-II cost model uses (see DESIGN.md).");
}
