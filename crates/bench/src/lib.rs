//! # qls-bench
//!
//! Benchmark harness and experiment generators for the paper reproduction.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! that regenerates its data (see `src/bin/`):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `table1`          | Table I — quantum cost with vs. without iterative refinement |
//! | `table2`          | Table II — Poisson-equation cost breakdown |
//! | `fig1_comms`      | Fig. 1 — CPU↔QPU communication scheme |
//! | `fig2_circuit`    | Fig. 2 — block-encoding circuit of the tridiagonal matrix |
//! | `fig3_convergence`| Fig. 3 — scaled residual per iteration, κ = 10, ε = 1e-11 |
//! | `fig4_large_kappa`| Fig. 4 — scaled residual per iteration, κ = 100/200/300 |
//! | `fig5_complexity` | Fig. 5 — block-encoding calls vs. ε, with and without refinement |
//!
//! The `benches/` directory additionally contains Criterion micro-benchmarks
//! of every substrate (dense kernels, simulator, polynomial construction,
//! block-encodings, QSVT application, refinement loop, cost model).
//!
//! This library crate only holds small shared helpers (deterministic test
//! systems and plain-text table formatting) so the binaries and benches stay
//! focused on the experiment logic.

use qls_linalg::generate::{
    random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
};
use qls_linalg::{Matrix, Vector};
use qls_sim::{Circuit, Gate};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic random test system of size `n` with condition number `kappa`
/// and unit-norm right-hand side — the Section IV experimental setup
/// (`N = 16`, random matrix, ‖b‖ = 1).
pub fn paper_test_system(n: usize, kappa: f64, seed: u64) -> (Matrix<f64>, Vector<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    );
    let b = random_unit_vector(n, &mut rng);
    (a, b)
}

/// A deterministic RNG for experiment runs.
pub fn experiment_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A deterministic random circuit mixing every simulator kernel class
/// (dense single-qubit rotations, diagonal/phase gates, X/SWAP permutations,
/// CX/CCX controlled flips and controlled rotations), used by the simulator
/// benchmarks as a representative gate workload.
pub fn random_circuit(num_qubits: usize, num_ops: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "random_circuit needs at least 2 qubits");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut circ = Circuit::new(num_qubits);
    for _ in 0..num_ops {
        let q = rng.gen_range(0..num_qubits);
        let mut other = rng.gen_range(0..num_qubits - 1);
        if other >= q {
            other += 1;
        }
        match rng.gen_range(0..10u32) {
            0 => circ.h(q),
            1 => circ.x(q),
            2 => circ.ry(q, rng.gen_range(-3.0..3.0)),
            3 => circ.rz(q, rng.gen_range(-3.0..3.0)),
            4 => circ.t(q),
            5 => circ.phase(q, rng.gen_range(-3.0..3.0)),
            6 => circ.swap(q, other),
            7 => circ.cx(q, other),
            8 => circ.cry(q, other, rng.gen_range(-3.0..3.0)),
            _ => {
                if num_qubits >= 3 {
                    let mut third = rng.gen_range(0..num_qubits - 2);
                    for used in [q.min(other), q.max(other)] {
                        if third >= used {
                            third += 1;
                        }
                    }
                    circ.ccx(q, other, third)
                } else {
                    circ.cz(q, other)
                }
            }
        };
    }
    circ
}

/// A brickwork circuit of parameterised single-qubit rotations and CX chains
/// (the layered workload used by the simulator benches).
pub fn layered_circuit(num_qubits: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for l in 0..layers {
        for q in 0..num_qubits {
            c.ry(q, 0.1 * (l + q) as f64);
        }
        for q in 0..num_qubits - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

/// A dense 2-qubit unitary (H⊗H followed by SWAP), handy for driving the
/// simulator's generic k-qubit kernel in benchmarks.
pub fn dense_two_qubit_gate() -> Gate {
    let h = Gate::H.matrix();
    Gate::Unitary(h.kron(&h).matmul(&Gate::Swap.matrix()))
}

/// Format a plain-text table with aligned columns.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (j, cell) in row.iter().enumerate().take(ncols) {
            widths[j] = widths[j].max(cell.len());
        }
    }
    let format_row = |cells: &[String]| -> String {
        let mut line = String::from("| ");
        for (j, cell) in cells.iter().enumerate().take(ncols) {
            line.push_str(&format!("{:<width$} | ", cell, width = widths[j]));
        }
        line.trim_end().to_string()
    };
    let mut out = String::new();
    out.push_str(&format_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&"-".repeat(w + 2));
        sep.push('|');
    }
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&format_row(row));
        out.push('\n');
    }
    out
}

/// Render a crude ASCII semilog plot of one or more series (iteration on the
/// x-axis, log10 of the value on the y-axis) — enough to eyeball the
/// convergence curves of Figs. 3–4 in a terminal.
pub fn ascii_semilog_plot(series: &[(&str, Vec<f64>)], height: usize) -> String {
    let mut min_log = f64::MAX;
    let mut max_log = f64::MIN;
    let mut max_len = 0usize;
    for (_, values) in series {
        max_len = max_len.max(values.len());
        for &v in values {
            if v > 0.0 {
                min_log = min_log.min(v.log10());
                max_log = max_log.max(v.log10());
            }
        }
    }
    if max_len == 0 || min_log > max_log {
        return String::from("(no data)\n");
    }
    let rows = height.max(4);
    let mut grid = vec![vec![' '; max_len * 4 + 8]; rows];
    for (s_idx, (_, values)) in series.iter().enumerate() {
        let marker = ['o', '+', 'x', '*', '#'][s_idx % 5];
        for (i, &v) in values.iter().enumerate() {
            if v <= 0.0 {
                continue;
            }
            let frac = (v.log10() - min_log) / (max_log - min_log).max(1e-12);
            let row = ((1.0 - frac) * (rows - 1) as f64).round() as usize;
            let col = 6 + i * 4;
            if row < rows && col < grid[0].len() {
                grid[row][col] = marker;
            }
        }
    }
    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let level = max_log - (max_log - min_log) * r as f64 / (rows - 1) as f64;
        out.push_str(&format!(
            "1e{:+05.1} {}\n",
            level,
            line.iter().collect::<String>()
        ));
    }
    out.push_str("       ");
    for i in 0..max_len {
        out.push_str(&format!("{:<4}", i));
    }
    out.push('\n');
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} = {}", ['o', '+', 'x', '*', '#'][i % 5], name))
        .collect();
    out.push_str(&format!("       legend: {}\n", legend.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_system_is_deterministic_and_normalised() {
        let (a1, b1) = paper_test_system(16, 10.0, 1);
        let (a2, b2) = paper_test_system(16, 10.0, 1);
        assert_eq!(a1, a2);
        assert_eq!(b1.as_slice(), b2.as_slice());
        assert!((b1.norm2() - 1.0).abs() < 1e-12);
        assert!((qls_linalg::cond_2(&a1) - 10.0).abs() / 10.0 < 1e-8);
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let table = format_table(
            &["name", "value"],
            &[
                vec!["alpha".to_string(), "1".to_string()],
                vec!["b".to_string(), "12345".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    fn ascii_plot_contains_markers_and_legend() {
        let plot = ascii_semilog_plot(
            &[
                ("series-a", vec![1.0, 0.1, 0.01]),
                ("series-b", vec![0.5, 0.05]),
            ],
            10,
        );
        assert!(plot.contains('o'));
        assert!(plot.contains('+'));
        assert!(plot.contains("legend"));
    }
}
