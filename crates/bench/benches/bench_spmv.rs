//! Criterion micro-benchmarks of the structured-operator matvec
//! implementations against the dense kernel: the O(nnz) CSR, tridiagonal and
//! matrix-free stencil products vs the O(N²) dense row product, on the 2-D
//! Poisson problem (the workload whose residual path the operator layer
//! exists to accelerate), plus the residual `r = b − A x` as it appears
//! inside the refinement loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_linalg::{poisson_1d, poisson_2d, Vector};

fn grid_vector(n: usize) -> Vector<f64> {
    (0..n).map(|i| ((i % 101) as f64 / 101.0) - 0.5).collect()
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/spmv");
    group.sample_size(20);
    for &g in &[16usize, 32] {
        let n = g * g;
        let stencil = poisson_2d::<f64>(g, g, false);
        let csr = stencil.to_sparse();
        let dense = stencil.to_dense();
        let x = grid_vector(n);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(dense.matvec(&x)))
        });
        group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(csr.matvec(&x)))
        });
        group.bench_with_input(BenchmarkId::new("stencil", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(stencil.matvec(&x)))
        });
    }
    group.finish();
}

fn bench_tridiagonal(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/spmv_tridiagonal");
    group.sample_size(20);
    for &n in &[1024usize, 16384] {
        let t = poisson_1d::<f64>(n, false);
        let x = grid_vector(n);
        group.bench_with_input(BenchmarkId::new("tridiag", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(t.matvec(&x)))
        });
        let csr = t.to_sparse();
        group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(csr.matvec(&x)))
        });
    }
    group.finish();
}

fn bench_residual(c: &mut Criterion) {
    // The refinement-loop hot path: r = b − A x at high precision.
    let mut group = c.benchmark_group("linalg/residual");
    group.sample_size(20);
    let g = 32usize;
    let n = g * g;
    let stencil = poisson_2d::<f64>(g, g, false);
    let csr = stencil.to_sparse();
    let dense = stencil.to_dense();
    let x = grid_vector(n);
    let b = stencil.matvec(&grid_vector(n));
    group.bench_function(format!("dense_{n}"), |bench| {
        bench.iter(|| std::hint::black_box(&b - &dense.matvec(&x)))
    });
    group.bench_function(format!("csr_{n}"), |bench| {
        bench.iter(|| std::hint::black_box(&b - &csr.matvec(&x)))
    });
    group.bench_function(format!("stencil_{n}"), |bench| {
        bench.iter(|| std::hint::black_box(&b - &stencil.matvec(&x)))
    });
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_tridiagonal, bench_residual);
criterion_main!(benches);
