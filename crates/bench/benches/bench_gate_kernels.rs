//! Criterion micro-benchmarks of the specialized in-place gate kernels
//! against the retained generic reference path, per kernel class, plus the
//! compile-once/apply-many circuit path.

use criterion::{criterion_group, criterion_main, Criterion};
use qls_bench::{dense_two_qubit_gate, layered_circuit};
use qls_sim::kernels::reference;
use qls_sim::{Circuit, CompiledCircuit, Gate, Operation, StateVector};

const N: usize = 12;

/// A non-trivial state to apply single gates to (uniform superposition).
fn plus_state(n: usize) -> StateVector {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    StateVector::run(&c)
}

fn bench_kernel_classes(c: &mut Criterion) {
    let cases: Vec<(&str, Operation)> = vec![
        (
            "single_qubit_h",
            Operation::new(Gate::H, vec![N / 2], vec![]),
        ),
        (
            "diagonal_rz",
            Operation::new(Gate::Rz(0.7), vec![N / 2], vec![]),
        ),
        (
            "phase_shift_t",
            Operation::new(Gate::T, vec![N / 2], vec![]),
        ),
        ("flip_x", Operation::new(Gate::X, vec![N / 2], vec![])),
        (
            "controlled_flip_cx",
            Operation::new(Gate::X, vec![1], vec![N - 1]),
        ),
        ("swap", Operation::new(Gate::Swap, vec![0, N - 1], vec![])),
        (
            "generic_2q_unitary",
            Operation::new(dense_two_qubit_gate(), vec![1, N - 2], vec![]),
        ),
    ];
    let mut group = c.benchmark_group("sim/kernel_vs_generic");
    group.sample_size(50);
    for (name, op) in &cases {
        let mut sv = plus_state(N);
        group.bench_function(format!("{name}/kernel"), |bench| {
            bench.iter(|| {
                sv.apply_op(std::hint::black_box(op));
            })
        });
        let mut sv = plus_state(N);
        group.bench_function(format!("{name}/generic"), |bench| {
            bench.iter(|| {
                reference::apply_op(&mut sv, std::hint::black_box(op));
            })
        });
    }
    group.finish();
}

fn bench_compiled_circuit(c: &mut Criterion) {
    let circuit = layered_circuit(10, 10);
    let compiled = CompiledCircuit::compile(&circuit);
    let mut group = c.benchmark_group("sim/circuit_execution");
    group.sample_size(20);
    group.bench_function("compiled_reuse", |bench| {
        let mut sv = StateVector::zero_state(10);
        bench.iter(|| {
            sv.reset_to_basis(0);
            compiled.apply(&mut sv);
            std::hint::black_box(sv.probability(0))
        })
    });
    group.bench_function("compile_and_apply", |bench| {
        bench.iter(|| std::hint::black_box(StateVector::run(&circuit)))
    });
    group.bench_function("generic_reference", |bench| {
        bench.iter(|| {
            let mut sv = StateVector::zero_state(10);
            reference::apply_circuit(&mut sv, &circuit);
            std::hint::black_box(sv.probability(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_classes, bench_compiled_circuit);
criterion_main!(benches);
