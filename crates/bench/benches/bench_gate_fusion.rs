//! Criterion micro-benchmarks of the circuit-optimizer pass
//! (`qls_sim::fuse`): fused vs unoptimized compile-once execution on
//! representative workloads, plus the one-time cost of the pass itself.

use criterion::{criterion_group, criterion_main, Criterion};
use qls_sim::{Circuit, OptLevel, QuantumExecutor, StateVector};

/// A projector-rotation-shaped workload (the QSVT inner-loop pattern):
/// X-conjugated controlled phases between dense single-qubit layers.
fn phase_block_circuit(num_qubits: usize, blocks: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for k in 0..blocks {
        let phi = 0.07 * k as f64 - 1.3;
        c.gate(qls_sim::Gate::GlobalPhase(-phi), &[0]);
        c.x(num_qubits - 1);
        c.phase(num_qubits - 1, 2.0 * phi);
        c.x(num_qubits - 1);
        for q in 0..num_qubits {
            c.ry(q, 0.1 * (k + q) as f64);
        }
    }
    c
}

fn bench_fused_vs_unfused(c: &mut Criterion) {
    let cases: Vec<(&str, Circuit)> = vec![
        ("layered_12q", qls_bench::layered_circuit(12, 6)),
        ("random_12q", qls_bench::random_circuit(12, 150, 7)),
        ("phase_blocks_10q", phase_block_circuit(10, 30)),
    ];
    let mut group = c.benchmark_group("sim/gate_fusion");
    group.sample_size(30);
    for (name, circ) in &cases {
        let fused = QuantumExecutor::with_options(circ, OptLevel::Fuse);
        let raw = QuantumExecutor::with_options(circ, OptLevel::None);
        let input = StateVector::zero_state(circ.num_qubits());
        group.bench_function(format!("{name}/fused"), |b| {
            b.iter(|| std::hint::black_box(fused.run(&input)))
        });
        group.bench_function(format!("{name}/unfused"), |b| {
            b.iter(|| std::hint::black_box(raw.run(&input)))
        });
        group.bench_function(format!("{name}/optimize_pass"), |b| {
            b.iter(|| {
                std::hint::black_box(qls_sim::optimize_circuit(
                    circ,
                    &qls_sim::FusionOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fused_vs_unfused);
criterion_main!(benches);
