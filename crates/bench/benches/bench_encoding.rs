//! Criterion micro-benchmarks of the data-loading substrate: Pauli
//! decomposition, state preparation, and the three block-encoding
//! constructions at the paper's problem size (N = 16, i.e. 4 data qubits).

use criterion::{criterion_group, criterion_main, Criterion};
use qls_bench::paper_test_system;
use qls_encoding::{
    DilationBlockEncoding, FableBlockEncoding, LcuBlockEncoding, PauliDecomposition,
    StatePreparation,
};

fn bench_pauli_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding/pauli_decomposition");
    group.sample_size(20);
    let (a, _) = paper_test_system(16, 10.0, 4);
    group.bench_function("dense_16x16", |bench| {
        bench.iter(|| std::hint::black_box(PauliDecomposition::decompose_real(&a, 1e-12)))
    });
    group.finish();
}

fn bench_state_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding/state_preparation");
    group.sample_size(30);
    let (_, b) = paper_test_system(16, 10.0, 5);
    group.bench_function("tree_preprocessing_and_circuit_n4", |bench| {
        bench.iter(|| {
            let prep = StatePreparation::new(&b);
            std::hint::black_box(prep.circuit())
        })
    });
    group.finish();
}

fn bench_block_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding/block_encoding_construction");
    group.sample_size(10);
    let (a, _) = paper_test_system(16, 10.0, 6);
    group.bench_function("lcu_16x16", |bench| {
        bench.iter(|| std::hint::black_box(LcuBlockEncoding::new(&a, 1e-12)))
    });
    group.bench_function("fable_16x16", |bench| {
        bench.iter(|| std::hint::black_box(FableBlockEncoding::new(&a, 0.0)))
    });
    group.bench_function("dilation_16x16", |bench| {
        bench.iter(|| std::hint::black_box(DilationBlockEncoding::new(&a, 0.0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pauli_decomposition,
    bench_state_preparation,
    bench_block_encodings
);
criterion_main!(benches);
