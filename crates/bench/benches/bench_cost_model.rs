//! Criterion benchmarks of the analytic cost models behind Table I, Table II
//! and the Fig. 5 "QSVT only" curve (cheap by construction, benchmarked so the
//! harness covers every experiment-generating code path).

use criterion::{criterion_group, criterion_main, Criterion};
use qls_core::{
    poisson_cost_breakdown, quantum_cost_comparison, CostParameters, PoissonCostParameters,
};

fn bench_table1_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/table1");
    group.sample_size(50);
    group.bench_function("comparison_grid", |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for &kappa in &[2.0, 10.0, 100.0, 1000.0] {
                for &eps in &[1e-6, 1e-9, 1e-12] {
                    let cmp = quantum_cost_comparison(CostParameters {
                        kappa,
                        epsilon: eps,
                        epsilon_l: 1.0 / (2.0 * kappa),
                        block_encoding_cost: 1.0,
                    });
                    acc += cmp.speedup;
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_table2_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost/table2");
    group.sample_size(50);
    group.bench_function("poisson_breakdown", |bench| {
        bench.iter(|| {
            std::hint::black_box(poisson_cost_breakdown(PoissonCostParameters {
                n_qubits: 10,
                kappa: 1e4,
                epsilon_l: 1e-2,
                epsilon: 1e-11,
            }))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1_model, bench_table2_model);
criterion_main!(benches);
