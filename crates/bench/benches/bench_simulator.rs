//! Criterion micro-benchmarks of the state-vector simulator: gate application,
//! circuit execution and full-unitary extraction at the register sizes the
//! reproduction uses (4 data qubits + ancillas).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_bench::layered_circuit;
use qls_sim::{circuit_unitary, Circuit, StateVector};

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

fn bench_circuit_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/execution");
    group.sample_size(20);
    for &n in &[8usize, 10, 12] {
        let circuit = layered_circuit(n, 10);
        group.bench_with_input(BenchmarkId::new("10_layers", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(StateVector::run(&circuit)))
        });
    }
    group.finish();
}

fn bench_ghz(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/ghz");
    group.sample_size(30);
    for &n in &[10usize, 14] {
        let circuit = ghz_circuit(n);
        group.bench_with_input(BenchmarkId::new("qubits", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(StateVector::run(&circuit)))
        });
    }
    group.finish();
}

fn bench_unitary_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/unitary_extraction");
    group.sample_size(10);
    let circuit = layered_circuit(6, 5);
    group.bench_function("6_qubits_5_layers", |bench| {
        bench.iter(|| std::hint::black_box(circuit_unitary(&circuit)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_circuit_execution,
    bench_ghz,
    bench_unitary_extraction
);
criterion_main!(benches);
