//! Criterion micro-benchmarks of the polynomial machinery: construction of the
//! Eq. (4) inverse polynomial (the classical pre-processing whose degree drives
//! the whole quantum cost) and its Clenshaw evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_poly::{interpolate, InversePolynomial};

fn bench_inverse_polynomial_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly/inverse_construction");
    group.sample_size(10);
    for &kappa in &[10.0f64, 100.0, 300.0] {
        group.bench_with_input(
            BenchmarkId::new("kappa", kappa as u64),
            &kappa,
            |bench, &k| bench.iter(|| std::hint::black_box(InversePolynomial::new(k, 1e-4))),
        );
    }
    group.finish();
}

fn bench_clenshaw_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly/clenshaw");
    group.sample_size(20);
    let poly = InversePolynomial::new(100.0, 1e-4);
    group.bench_function(format!("degree_{}", poly.degree()), |bench| {
        bench.iter(|| {
            let mut acc = 0.0;
            for i in 0..64 {
                let x = 0.01 + 0.98 * i as f64 / 63.0;
                acc += poly.eval(x);
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("poly/interpolation");
    group.sample_size(20);
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |bench, &nodes| {
            bench.iter(|| std::hint::black_box(interpolate(|x: f64| (3.0 * x).sin(), nodes)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inverse_polynomial_construction,
    bench_clenshaw_evaluation,
    bench_interpolation
);
criterion_main!(benches);
