//! Criterion micro-benchmarks of the SIMD kernel bodies against their
//! bit-identical scalar oracles, at the layer where the vectorization
//! actually lives: statevector gate sweeps (`qls_sim::simd` vs the scalar
//! loops behind [`with_scalar_kernels`]), the CSR SpMV
//! (`SparseMatrix::matvec` vs `matvec_scalar`) and the dense matvec/matmul
//! (`Matrix::matvec`/`matmul` vs their `_scalar` twins).  Everything runs
//! single-threaded — the ratios are pure kernel-body arithmetic, the same
//! quantity the `simd_vs_scalar_speedup` fields of `bench_json` record
//! end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_bench::random_circuit;
use qls_linalg::{poisson_2d, Matrix, Vector};
use qls_sim::{with_scalar_kernels, CompiledCircuit, StateVector};

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd/statevector");
    group.sample_size(20);
    for &n in &[10usize, 14] {
        let circ = random_circuit(n, 60, 20260808);
        let compiled = CompiledCircuit::compile(&circ);
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| {
                let mut sv = StateVector::zero_state(n);
                compiled.apply_sequential(&mut sv);
                std::hint::black_box(sv.probability(0))
            })
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                with_scalar_kernels(|| {
                    let mut sv = StateVector::zero_state(n);
                    compiled.apply_sequential(&mut sv);
                    std::hint::black_box(sv.probability(0))
                })
            })
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd/spmv");
    group.sample_size(20);
    for &g in &[32usize, 64] {
        let n = g * g;
        let csr = poisson_2d::<f64>(g, g, false).to_sparse();
        let x: Vector<f64> = (0..n).map(|i| ((i % 101) as f64 / 101.0) - 0.5).collect();
        group.bench_with_input(BenchmarkId::new("simd", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(csr.matvec(&x)))
        });
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(csr.matvec_scalar(&x)))
        });
    }
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd/dense");
    group.sample_size(20);
    let n = 192usize;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 101) as f64 / 101.0 - 0.5);
    let m = Matrix::from_fn(n, n, |i, j| ((i * 13 + j * 41) % 89) as f64 / 89.0 - 0.5);
    let x: Vector<f64> = (0..n).map(|i| ((i % 97) as f64 / 97.0) - 0.5).collect();
    group.bench_with_input(BenchmarkId::new("matvec_simd", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(a.matvec(&x)))
    });
    group.bench_with_input(BenchmarkId::new("matvec_scalar", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(a.matvec_scalar(&x)))
    });
    group.bench_with_input(BenchmarkId::new("matmul_simd", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(a.matmul(&m)))
    });
    group.bench_with_input(BenchmarkId::new("matmul_scalar", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(a.matmul_scalar(&m)))
    });
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_spmv, bench_dense);
criterion_main!(benches);
