//! Criterion micro-benchmarks of the sharded register engine
//! (`qls_sim::shard`): sharded vs flat execution at several shard counts,
//! the pairwise exchange machinery in isolation (a circuit that is all
//! high-qubit ops), and the one-time cost of compiling a sharded plan.

use criterion::{criterion_group, criterion_main, Criterion};
use qls_sim::{Circuit, ExecMode, OptLevel, QuantumExecutor, ShardedCircuit, ShardedState};

/// A circuit whose every op touches the top qubits: each rep is served by
/// exchange rounds, so the benchmark isolates the swap-halves machinery.
fn high_qubit_circuit(num_qubits: usize, reps: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for k in 0..reps {
        c.h(num_qubits - 1);
        c.cx(num_qubits - 1, num_qubits - 2);
        c.rz(num_qubits - 1, 0.11 * k as f64);
        c.cx(0, num_qubits - 1);
    }
    c
}

fn bench_sharded_vs_flat(c: &mut Criterion) {
    let circ = qls_bench::random_circuit(14, 120, 42);
    let input = qls_sim::StateVector::zero_state(14);
    let mut group = c.benchmark_group("sim/shard_exchange");
    group.sample_size(20);
    let flat = QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Flat);
    group.bench_function("random_14q/flat", |b| {
        b.iter(|| std::hint::black_box(flat.run(&input)))
    });
    for shards in [2usize, 4, 8] {
        let exec =
            QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Sharded { shards });
        group.bench_function(format!("random_14q/sharded_{shards}"), |b| {
            b.iter(|| std::hint::black_box(exec.run(&input)))
        });
    }

    // Exchange rounds in isolation: every op is high-qubit, so the sharded
    // run is dominated by swap-halves traffic.
    let high = high_qubit_circuit(14, 12);
    let plan = ShardedCircuit::compile(&high, 14, 4);
    group.bench_function("high_qubit_14q/exchange_rounds", |b| {
        b.iter(|| {
            let mut state = ShardedState::zero_state(14, 4);
            plan.apply(&mut state);
            std::hint::black_box(state.norm())
        })
    });
    group.bench_function("high_qubit_14q/compile_plan", |b| {
        b.iter(|| std::hint::black_box(ShardedCircuit::compile(&high, 14, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_vs_flat);
criterion_main!(benches);
