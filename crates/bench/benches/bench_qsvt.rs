//! Criterion micro-benchmarks of the QSVT layer: symmetric-QSP phase finding,
//! QSVT circuit simulation (circuit mode, small κ) and the emulated
//! application of the inversion polynomial (the mode used by the convergence
//! experiments).

use criterion::{criterion_group, criterion_main, Criterion};
use qls_bench::paper_test_system;
use qls_poly::ChebyshevSeries;
use qls_qsvt::{find_phases, PhaseFindingOptions, QsvtInverter, QsvtMode};

fn bench_phase_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsvt/phase_finding");
    group.sample_size(10);
    let target = ChebyshevSeries::new(vec![0.0, 0.3, 0.0, -0.2, 0.0, 0.15, 0.0, -0.1]);
    group.bench_function("degree_7_odd_target", |bench| {
        bench.iter(|| {
            std::hint::black_box(find_phases(&target, &PhaseFindingOptions::default()).unwrap())
        })
    });
    group.finish();
}

fn bench_emulated_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsvt/emulated_solve");
    group.sample_size(10);
    for &kappa in &[10.0f64, 100.0] {
        let (a, b) = paper_test_system(16, kappa, 7);
        let inverter = QsvtInverter::new(&a, 1e-3, QsvtMode::Emulation).unwrap();
        group.bench_function(format!("kappa_{kappa}"), |bench| {
            bench.iter(|| std::hint::black_box(inverter.solve_direction(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_circuit_mode_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsvt/circuit_mode_solve");
    group.sample_size(10);
    let (a, b) = paper_test_system(4, 2.0, 8);
    let inverter = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
    group.bench_function("kappa_2_n4_full_circuit", |bench| {
        bench.iter(|| std::hint::black_box(inverter.solve_direction(&b).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_phase_finding,
    bench_emulated_inversion,
    bench_circuit_mode_solve
);
criterion_main!(benches);
