//! Criterion micro-benchmarks of the dense linear-algebra substrate:
//! LU factorisation/solve, SVD, matrix generation and classical
//! mixed-precision iterative refinement (the CPU side of Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_bench::paper_test_system;
use qls_linalg::{ClassicalRefiner, LuFactorization, RefinementOptions, Svd};

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/lu");
    group.sample_size(20);
    for &n in &[16usize, 32, 64] {
        let (a, b) = paper_test_system(n, 100.0, 1);
        group.bench_with_input(BenchmarkId::new("factor+solve", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = LuFactorization::new(&a).unwrap();
                std::hint::black_box(lu.solve(&b).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/svd");
    group.sample_size(10);
    for &n in &[16usize, 32] {
        let (a, _) = paper_test_system(n, 100.0, 2);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(Svd::new(&a).cond()))
        });
    }
    group.finish();
}

fn bench_classical_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg/classical_mixed_precision_ir");
    group.sample_size(20);
    let (a, b) = paper_test_system(32, 100.0, 3);
    group.bench_function("f32_inner_solver_to_1e-12", |bench| {
        bench.iter(|| {
            let refiner = ClassicalRefiner::<f64, f32>::new(
                &a,
                RefinementOptions {
                    target_scaled_residual: 1e-12,
                    max_iterations: 20,
                    ..Default::default()
                },
            )
            .unwrap();
            std::hint::black_box(refiner.solve(&b).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lu, bench_svd, bench_classical_refinement);
criterion_main!(benches);
