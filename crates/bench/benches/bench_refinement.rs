//! Criterion benchmarks of the full hybrid solver (Algorithm 2), the workload
//! behind Figs. 3 and 4: end-to-end refinement runs at the paper's problem
//! size for several (κ, ε_l) settings, plus the HHL baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qls_bench::{experiment_rng, paper_test_system};
use qls_core::{HhlOptions, HhlSolver, HybridRefinementOptions, HybridRefiner};
use qls_linalg::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_hybrid_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/hybrid_refinement_fig3");
    group.sample_size(10);
    for &epsilon_l in &[1e-2f64, 1e-4] {
        let (a, b) = paper_test_system(16, 10.0, 9);
        let refiner = HybridRefiner::new(
            &a,
            HybridRefinementOptions {
                target_epsilon: 1e-11,
                epsilon_l,
                ..Default::default()
            },
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("kappa10_eps1e-11_eps_l", format!("{epsilon_l:.0e}")),
            &epsilon_l,
            |bench, _| {
                bench.iter(|| {
                    let mut rng = experiment_rng(1);
                    std::hint::black_box(refiner.solve(&b, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_large_kappa(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/hybrid_refinement_fig4");
    group.sample_size(10);
    let kappa = 100.0;
    let (a, b) = paper_test_system(16, kappa, 10);
    let refiner = HybridRefiner::new(
        &a,
        HybridRefinementOptions {
            target_epsilon: 1e-11,
            epsilon_l: 0.25 / kappa,
            ..Default::default()
        },
    )
    .unwrap();
    group.bench_function("kappa100", |bench| {
        bench.iter(|| {
            let mut rng = experiment_rng(2);
            std::hint::black_box(refiner.solve(&b, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_hhl_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/hhl_baseline");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let a = random_matrix_with_cond(
        4,
        4.0,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::SymmetricPositiveDefinite,
        &mut rng,
    );
    let b = qls_linalg::generate::random_unit_vector(4, &mut rng);
    let solver = HhlSolver::new(
        &a,
        HhlOptions {
            clock_qubits: 6,
            ..Default::default()
        },
    );
    group.bench_function("n4_clock6", |bench| {
        bench.iter(|| std::hint::black_box(solver.solve_direction(&b)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hybrid_refinement,
    bench_large_kappa,
    bench_hhl_baseline
);
criterion_main!(benches);
