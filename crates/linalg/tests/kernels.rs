//! Integration tests of the classical kernels the hybrid solver leans on:
//! LU with partial pivoting, Householder QR, prescribed-condition-number
//! matrix generation, and Brent minimisation.

use qls_linalg::generate::{
    random_matrix_with_cond, random_unit_vector, MatrixEnsemble, SingularValueDistribution,
};
use qls_linalg::{brent_minimize, cond_2, LuFactorization, Matrix, QrFactorization, Vector};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn test_matrix(n: usize, kappa: f64, seed: u64) -> Matrix<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    random_matrix_with_cond(
        n,
        kappa,
        SingularValueDistribution::Geometric,
        MatrixEnsemble::General,
        &mut rng,
    )
}

#[test]
fn lu_with_pivoting_reconstructs_the_original_matrix() {
    for (n, kappa, seed) in [(4usize, 3.0, 1u64), (16, 50.0, 2), (32, 1e4, 3)] {
        let a = test_matrix(n, kappa, seed);
        let lu = LuFactorization::new(&a).expect("well-conditioned matrix must factor");
        // `reconstruct` assembles Pᵀ L U, i.e. the round trip A = Pᵀ (L U).
        let round_trip = lu.reconstruct();
        let err = round_trip.max_abs_diff(&a);
        assert!(
            err < 1e-12 * a.norm_frobenius(),
            "PLU round-trip error {err} too large for n={n}, kappa={kappa}"
        );
    }
}

#[test]
fn lu_solve_gives_small_residual() {
    let n = 24;
    let a = test_matrix(n, 100.0, 7);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let x_true = random_unit_vector(n, &mut rng);
    let b = a.matvec(&x_true);
    let lu = LuFactorization::new(&a).unwrap();
    let x = lu.solve(&b).unwrap();
    let err = x.max_abs_diff(&x_true);
    assert!(err < 1e-10, "LU solve forward error {err}");
}

#[test]
fn qr_factor_is_orthogonal_and_reproduces_a() {
    for (n, seed) in [(8usize, 11u64), (20, 12)] {
        let a = test_matrix(n, 30.0, seed);
        let qr = QrFactorization::new(&a).expect("QR of a square matrix");
        let q = qr.q();
        let qtq = q.transpose().matmul(&q);
        let mut max_dev: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                max_dev = max_dev.max((qtq[(i, j)] - expected).abs());
            }
        }
        assert!(max_dev < 1e-13, "‖QᵀQ − I‖_max = {max_dev} for n={n}");

        let qr_product = q.matmul(&qr.r());
        let err = qr_product.max_abs_diff(&a);
        assert!(err < 1e-12, "QR reconstruction error {err} for n={n}");
    }
}

#[test]
fn generated_matrices_hit_the_requested_condition_number() {
    for (kappa, seed) in [(10.0f64, 21u64), (1e3, 22), (1e6, 23)] {
        let a = test_matrix(16, kappa, seed);
        let measured = cond_2(&a);
        assert!(
            (measured - kappa).abs() / kappa < 1e-6,
            "requested kappa={kappa}, measured {measured}"
        );
    }
}

#[test]
fn generated_matrices_support_all_distributions_and_ensembles() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for dist in [
        SingularValueDistribution::Geometric,
        SingularValueDistribution::Arithmetic,
        SingularValueDistribution::Clustered,
    ] {
        for ensemble in [
            MatrixEnsemble::General,
            MatrixEnsemble::SymmetricPositiveDefinite,
            MatrixEnsemble::SymmetricIndefinite,
        ] {
            let a = random_matrix_with_cond(8, 40.0, dist, ensemble, &mut rng);
            let measured = cond_2(&a);
            assert!(
                (measured - 40.0).abs() / 40.0 < 1e-6,
                "kappa off for {dist:?}/{ensemble:?}: {measured}"
            );
        }
    }
}

#[test]
fn brent_finds_the_minimum_of_a_known_quadratic() {
    // f(x) = 3 (x − 1.25)² + 0.5 has its minimum at x = 1.25, f = 0.5.
    let f = |x: f64| 3.0 * (x - 1.25).powi(2) + 0.5;
    let result = brent_minimize(f, -10.0, 10.0, 1e-12, 200);
    assert!(result.converged, "Brent failed to converge on a quadratic");
    assert!(
        (result.x - 1.25).abs() < 1e-8,
        "minimiser {} ≠ 1.25",
        result.x
    );
    assert!(
        (result.fx - 0.5).abs() < 1e-12,
        "minimum value {}",
        result.fx
    );
    // Parabolic interpolation should make this cheap.
    assert!(
        result.evaluations < 100,
        "Brent used {} evaluations on a quadratic",
        result.evaluations
    );
}

#[test]
fn brent_recovers_a_vector_norm_like_the_solver_does() {
    // Remark 2 use case: minimise ‖s·d − x‖² over the scale s for a fixed
    // direction d, which is exactly how the solver recovers ‖x‖.
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let d = random_unit_vector(16, &mut rng);
    let target_scale = 7.75;
    let x = d.scaled(target_scale);
    let objective = |s: f64| {
        let mut diff: Vector<f64> = d.scaled(s);
        diff.axpy(-1.0, &x);
        diff.norm2()
    };
    let result = brent_minimize(objective, 0.0, 100.0, 1e-12, 300);
    assert!((result.x - target_scale).abs() < 1e-6, "scale {}", result.x);
}
