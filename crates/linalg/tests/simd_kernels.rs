//! SIMD ↔ scalar bit-identity for the `qls-linalg` hot loops.
//!
//! The vectorized dense matvec, CSR SpMV and blocked matmul of
//! `qls_linalg::simd` assign one **output element per lane** and accumulate
//! in the scalar kernels' exact operation order, so `matvec` /
//! `SparseMatrix::matvec` / `matmul` must equal their `_scalar` oracles
//! **bit for bit** — on random shapes and on the adversarial CSR layouts
//! the ragged-lane padding exists for: empty rows, single-entry rows,
//! wildly uneven row lengths, and dimensions that are not lane multiples.

use proptest::prelude::*;
use qls_linalg::{Matrix, SparseMatrix, Vector};

/// Deterministic pseudo-random value in [-1, 1] from integer coordinates.
fn hash_val(i: usize, j: usize, seed: u64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((i as u64) << 32 | j as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % 2_000_001) as f64 / 1_000_000.0 - 1.0
}

fn test_vector(n: usize, seed: u64) -> Vector<f64> {
    (0..n).map(|i| hash_val(i, 7, seed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dense_matvec_is_bit_identical_to_the_scalar_oracle(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let a = Matrix::from_fn(rows, cols, |i, j| hash_val(i, j, seed));
        let x = test_vector(cols, seed.wrapping_add(3));
        let (fast, slow) = (a.matvec(&x), a.matvec_scalar(&x));
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn matmul_is_bit_identical_to_the_scalar_oracle(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let a = Matrix::from_fn(m, k, |i, j| hash_val(i, j, seed));
        let b = Matrix::from_fn(k, n, |i, j| hash_val(i, j, seed.wrapping_add(5)));
        let fast = a.matmul(&b);
        let slow = a.matmul_scalar(&b);
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn spmv_is_bit_identical_on_random_sparsity(
        n in 1usize..48,
        density in 0u64..100,
        seed in 0u64..10_000,
    ) {
        let dense = Matrix::from_fn(n, n, |i, j| {
            if (hash_val(i, j, seed.wrapping_add(1)).abs() * 100.0) as u64 <= density {
                hash_val(i, j, seed)
            } else {
                0.0
            }
        });
        let sparse = SparseMatrix::from_dense(&dense);
        let x = test_vector(n, seed.wrapping_add(11));
        let (fast, slow) = (sparse.matvec(&x), sparse.matvec_scalar(&x));
        prop_assert_eq!(fast.as_slice(), slow.as_slice());
    }
}

/// The ragged-lane cases the CSR kernel's `fma(0, 0, acc)` padding exists
/// for: a lane group mixing an empty row, a single-entry row, a full row
/// and a two-entry row, plus a trailing non-lane-multiple remainder.
#[test]
fn spmv_handles_adversarial_row_shapes_bit_identically() {
    let n = 11; // not a multiple of the 4-wide lane groups
    let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
    // Row 0: empty.  Row 1: single entry.  Row 2: full.  Row 3: two entries.
    triplets.push((1, 6, 2.5));
    for j in 0..n {
        triplets.push((2, j, hash_val(2, j, 42)));
    }
    triplets.push((3, 0, -1.0));
    triplets.push((3, n - 1, 4.0));
    // Rows 4..8: geometrically growing lengths (1, 2, 4, 8 entries).
    for (r, len) in (4..8).zip([1usize, 2, 4, 8]) {
        for j in 0..len {
            triplets.push((r, j, hash_val(r, j, 7)));
        }
    }
    // Rows 8..11: the remainder group — one empty, two ragged.
    triplets.push((9, 3, 0.5));
    triplets.push((10, 0, hash_val(10, 0, 9)));
    triplets.push((10, 5, hash_val(10, 5, 9)));
    let sparse = SparseMatrix::from_triplets(n, n, &triplets);
    let x = test_vector(n, 123);
    let (fast, slow) = (sparse.matvec(&x), sparse.matvec_scalar(&x));
    assert_eq!(fast.as_slice(), slow.as_slice());
    // And against the dense oracle: structural-zero skips are exact no-ops.
    let dense = sparse.to_dense().matvec_scalar(&x);
    assert_eq!(fast.as_slice(), dense.as_slice());
}

/// An all-empty matrix (every row length 0) must yield exact zeros.
#[test]
fn spmv_on_an_empty_matrix_is_exactly_zero() {
    let sparse = SparseMatrix::<f64>::from_triplets(9, 9, &[]);
    let x = test_vector(9, 77);
    let y = sparse.matvec(&x);
    assert!(y.as_slice().iter().all(|&v| v == 0.0));
    assert_eq!(y.as_slice(), sparse.matvec_scalar(&x).as_slice());
}
