//! Property tests of the structured-operator layer against the dense oracle.
//!
//! Whatever random matrix is drawn, the CSR / tridiagonal / stencil
//! implementations of [`LinearOperator`] must agree with the dense
//! materialisation — to 1e-12 in general, and *bit for bit* for the CSR and
//! stencil matvecs (they accumulate in the same column order with the same
//! fused multiply-adds, and skipping a structural zero is an exact no-op).
//! The triplet builder's merge/sort/empty-row handling is exercised
//! separately with adversarial inputs.

use proptest::prelude::*;
use qls_linalg::{
    poisson_2d, LinearOperator, Matrix, SparseMatrix, StencilOperator, TridiagonalMatrix, Vector,
};

/// Deterministic pseudo-random value in [-1, 1] from integer coordinates.
fn hash_val(i: usize, j: usize, seed: u64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((i as u64) << 32 | j as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % 2_000_001) as f64 / 1_000_000.0 - 1.0
}

fn random_sparse_dense_pair(
    n: usize,
    density_pct: u64,
    seed: u64,
) -> (SparseMatrix<f64>, Matrix<f64>) {
    let dense = Matrix::from_fn(n, n, |i, j| {
        if (hash_val(i, j, seed.wrapping_add(1)).abs() * 100.0) as u64 <= density_pct {
            hash_val(i, j, seed)
        } else {
            0.0
        }
    });
    (SparseMatrix::from_dense(&dense), dense)
}

fn test_vector(n: usize, seed: u64) -> Vector<f64> {
    (0..n).map(|i| hash_val(i, 7, seed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_matvec_agrees_with_dense_oracle(
        n in 1usize..24,
        density in 5u64..95,
        seed in 0u64..10_000,
    ) {
        let (sparse, dense) = random_sparse_dense_pair(n, density, seed);
        let x = test_vector(n, seed.wrapping_add(11));
        let y_sparse = sparse.matvec(&x);
        let y_dense = dense.matvec(&x);
        // 1e-12 agreement as the contract...
        prop_assert!((&y_sparse - &y_dense).norm2() < 1e-12);
        // ...and in fact bit-identity, because the accumulation order matches.
        prop_assert_eq!(y_sparse.as_slice(), y_dense.as_slice());
        let yt_sparse = sparse.matvec_transposed(&x);
        let yt_dense = dense.matvec_transposed(&x);
        prop_assert!((&yt_sparse - &yt_dense).norm2() < 1e-12);
        prop_assert_eq!(yt_sparse.as_slice(), yt_dense.as_slice());
    }

    #[test]
    fn tridiagonal_matvec_agrees_with_dense_oracle(
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let t = TridiagonalMatrix::new(
            (1..n).map(|i| hash_val(i, 0, seed)).collect(),
            (0..n).map(|i| hash_val(i, 1, seed)).collect(),
            (1..n).map(|i| hash_val(i, 2, seed)).collect(),
        );
        let d = t.to_dense();
        let x = test_vector(n, seed.wrapping_add(13));
        prop_assert!((&t.matvec(&x) - &d.matvec(&x)).norm2() < 1e-12);
        prop_assert!(
            (&t.matvec_transposed(&x) - &d.matvec_transposed(&x)).norm2() < 1e-12
        );
    }

    #[test]
    fn stencil_matvec_agrees_with_dense_oracle(
        nx in 1usize..8,
        ny in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let s = StencilOperator::new(
            nx,
            ny,
            hash_val(0, 0, seed),
            hash_val(0, 1, seed),
            hash_val(0, 2, seed),
        );
        let d = LinearOperator::to_dense(&s);
        let x = test_vector(nx * ny, seed.wrapping_add(17));
        let y_stencil = s.matvec(&x);
        let y_dense = d.matvec(&x);
        prop_assert!((&y_stencil - &y_dense).norm2() < 1e-12);
        prop_assert_eq!(y_stencil.as_slice(), y_dense.as_slice());
        // Symmetry: transposed application is the same map.
        let yt = LinearOperator::matvec_transposed(&s, &x);
        prop_assert_eq!(yt.as_slice(), y_stencil.as_slice());
    }

    #[test]
    fn triplet_builder_with_duplicates_and_shuffled_input_matches_dense(
        n in 2usize..12,
        seed in 0u64..10_000,
        extra in 0usize..20,
    ) {
        // Base pattern plus `extra` duplicated coordinates appended out of
        // order: the builder must sum duplicates onto the base entries.
        let (sparse, dense) = random_sparse_dense_pair(n, 40, seed);
        let mut triplets: Vec<(usize, usize, f64)> = sparse.iter_entries().collect();
        triplets.reverse(); // thoroughly unsorted input
        let mut expected = dense.clone();
        for k in 0..extra {
            let i = (hash_val(k, 3, seed).abs() * n as f64) as usize % n;
            let j = (hash_val(k, 4, seed).abs() * n as f64) as usize % n;
            let v = hash_val(k, 5, seed);
            triplets.push((i, j, v));
            expected[(i, j)] += v;
        }
        let rebuilt = SparseMatrix::from_triplets(n, n, &triplets);
        prop_assert!(rebuilt.to_dense().max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn operator_norms_agree_with_dense(
        n in 1usize..16,
        density in 10u64..90,
        seed in 0u64..10_000,
    ) {
        let (sparse, dense) = random_sparse_dense_pair(n, density, seed);
        prop_assert!(
            (LinearOperator::norm_inf(&sparse) - dense.norm_inf()).abs() < 1e-12
        );
        prop_assert!(
            (LinearOperator::norm_frobenius(&sparse) - dense.norm_frobenius()).abs()
                < 1e-12
        );
        prop_assert_eq!(LinearOperator::nnz(&sparse), sparse.nnz());
    }
}

#[test]
fn triplet_builder_empty_rows_and_columns() {
    // Only row 3 and column 1 are populated; everything else must behave as
    // structurally zero through the whole trait surface.
    let t = SparseMatrix::<f64>::from_triplets(6, 6, &[(3, 1, 2.5), (3, 4, -1.0)]);
    assert_eq!(t.nnz(), 2);
    let x = Vector::ones(6);
    assert_eq!(t.matvec(&x).as_slice(), &[0.0, 0.0, 0.0, 1.5, 0.0, 0.0]);
    let y = t.matvec_transposed(&x);
    assert_eq!(y.as_slice(), &[0.0, 2.5, 0.0, 0.0, -1.0, 0.0]);
    for i in 0..6 {
        if i != 3 {
            let (cols, vals) = t.row(i);
            assert!(cols.is_empty() && vals.is_empty());
        }
    }
}

#[test]
fn stencil_to_sparse_to_dense_chain_is_exact() {
    let s = poisson_2d::<f64>(6, 5, true);
    let via_sparse = s.to_sparse().to_dense();
    assert_eq!(via_sparse, LinearOperator::to_dense(&s));
    assert_eq!(s.to_sparse().nnz(), s.stencil_nnz());
}
