//! # qls-linalg
//!
//! Classical dense linear-algebra substrate for the mixed-precision
//! quantum-classical linear solver.
//!
//! The paper ("A mixed-precision quantum-classical algorithm for solving
//! linear systems", Koska–Baboulin–Gazda) relies on a classical processor for
//! several tasks: computing residuals and solution updates in high precision,
//! generating test matrices with prescribed condition numbers, recovering the
//! solution norm with Brent's method, and providing a reference solver (LU)
//! against which the hybrid solver is validated.  This crate provides all of
//! that, from scratch:
//!
//! * generic [`Real`](scalar::Real) scalar abstraction over `f32`, `f64` and a
//!   software-emulated reduced precision ([`Emulated`](precision::Emulated)),
//!   so the classical mixed-precision regime `u ≪ u_l` of the paper can be
//!   reproduced deterministically;
//! * dense [`Matrix`](matrix::Matrix) and [`Vector`](vector::Vector) types with
//!   the usual kernels (mat-vec, mat-mat, transpose, norms);
//! * the structured-operator layer ([`operator`]): the
//!   [`LinearOperator`](operator::LinearOperator) trait with five
//!   implementations — dense [`Matrix`](matrix::Matrix), CSR
//!   [`SparseMatrix`](sparse::SparseMatrix) (triplet builder, parallel
//!   row-partitioned SpMV), [`TridiagonalMatrix`](tridiag::TridiagonalMatrix),
//!   the matrix-free [`StencilOperator`](stencil::StencilOperator)
//!   (Kronecker-sum Laplacians, e.g. 2-D Poisson) and its d-dimensional
//!   generalisation [`StencilNd`](stencil::StencilNd) (3-D Poisson and
//!   beyond) — so residuals, refinement and condition estimation run at
//!   O(nnz) on structured problems, with dense retained as the default and as
//!   the equivalence oracle;
//! * the structured inner-solver layer ([`inner`]): the
//!   [`FactorizableOperator`](inner::FactorizableOperator) trait maps each
//!   operator to its natural low-precision correction solver — dense LU for
//!   [`Matrix`](matrix::Matrix), the O(N) Thomas factorisation (with pivot
//!   breakdown detection and dense-LU rescue) for
//!   [`TridiagonalMatrix`](tridiag::TridiagonalMatrix), and matrix-free
//!   Jacobi-preconditioned CG / BiCGSTAB for CSR and stencil operators — so
//!   no classical refinement path densifies an O(N²) matrix above the
//!   small-N fallback threshold
//!   ([`DENSIFY_FALLBACK_MAX`](inner::DENSIFY_FALLBACK_MAX));
//! * LU factorisation with partial pivoting ([`lu`]), Householder QR ([`qr`]),
//!   one-sided Jacobi SVD ([`svd`]) and condition-number computation ([`cond`],
//!   including the matrix-free Lanczos estimate
//!   [`cond_2_estimate`](cond::cond_2_estimate), robust on clustered spectra
//!   where the legacy power iteration
//!   [`cond_2_estimate_power`](cond::cond_2_estimate_power) stalls);
//! * matrix generators ([`generate`]): random matrices with prescribed
//!   condition number / singular-value distribution, the 1-D Poisson
//!   tridiagonal matrix of Eq. (7) of the paper, the 2-D Poisson stencil
//!   ([`poisson_2d`](stencil::poisson_2d)) and sparse graph Laplacians;
//! * classical fixed- and mixed-precision iterative refinement ([`refine`],
//!   Algorithm 1 of the paper, operator-generic) used as the CPU-only
//!   baseline;
//! * Brent's derivative-free 1-D minimisation and root finding ([`brent`]),
//!   used for the solution-norm recovery of Remark 2;
//! * forward/backward error metrics and the scaled residual ω ([`error`],
//!   operator-generic).

pub mod brent;
pub mod cond;
pub mod error;
pub mod generate;
pub mod inner;
pub mod lu;
pub mod matrix;
pub mod operator;
pub mod precision;
pub mod qr;
pub mod refine;
pub mod scalar;
mod simd;
pub mod sparse;
pub mod stencil;
pub mod svd;
pub mod tridiag;
pub mod vector;

pub use brent::{brent_minimize, brent_root, BrentResult};
pub use cond::{cond_1_estimate, cond_2, cond_2_estimate, cond_2_estimate_power, cond_inf};
pub use error::{backward_error, forward_error, scaled_residual};
pub use generate::{
    convection_diffusion_1d, convection_diffusion_2d, graph_laplacian, random_connected_graph,
    random_matrix_with_cond, random_unit_vector, shifted_graph_laplacian, MatrixEnsemble,
    SingularValueDistribution,
};
pub use inner::{
    BiCgStabSolver, ConjugateGradientSolver, DenseLuSolver, FactorizableOperator, InnerSolver,
    InnerSolverKind, ThomasFactorization, DENSIFY_FALLBACK_MAX,
};
pub use lu::LuFactorization;
pub use matrix::Matrix;
pub use operator::LinearOperator;
pub use precision::{Emulated, Precision};
pub use qr::QrFactorization;
pub use refine::{ClassicalRefiner, RefinementHistory, RefinementOptions, RefinementStatus};
pub use scalar::Real;
pub use sparse::SparseMatrix;
pub use stencil::{
    poisson_2d, poisson_2d_condition_number, poisson_2d_eigenvalues, poisson_2d_rhs, poisson_3d,
    poisson_3d_condition_number, poisson_3d_rhs, poisson_nd, poisson_nd_condition_number,
    StencilNd, StencilOperator,
};
pub use svd::Svd;
pub use tridiag::{
    poisson_1d, poisson_1d_condition_number, poisson_1d_eigenvalues, TridiagonalMatrix,
};
pub use vector::Vector;
