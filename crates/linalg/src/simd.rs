//! SIMD (`f64x4`) kernels for the crate's three hot loops: dense matvec,
//! CSR SpMV and the dense matrix product.
//!
//! # Lane convention: one **output** element per lane
//!
//! Every kernel here assigns each vector lane its own output element (an
//! output row for the matvecs, an output column within a row for `matmul`)
//! and accumulates that element in exactly the scalar kernel's operation
//! order: ascending column / ascending `k`, one fused multiply-add per
//! term, no horizontal reductions.  Splitting one row's sum across lanes
//! and reducing at the end would be faster on long rows but reassociates
//! the sum; this layout keeps every SIMD result **bit-identical** to the
//! scalar oracle (`matvec_scalar` / `matmul_scalar`), which in turn keeps
//! the crate-wide invariant that dense, CSR, tridiagonal and stencil
//! operators all produce bit-identical products.
//!
//! # Remainder convention
//!
//! Rows are processed in groups of [`LANES`] (= 4); a trailing group of
//! fewer than 4 rows falls back to the scalar loop (identical results, so
//! the split point is unobservable).  Inside `matmul`'s row-sweep the
//! columns are chunked by 4 with a scalar tail.  The CSR kernel handles
//! ragged rows by padding short lanes with `fma(0, 0, acc)`, which is an
//! exact no-op (`acc` is never `-0.0`: it starts at `+0.0` and an fma can
//! only produce `-0.0` from a `-0.0` addend), so empty rows, single-entry
//! rows and rows of wildly different lengths all stay bit-identical to the
//! scalar fold.
//!
//! # Dispatch
//!
//! On the x86-64 baseline target (SSE2) a lane-wise `f64::mul_add` lowers
//! to a libm call, which is *slower* than scalar code.  Each kernel is
//! therefore compiled twice — once at the baseline, once inside an
//! `#[target_feature(enable = "avx2,fma")]` clone where the same body
//! becomes packed 256-bit `vfmadd` loops — and dispatched at runtime via
//! the cached [`wide::runtime::avx2_fma_available`] check.  Both versions
//! execute the same IEEE operations in the same order, so the dispatch is
//! also unobservable in the results.  Non-`f64` precisions (`f32`,
//! `Emulated`) never reach these kernels: the public entry points test
//! `TypeId` and fall back to the scalar path.

use crate::scalar::Real;
use core::any::TypeId;
use wide::f64x4;

/// Lane width of the SIMD kernels (output rows per group).
pub(crate) const LANES: usize = 4;

/// True when the scalar type `T` is exactly `f64` (the only precision with
/// a SIMD path; everything else uses the scalar oracles).
#[inline(always)]
pub(crate) fn is_f64<T: Real>() -> bool {
    TypeId::of::<T>() == TypeId::of::<f64>()
}

/// Reinterpret a `&[T]` whose `T` is statically known to be `f64`.
#[inline(always)]
pub(crate) fn as_f64<T: Real>(s: &[T]) -> &[f64] {
    debug_assert!(is_f64::<T>());
    // SAFETY: caller checked `T == f64` via `is_f64`; same layout, same len.
    unsafe { core::slice::from_raw_parts(s.as_ptr().cast::<f64>(), s.len()) }
}

/// Mutable variant of [`as_f64`].
#[inline(always)]
pub(crate) fn as_f64_mut<T: Real>(s: &mut [T]) -> &mut [f64] {
    debug_assert!(is_f64::<T>());
    // SAFETY: caller checked `T == f64` via `is_f64`; same layout, same len.
    unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<f64>(), s.len()) }
}

/// Generate the baseline + `avx2,fma` clones of a kernel body and a public
/// dispatcher that picks at runtime (see the module docs: both clones run
/// the identical operation sequence, only the instruction encoding differs).
macro_rules! multiversioned {
    ($(#[$meta:meta])* $name:ident => $body:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        $(#[$meta])*
        pub(crate) fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2,fma")]
                unsafe fn accelerated($($arg: $ty),*) {
                    $body($($arg),*)
                }
                if ::wide::runtime::avx2_fma_available() {
                    // SAFETY: avx2+fma presence verified on this CPU.
                    return unsafe { accelerated($($arg),*) };
                }
            }
            $body($($arg),*)
        }
    };
}

// ---------------------------------------------------------------------------
// Dense matvec: `a` holds `out.len()` consecutive row-major rows of width
// `cols`; lane `l` of a group accumulates output row `4g + l`.
// ---------------------------------------------------------------------------

#[inline(always)]
fn dense_matvec_body(a: &[f64], cols: usize, x: &[f64], out: &mut [f64]) {
    let mut base = 0usize;
    let mut groups = out.chunks_exact_mut(LANES);
    for group in &mut groups {
        let rows = &a[base..base + LANES * cols];
        let (r0, rest) = rows.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, r3) = rest.split_at(cols);
        let mut acc = f64x4::ZERO;
        for j in 0..cols {
            let col = f64x4::new([r0[j], r1[j], r2[j], r3[j]]);
            acc = col.mul_add(f64x4::splat(x[j]), acc);
        }
        group.copy_from_slice(acc.as_array_ref());
        base += LANES * cols;
    }
    for o in groups.into_remainder() {
        let row = &a[base..base + cols];
        *o = row
            .iter()
            .zip(x)
            .fold(0.0f64, |acc, (&a, &b)| a.mul_add(b, acc));
        base += cols;
    }
}

multiversioned! {
    /// `out[i] = Σ_j a[i][j]·x[j]` for the block of rows stored in `a`,
    /// bit-identical to the scalar row fold.
    dense_matvec => dense_matvec_body(a: &[f64], cols: usize, x: &[f64], out: &mut [f64])
}

// ---------------------------------------------------------------------------
// CSR SpMV: lane `l` of a group accumulates output row `row0 + 4g + l`; the
// group sweeps entry positions `t = 0..max_row_len`, padding exhausted lanes
// with the exact no-op `fma(0, 0, acc)`.
// ---------------------------------------------------------------------------

#[inline(always)]
fn spmv_body(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    out: &mut [f64],
    row0: usize,
) {
    let rows = out.len();
    let mut i = 0usize;
    while i + LANES <= rows {
        let mut starts = [0usize; LANES];
        let mut lens = [0usize; LANES];
        let mut max_len = 0usize;
        for l in 0..LANES {
            let r = row0 + i + l;
            starts[l] = row_ptr[r];
            lens[l] = row_ptr[r + 1] - row_ptr[r];
            max_len = max_len.max(lens[l]);
        }
        let mut acc = f64x4::ZERO;
        for t in 0..max_len {
            let mut v = [0.0f64; LANES];
            let mut xv = [0.0f64; LANES];
            for l in 0..LANES {
                if t < lens[l] {
                    let p = starts[l] + t;
                    v[l] = values[p];
                    xv[l] = x[col_idx[p]];
                }
            }
            acc = f64x4::new(v).mul_add(f64x4::new(xv), acc);
        }
        out[i..i + LANES].copy_from_slice(acc.as_array_ref());
        i += LANES;
    }
    while i < rows {
        let span = row_ptr[row0 + i]..row_ptr[row0 + i + 1];
        out[i] = col_idx[span.clone()]
            .iter()
            .zip(&values[span])
            .fold(0.0f64, |acc, (&c, &v)| v.mul_add(x[c], acc));
        i += 1;
    }
}

multiversioned! {
    /// CSR rows `row0 .. row0 + out.len()` into `out`, bit-identical to the
    /// scalar per-row fold (ragged lanes padded with exact no-op fmas).
    spmv => spmv_body(
        row_ptr: &[usize],
        col_idx: &[usize],
        values: &[f64],
        x: &[f64],
        out: &mut [f64],
        row0: usize,
    )
}

// ---------------------------------------------------------------------------
// Dense matmul row-block: `a_rows` holds the block's rows of A (width `k`),
// `out` the matching rows of C (width `n`).  ikj order with `k` blocked so a
// KB×n panel of B stays cache-hot across every row of the block; within one
// output element the `k` sweep is still strictly ascending, so the result is
// bit-identical to the scalar ikj kernel (including its `a == 0` skip).
// ---------------------------------------------------------------------------

/// Rows of B per cache block: 64 rows × 1024 columns × 8 bytes = 512 KiB
/// worst case, sized so that typical panels (n ≤ 512) fit in L2 while the
/// block loop stays negligible for the tiny matrices the paper uses.
const MATMUL_K_BLOCK: usize = 64;

#[inline(always)]
fn matmul_block_body(a_rows: &[f64], k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    debug_assert!(n > 0, "caller guards empty output");
    let rows = out.len() / n;
    let mut kb = 0usize;
    while kb < k {
        let kend = (kb + MATMUL_K_BLOCK).min(k);
        for i in 0..rows {
            let arow = &a_rows[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in kb..kend {
                let aval = arow[kk];
                if aval == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let av = f64x4::splat(aval);
                let mut oc = orow.chunks_exact_mut(LANES);
                let mut bc = brow.chunks_exact(LANES);
                for (o4, b4) in (&mut oc).zip(&mut bc) {
                    av.mul_add(f64x4::from_slice(b4), f64x4::from_slice(o4))
                        .write_to_slice(o4);
                }
                for (o, &bv) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
                    *o = aval.mul_add(bv, *o);
                }
            }
        }
        kb = kend;
    }
}

multiversioned! {
    /// One row-block of `C += A·B` (C rows in `out`, zero-initialised by the
    /// caller), bit-identical to the scalar ikj kernel.
    matmul_block => matmul_block_body(a_rows: &[f64], k: usize, b: &[f64], n: usize, out: &mut [f64])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_matvec(a: &[f64], rows: usize, cols: usize, x: &[f64]) -> Vec<f64> {
        (0..rows)
            .map(|i| {
                a[i * cols..(i + 1) * cols]
                    .iter()
                    .zip(x)
                    .fold(0.0f64, |acc, (&a, &b)| a.mul_add(b, acc))
            })
            .collect()
    }

    #[test]
    fn dense_matvec_bit_identical_across_remainders() {
        // Rows 1..=9 cover every remainder class against LANES = 4.
        for rows in 1..=9usize {
            for cols in [0usize, 1, 3, 4, 7] {
                let a: Vec<f64> = (0..rows * cols)
                    .map(|i| ((i * 37 + 11) % 19) as f64 / 19.0 - 0.4)
                    .collect();
                let x: Vec<f64> = (0..cols).map(|j| ((j * 23) % 13) as f64 / 13.0).collect();
                let mut out = vec![0.0f64; rows];
                dense_matvec(&a, cols, &x, &mut out);
                assert_eq!(out, scalar_matvec(&a, rows, cols, &x), "{rows}x{cols}");
            }
        }
    }

    #[test]
    fn spmv_padding_is_exact_on_ragged_rows() {
        // Rows: empty, 1 entry, 5 entries, 2 entries, empty, 3 entries —
        // exercising the pad lanes and the scalar tail (6 rows = 4 + 2).
        let row_ptr = [0usize, 0, 1, 6, 8, 8, 11];
        let col_idx = [2usize, 0, 1, 2, 3, 4, 1, 4, 0, 2, 3];
        let values: Vec<f64> = (0..11).map(|i| (i as f64 - 4.5) / 3.0).collect();
        let x: Vec<f64> = (0..5).map(|i| (i as f64 + 0.25) / 2.0).collect();
        let mut out = vec![0.0f64; 6];
        spmv(&row_ptr, &col_idx, &values, &x, &mut out, 0);
        for i in 0..6 {
            let span = row_ptr[i]..row_ptr[i + 1];
            let want = col_idx[span.clone()]
                .iter()
                .zip(&values[span])
                .fold(0.0f64, |acc, (&c, &v)| v.mul_add(x[c], acc));
            assert_eq!(out[i], want, "row {i}");
        }
    }

    #[test]
    fn matmul_block_matches_scalar_ikj() {
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 64 + 3, 9),
            (6, 130, 4),
        ] {
            let a: Vec<f64> = (0..m * k)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        (i % 7) as f64 - 3.0
                    }
                })
                .collect();
            let b: Vec<f64> = (0..k * n).map(|i| ((i * 3) % 11) as f64 / 11.0).collect();
            let mut out = vec![0.0f64; m * n];
            matmul_block(&a, k, &b, n, &mut out);
            let mut want = vec![0.0f64; m * n];
            for i in 0..m {
                for kk in 0..k {
                    let av = a[i * k + kk];
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        want[i * n + j] = av.mul_add(b[kk * n + j], want[i * n + j]);
                    }
                }
            }
            assert_eq!(out, want, "{m}x{k}x{n}");
        }
    }
}
