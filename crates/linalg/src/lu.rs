//! LU factorisation with partial pivoting.
//!
//! The classical reference solver used throughout the reproduction: it provides
//! the "exact" solution against which the hybrid QSVT + iterative-refinement
//! solver is compared, and it is the low-precision inner solver of the
//! classical mixed-precision baseline (Algorithm 1 of the paper), where the
//! factors computed at precision `u_l` are reused for every correction solve.

use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::vector::Vector;

/// Error returned when a factorisation or solve cannot be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular to working precision (zero pivot encountered).
    Singular {
        /// Index of the elimination step where the zero pivot appeared.
        step: usize,
    },
    /// The matrix is not square.
    NotSquare,
    /// Dimensions of operands do not match.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { step } => {
                write!(f, "matrix is singular to working precision (pivot {step})")
            }
            LinalgError::NotSquare => write!(f, "matrix is not square"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// An LU factorisation `P A = L U` with partial (row) pivoting.
///
/// `L` is unit lower triangular and `U` upper triangular; both are stored
/// packed in a single matrix.  The permutation is stored as a row-index map.
#[derive(Debug, Clone)]
pub struct LuFactorization<T: Real> {
    /// Packed L (strictly lower, unit diagonal implicit) and U (upper).
    lu: Matrix<T>,
    /// `perm[i]` = original row index that ended up in position `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (determines the sign of the determinant).
    swaps: usize,
}

impl<T: Real> LuFactorization<T> {
    /// Factorise a square matrix with partial pivoting.
    ///
    /// Returns an error if a pivot is exactly zero, i.e. the matrix is
    /// singular at the working precision.
    pub fn new(a: &Matrix<T>) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0usize;

        for k in 0..n {
            // Find the pivot: the largest magnitude entry in column k at or below row k.
            let mut piv_row = k;
            let mut piv_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = i;
                }
            }
            if piv_val == T::zero() {
                return Err(LinalgError::Singular { step: k });
            }
            if piv_row != k {
                lu.swap_rows(piv_row, k);
                perm.swap(piv_row, k);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == T::zero() {
                    continue;
                }
                for j in (k + 1)..n {
                    let u_kj = lu[(k, j)];
                    lu[(i, j)] = (-factor).mul_add(u_kj, lu[(i, j)]);
                }
            }
        }
        Ok(LuFactorization { lu, perm, swaps })
    }

    /// Order of the factorised matrix.
    pub fn order(&self) -> usize {
        self.lu.nrows()
    }

    /// Solve `A x = b` using the stored factors.
    pub fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        // Apply the permutation: y = P b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        // Forward substitution with unit lower triangular L.
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s = (-self.lu[(i, j)]).mul_add(y[j], s);
            }
            y[i] = s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s = (-self.lu[(i, j)]).mul_add(y[j], s);
            }
            y[i] = s / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solve `Aᵀ x = b` using the stored factors (`Aᵀ = Uᵀ Lᵀ P`).
    pub fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut y = b.clone();
        // Forward substitution with Uᵀ (lower triangular with U's diagonal).
        for i in 0..n {
            let mut s = y[i];
            for j in 0..i {
                s = (-self.lu[(j, i)]).mul_add(y[j], s);
            }
            y[i] = s / self.lu[(i, i)];
        }
        // Back substitution with Lᵀ (unit upper triangular).
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s = (-self.lu[(j, i)]).mul_add(y[j], s);
            }
            y[i] = s;
        }
        // Undo the permutation: x = Pᵀ y.
        let mut x = Vector::zeros(n);
        for i in 0..n {
            x[self.perm[i]] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> T {
        let n = self.order();
        let mut det = if self.swaps.is_multiple_of(2) {
            T::one()
        } else {
            -T::one()
        };
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix (solves against all basis vectors).
    pub fn inverse(&self) -> Result<Matrix<T>, LinalgError> {
        let n = self.order();
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::basis(n, j);
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
        }
        Ok(inv)
    }

    /// Reconstruct `A = Pᵀ L U` (mainly for tests / verification).
    pub fn reconstruct(&self) -> Matrix<T> {
        let n = self.order();
        let mut l = Matrix::identity(n);
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i > j {
                    l[(i, j)] = self.lu[(i, j)];
                } else {
                    u[(i, j)] = self.lu[(i, j)];
                }
            }
        }
        let plu = l.matmul(&u);
        // Undo the permutation on the rows: row perm[i] of A is row i of LU.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let src = plu.row(i).to_vec();
            a.row_mut(self.perm[i]).copy_from_slice(&src);
        }
        a
    }

    /// The growth factor `max|u_ij| / max|a_ij|`, a classical stability indicator.
    pub fn growth_factor(&self, original: &Matrix<T>) -> T {
        let mut umax = T::zero();
        let n = self.order();
        for i in 0..n {
            for j in i..n {
                umax = umax.max(self.lu[(i, j)].abs());
            }
        }
        let amax = original.norm_max();
        if amax == T::zero() {
            T::zero()
        } else {
            umax / amax
        }
    }
}

/// Convenience function: factorise and solve in one call.
pub fn lu_solve<T: Real>(a: &Matrix<T>, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
    LuFactorization::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn example3() -> Matrix<f64> {
        Matrix::from_f64_slice(3, 3, &[2.0, 1.0, 1.0, 4.0, -6.0, 0.0, -2.0, 7.0, 2.0])
    }

    #[test]
    fn solves_known_system() {
        let a = example3();
        let b = Vector::from_f64_slice(&[5.0, -2.0, 9.0]);
        let x = lu_solve(&a, &b).unwrap();
        let expected = [1.0, 1.0, 2.0];
        for i in 0..3 {
            assert!((x[i] - expected[i]).abs() < 1e-12, "x = {:?}", x.as_slice());
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = example3();
        let f = LuFactorization::new(&a).unwrap();
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-13);
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let f = LuFactorization::new(&a).unwrap();
        assert!((f.determinant() + 2.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = example3();
        let inv = LuFactorization::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn transposed_solve() {
        let a = example3();
        let b = Vector::from_f64_slice(&[1.0, 2.0, 3.0]);
        let f = LuFactorization::new(&a).unwrap();
        let x = f.solve_transposed(&b).unwrap();
        let residual = &a.transpose().matvec(&x) - &b;
        assert!(residual.norm2() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            LuFactorization::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn not_square_detected() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            LuFactorization::new(&a),
            Err(LinalgError::NotSquare)
        ));
    }

    #[test]
    fn random_systems_solved_accurately() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for &n in &[4usize, 8, 16, 32] {
            let a = random_matrix_with_cond(
                n,
                50.0,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let xtrue =
                Vector::from_f64_slice(&(0..n).map(|i| (i as f64).sin() + 1.0).collect::<Vec<_>>());
            let b = a.matvec(&xtrue);
            let x = lu_solve(&a, &b).unwrap();
            let err = (&x - &xtrue).norm2() / xtrue.norm2();
            assert!(err < 1e-10, "n={n} err={err}");
        }
    }

    #[test]
    fn f32_factorisation_works() {
        let a: Matrix<f32> = example3().convert();
        let b = Vector::<f32>::from_f64_slice(&[5.0, -2.0, 9.0]);
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-5);
        assert!((x[2] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn growth_factor_is_modest_for_random_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = random_matrix_with_cond(
            16,
            10.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let f = LuFactorization::new(&a).unwrap();
        let g = f.growth_factor(&a);
        assert!(g.is_finite() && g < 100.0);
    }
}
