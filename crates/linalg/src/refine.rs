//! Classical mixed-precision iterative refinement (Algorithm 1 of the paper).
//!
//! This is the CPU-only counterpart of the paper's hybrid algorithm: the
//! expensive work (LU factorisation and the triangular solves) runs at a *low*
//! precision `L`, while the residual and the solution update are computed at
//! the *working* precision `H` (`u ≪ u_l` in the paper's notation).  The LU
//! factors computed for the first solve are reused for every correction solve,
//! exactly as described in Section II-B.
//!
//! The same driver also covers *fixed-precision* refinement (`L = H`), used
//! classically to stabilise a solver, and serves as the reference
//! implementation against which the quantum-assisted refiner of `qls-core`
//! is validated: both must exhibit the geometric residual contraction of
//! Theorem III.1 with the appropriate contraction factor.

use crate::error::scaled_residual;
use crate::inner::{FactorizableOperator, InnerSolver, InnerSolverKind};
use crate::lu::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::vector::Vector;

/// Options controlling an iterative-refinement run.
#[derive(Debug, Clone, Copy)]
pub struct RefinementOptions {
    /// Target scaled residual ω = ‖b − A x̃‖/‖b‖ (the paper's ε).
    pub target_scaled_residual: f64,
    /// Hard cap on the number of refinement iterations.
    pub max_iterations: usize,
    /// Stop early when the scaled residual stops decreasing by at least this
    /// multiplicative factor between iterations (stagnation detection).
    pub stagnation_factor: f64,
}

impl Default for RefinementOptions {
    fn default() -> Self {
        RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 50,
            stagnation_factor: 0.9,
        }
    }
}

/// Why the refinement loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefinementStatus {
    /// The target scaled residual was reached.
    Converged,
    /// The maximum number of iterations was reached first.
    MaxIterations,
    /// The scaled residual stopped improving (limiting accuracy reached).
    Stagnated,
    /// The residual grew — the low-precision solver is too inaccurate
    /// (ε_l·κ ≥ 1 in the language of Theorem III.1).
    Diverged,
}

/// Record of one refinement iteration.
#[derive(Debug, Clone, Copy)]
pub struct RefinementStep {
    /// Iteration index (0 = initial solve).
    pub iteration: usize,
    /// Scaled residual after this iteration.
    pub scaled_residual: f64,
    /// Norm of the correction applied at this iteration (0 for the initial solve).
    pub correction_norm: f64,
}

/// Full convergence history of a refinement run.
#[derive(Debug, Clone)]
pub struct RefinementHistory {
    /// Per-iteration records, starting with the initial solve.
    pub steps: Vec<RefinementStep>,
    /// Termination reason.
    pub status: RefinementStatus,
}

impl RefinementHistory {
    /// Number of *refinement* iterations performed (excludes the initial solve).
    pub fn iterations(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// The final scaled residual.
    pub fn final_residual(&self) -> f64 {
        self.steps
            .last()
            .map(|s| s.scaled_residual)
            .unwrap_or(f64::NAN)
    }

    /// The per-iteration contraction factors ω_{i+1}/ω_i.
    pub fn contraction_factors(&self) -> Vec<f64> {
        self.steps
            .windows(2)
            .map(|w| {
                if w[0].scaled_residual == 0.0 {
                    0.0
                } else {
                    w[1].scaled_residual / w[0].scaled_residual
                }
            })
            .collect()
    }

    /// True if the scaled residual decreased monotonically until the end
    /// (allowing the final step to flatten once limiting accuracy is reached).
    pub fn is_monotone(&self) -> bool {
        self.steps
            .windows(2)
            .all(|w| w[1].scaled_residual <= w[0].scaled_residual * (1.0 + 1e-12))
    }
}

/// Classical mixed-precision iterative refinement driver.
///
/// Type parameters: `H` is the working (high) precision used for the residual
/// and the update; `L` is the low precision used for the inner correction
/// solves; `Op` is the operator representation of `A` used on the
/// high-precision side (dense [`Matrix`] by default, so existing callers
/// compile unchanged — pass a [`crate::SparseMatrix`],
/// [`crate::TridiagonalMatrix`], [`crate::StencilOperator`] or
/// [`crate::StencilNd`] to make every residual cost O(nnz)).
///
/// The inner solver is selected by the operator itself through
/// [`FactorizableOperator::factorize`]: dense matrices keep dense LU,
/// tridiagonal matrices get the O(N) Thomas factorisation (with dense-LU
/// rescue on pivot breakdown), and CSR / stencil operators get matrix-free
/// Jacobi-CG or BiCGSTAB above the small-N densify threshold — so **no
/// structured refinement path materialises an O(N²) matrix**.  The dense-LU
/// inner solver remains available at any size through
/// [`ClassicalRefiner::with_dense_lu`], the equivalence oracle the structured
/// histories are validated against.
pub struct ClassicalRefiner<H: Real, L: Real, Op: FactorizableOperator<H> = Matrix<H>> {
    a_high: Op,
    inner_low: Box<dyn InnerSolver<L>>,
    options: RefinementOptions,
    // `H` is only mentioned through the `Op: FactorizableOperator<H>` bound,
    // which does not count as a use for variance purposes.
    _high_precision: std::marker::PhantomData<H>,
}

impl<H: Real, L: Real, Op: FactorizableOperator<H> + std::fmt::Debug> std::fmt::Debug
    for ClassicalRefiner<H, L, Op>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassicalRefiner")
            .field("a_high", &self.a_high)
            .field("inner_low", &self.inner_low.kind())
            .field("options", &self.options)
            .finish()
    }
}

impl<H: Real, L: Real, Op: FactorizableOperator<H>> ClassicalRefiner<H, L, Op> {
    /// Prepare a refiner: stores `A` (as the operator `Op`) at precision `H`
    /// and builds the operator's structured inner solver once at precision
    /// `L` (see [`FactorizableOperator::factorize`] for the selection table).
    pub fn new(a: &Op, options: RefinementOptions) -> Result<Self, LinalgError> {
        let inner_low = a.factorize::<L>()?;
        Ok(ClassicalRefiner {
            a_high: a.clone(),
            inner_low,
            options,
            _high_precision: std::marker::PhantomData,
        })
    }

    /// Prepare a refiner that forces the **dense-LU** inner solver regardless
    /// of the operator's structure — the equivalence oracle (and the densify
    /// baseline the structured solvers are benchmarked against).
    pub fn with_dense_lu(a: &Op, options: RefinementOptions) -> Result<Self, LinalgError> {
        let inner_low = a.factorize_dense_lu::<L>()?;
        Ok(ClassicalRefiner {
            a_high: a.clone(),
            inner_low,
            options,
            _high_precision: std::marker::PhantomData,
        })
    }

    /// Which inner solver `factorize` selected for the correction solves.
    pub fn inner_kind(&self) -> InnerSolverKind {
        self.inner_low.kind()
    }

    /// The options this refiner was built with.
    pub fn options(&self) -> &RefinementOptions {
        &self.options
    }

    /// The high-precision operator the residuals are computed against.
    pub fn operator(&self) -> &Op {
        &self.a_high
    }

    /// Solve `A x = b` by low-precision LU + high-precision refinement,
    /// returning the solution at precision `H` and the convergence history.
    pub fn solve(&self, b: &Vector<H>) -> Result<(Vector<H>, RefinementHistory), LinalgError> {
        let n = self.a_high.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        // Initial solve at low precision.
        let b_low: Vector<L> = b.convert();
        let x_low = self.inner_low.solve(&b_low)?;
        let mut x: Vector<H> = x_low.convert();

        let mut steps = Vec::new();
        let omega0 = scaled_residual(&self.a_high, &x, b).to_f64();
        steps.push(RefinementStep {
            iteration: 0,
            scaled_residual: omega0,
            correction_norm: 0.0,
        });

        let mut status = RefinementStatus::MaxIterations;
        let mut prev_omega = omega0;
        if omega0 <= self.options.target_scaled_residual {
            status = RefinementStatus::Converged;
            return Ok((x, RefinementHistory { steps, status }));
        }

        for it in 1..=self.options.max_iterations {
            // Residual in high precision.
            let r = b - &self.a_high.matvec(&x);
            // Correction solve in low precision (reusing the factors).
            let r_low: Vector<L> = r.convert();
            let e_low = self.inner_low.solve(&r_low)?;
            let e: Vector<H> = e_low.convert();
            // Update in high precision.
            x += &e;

            let omega = scaled_residual(&self.a_high, &x, b).to_f64();
            steps.push(RefinementStep {
                iteration: it,
                scaled_residual: omega,
                correction_norm: e.norm2().to_f64(),
            });

            if omega <= self.options.target_scaled_residual {
                status = RefinementStatus::Converged;
                break;
            }
            if omega > prev_omega * 2.0 {
                status = RefinementStatus::Diverged;
                break;
            }
            if omega > prev_omega * self.options.stagnation_factor {
                status = RefinementStatus::Stagnated;
                break;
            }
            prev_omega = omega;
        }
        Ok((x, RefinementHistory { steps, status }))
    }
}

/// Theoretical iteration bound of Theorem III.1:
/// `⌈log(ε) / log(ε_l κ)⌉` iterations suffice to reach scaled residual ε when
/// each inner solve has relative accuracy ε_l and the matrix has condition
/// number κ (requires `ε_l κ < 1`).
pub fn iteration_bound(epsilon: f64, epsilon_l: f64, kappa: f64) -> Option<usize> {
    let contraction = epsilon_l * kappa;
    if contraction.is_nan() || contraction <= 0.0 || contraction >= 1.0 {
        return None;
    }
    if epsilon.is_nan() || epsilon <= 0.0 || epsilon >= 1.0 {
        return None;
    }
    // Guard against floating-point noise pushing an exact integer ratio (e.g.
    // log(1e-11)/log(1e-1) = 11) just above the next integer before ceil().
    let ratio = epsilon.ln() / contraction.ln();
    Some((ratio - 1e-9).ceil() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use crate::precision::Emulated;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_system(n: usize, kappa: f64, seed: u64) -> (Matrix<f64>, Vector<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let x_true =
            Vector::from_f64_slice(&(0..n).map(|i| ((i + 1) as f64).sin()).collect::<Vec<_>>());
        let b = a.matvec(&x_true);
        (a, b, x_true)
    }

    #[test]
    fn f32_low_precision_reaches_f64_accuracy() {
        let (a, b, x_true) = test_system(32, 100.0, 51);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-14,
            max_iterations: 20,
            ..Default::default()
        };
        let refiner = ClassicalRefiner::<f64, f32>::new(&a, opts).unwrap();
        let (x, hist) = refiner.solve(&b).unwrap();
        assert_eq!(hist.status, RefinementStatus::Converged);
        assert!(hist.final_residual() <= 1e-14);
        assert!(crate::error::forward_error(&x, &x_true) < 1e-12);
        // The first (single-precision-only) residual is far worse than the final one.
        assert!(hist.steps[0].scaled_residual > 1e-9);
    }

    #[test]
    fn half_precision_needs_more_iterations_than_single() {
        let (a, b, _x) = test_system(16, 10.0, 52);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 40,
            ..Default::default()
        };
        let single = ClassicalRefiner::<f64, f32>::new(&a, opts).unwrap();
        let half = ClassicalRefiner::<f64, Emulated<10>>::new(&a, opts).unwrap();
        let (_, h_single) = single.solve(&b).unwrap();
        let (_, h_half) = half.solve(&b).unwrap();
        assert_eq!(h_single.status, RefinementStatus::Converged);
        assert_eq!(h_half.status, RefinementStatus::Converged);
        assert!(
            h_half.iterations() >= h_single.iterations(),
            "half {} vs single {}",
            h_half.iterations(),
            h_single.iterations()
        );
    }

    #[test]
    fn fixed_precision_refinement_is_a_single_step_noop_at_convergence() {
        let (a, b, _x) = test_system(16, 10.0, 53);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-14,
            max_iterations: 5,
            ..Default::default()
        };
        let refiner = ClassicalRefiner::<f64, f64>::new(&a, opts).unwrap();
        let (_, hist) = refiner.solve(&b).unwrap();
        // Full-precision LU already gives ~1e-15, so at most one refinement step.
        assert!(hist.iterations() <= 1);
        assert_eq!(hist.status, RefinementStatus::Converged);
    }

    #[test]
    fn residual_contracts_geometrically() {
        let (a, b, _x) = test_system(24, 50.0, 54);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-15,
            max_iterations: 30,
            stagnation_factor: 0.99,
        };
        let refiner = ClassicalRefiner::<f64, Emulated<14>>::new(&a, opts).unwrap();
        let (_, hist) = refiner.solve(&b).unwrap();
        assert!(hist.is_monotone(), "history: {:?}", hist.steps);
        // All contraction factors before the limiting-accuracy plateau are < 1/2.
        let factors = hist.contraction_factors();
        assert!(factors
            .iter()
            .take(factors.len().saturating_sub(1))
            .all(|&f| f < 0.5));
    }

    #[test]
    fn iteration_count_respects_theorem_bound() {
        // For classical IR the inner-solve accuracy is eps_l ~ c * u_l * kappa; take
        // the measured first residual as a proxy for eps_l * kappa and check that the
        // bound with that contraction factor covers the measured iteration count.
        let (a, b, _x) = test_system(16, 30.0, 55);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 50,
            ..Default::default()
        };
        let refiner = ClassicalRefiner::<f64, f32>::new(&a, opts).unwrap();
        let (_, hist) = refiner.solve(&b).unwrap();
        assert_eq!(hist.status, RefinementStatus::Converged);
        let contraction = hist.steps[0].scaled_residual; // ≈ eps_l * kappa
        let bound = iteration_bound(opts.target_scaled_residual, contraction, 1.0).unwrap();
        assert!(
            hist.iterations() <= bound,
            "iterations {} exceed bound {bound}",
            hist.iterations()
        );
    }

    #[test]
    fn too_low_precision_diverges_or_stagnates() {
        // 3 mantissa bits cannot factor a kappa=1000 matrix meaningfully.
        let (a, b, _x) = test_system(16, 1000.0, 56);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-12,
            max_iterations: 10,
            ..Default::default()
        };
        match ClassicalRefiner::<f64, Emulated<3>>::new(&a, opts) {
            Err(_) => {} // singular at 3 bits: acceptable
            Ok(refiner) => {
                let (_, hist) = refiner.solve(&b).unwrap();
                assert_ne!(hist.status, RefinementStatus::Converged);
            }
        }
    }

    #[test]
    fn sparse_operator_refiner_matches_dense_bit_for_bit() {
        // The CSR matvec accumulates in the same column order as the dense
        // kernel, so the whole refinement history is float-identical.
        let (a, b, _x) = test_system(24, 50.0, 58);
        let sparse = crate::sparse::SparseMatrix::from_dense(&a);
        let opts = RefinementOptions {
            target_scaled_residual: 1e-13,
            max_iterations: 20,
            ..Default::default()
        };
        let dense_refiner = ClassicalRefiner::<f64, f32>::new(&a, opts).unwrap();
        let sparse_refiner =
            ClassicalRefiner::<f64, f32, crate::sparse::SparseMatrix<f64>>::new(&sparse, opts)
                .unwrap();
        let (x_dense, h_dense) = dense_refiner.solve(&b).unwrap();
        let (x_sparse, h_sparse) = sparse_refiner.solve(&b).unwrap();
        assert_eq!(h_dense.status, h_sparse.status);
        assert_eq!(h_dense.steps.len(), h_sparse.steps.len());
        assert_eq!(x_dense.as_slice(), x_sparse.as_slice());
        for (d, s) in h_dense.steps.iter().zip(&h_sparse.steps) {
            assert_eq!(d.scaled_residual, s.scaled_residual);
        }
    }

    #[test]
    fn iteration_bound_formula() {
        // eps = 1e-11, eps_l*kappa = 1e-1 -> 11 iterations.
        assert_eq!(iteration_bound(1e-11, 1e-2, 10.0), Some(11));
        // Non-contracting case returns None.
        assert_eq!(iteration_bound(1e-11, 0.2, 10.0), None);
        assert_eq!(iteration_bound(1e-11, 0.0, 10.0), None);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (a, _b, _x) = test_system(8, 10.0, 57);
        let refiner = ClassicalRefiner::<f64, f32>::new(&a, RefinementOptions::default()).unwrap();
        let bad = Vector::<f64>::zeros(9);
        assert!(refiner.solve(&bad).is_err());
    }
}
