//! Householder QR factorisation.
//!
//! Used in two places: (i) generating random orthogonal matrices for the
//! prescribed-condition-number test matrices of Section IV of the paper
//! (QR of a Gaussian matrix yields a Haar-distributed orthogonal factor), and
//! (ii) solving least-squares problems, since the QSVT pseudo-inverse also
//! covers non-square systems.

use crate::lu::LinalgError;
use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::vector::Vector;

/// A Householder QR factorisation `A = Q R` with `A` of size m×n, m ≥ n.
///
/// The Householder vectors are stored below the diagonal of the packed matrix
/// and `R` on and above the diagonal, as in LAPACK's `geqrf`.
#[derive(Debug, Clone)]
pub struct QrFactorization<T: Real> {
    qr: Matrix<T>,
    /// The scalar `tau_k` of each Householder reflector `H_k = I - tau v vᵀ`.
    tau: Vec<T>,
}

impl<T: Real> QrFactorization<T> {
    /// Factorise an m×n matrix (m ≥ n) into `Q R`.
    pub fn new(a: &Matrix<T>) -> Result<Self, LinalgError> {
        let m = a.nrows();
        let n = a.ncols();
        if m < n {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut qr = a.clone();
        let mut tau = vec![T::zero(); n];

        for k in 0..n.min(m.saturating_sub(1).max(n)) {
            if k >= m - 1 && k < n {
                // Last row: nothing below the diagonal to eliminate.
                tau[k] = T::zero();
                continue;
            }
            // Compute the norm of the column below (and including) the diagonal.
            let mut normx = T::zero();
            {
                let mut maxabs = T::zero();
                for i in k..m {
                    maxabs = maxabs.max(qr[(i, k)].abs());
                }
                if maxabs != T::zero() {
                    let mut s = T::zero();
                    for i in k..m {
                        let v = qr[(i, k)] / maxabs;
                        s = v.mul_add(v, s);
                    }
                    normx = maxabs * s.sqrt();
                }
            }
            if normx == T::zero() {
                tau[k] = T::zero();
                continue;
            }
            // Choose the sign to avoid cancellation.
            let alpha = if qr[(k, k)] >= T::zero() {
                -normx
            } else {
                normx
            };
            // v = x - alpha e1, normalised so v[k] = 1.
            let v0 = qr[(k, k)] - alpha;
            tau[k] = -v0 / alpha; // tau = (alpha - x0)/alpha = -v0/alpha
            let inv_v0 = T::one() / v0;
            for i in (k + 1)..m {
                qr[(i, k)] *= inv_v0;
            }
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns: A := (I - tau v vᵀ) A.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s = qr[(i, k)].mul_add(qr[(i, j)], s);
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] = (-s).mul_add(vik, qr[(i, j)]);
                }
            }
        }
        Ok(QrFactorization { qr, tau })
    }

    /// Number of rows of the original matrix.
    pub fn nrows(&self) -> usize {
        self.qr.nrows()
    }

    /// Number of columns of the original matrix.
    pub fn ncols(&self) -> usize {
        self.qr.ncols()
    }

    /// The upper-triangular factor `R` (n×n).
    pub fn r(&self) -> Matrix<T> {
        let n = self.ncols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Apply `Qᵀ` to a vector of length m.
    pub fn apply_qt(&self, b: &Vector<T>) -> Vector<T> {
        let m = self.nrows();
        let n = self.ncols();
        assert_eq!(b.len(), m, "apply_qt: dimension mismatch");
        let mut y = b.clone();
        for k in 0..n {
            if self.tau[k] == T::zero() {
                continue;
            }
            // s = vᵀ y with v = [1, qr[k+1.., k]]
            let mut s = y[k];
            for i in (k + 1)..m {
                s = self.qr[(i, k)].mul_add(y[i], s);
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                let vik = self.qr[(i, k)];
                y[i] = (-s).mul_add(vik, y[i]);
            }
        }
        y
    }

    /// Apply `Q` to a vector of length m.
    pub fn apply_q(&self, b: &Vector<T>) -> Vector<T> {
        let m = self.nrows();
        let n = self.ncols();
        assert_eq!(b.len(), m, "apply_q: dimension mismatch");
        let mut y = b.clone();
        for k in (0..n).rev() {
            if self.tau[k] == T::zero() {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s = self.qr[(i, k)].mul_add(y[i], s);
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                let vik = self.qr[(i, k)];
                y[i] = (-s).mul_add(vik, y[i]);
            }
        }
        y
    }

    /// The explicit m×m orthogonal factor `Q` (thin usage should prefer
    /// [`apply_q`](Self::apply_q)).
    pub fn q(&self) -> Matrix<T> {
        let m = self.nrows();
        let mut q = Matrix::zeros(m, m);
        for j in 0..m {
            let e = Vector::basis(m, j);
            let col = self.apply_q(&e);
            q.set_col(j, &col);
        }
        q
    }

    /// Solve the least-squares problem `min ‖A x - b‖₂` (for square `A`, the
    /// linear system).  Fails if `R` is singular.
    pub fn solve_least_squares(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        let n = self.ncols();
        if b.len() != self.nrows() {
            return Err(LinalgError::DimensionMismatch);
        }
        let y = self.apply_qt(b);
        // Back substitution on the leading n×n block of R.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let rii = self.qr[(i, i)];
            if rii == T::zero() {
                return Err(LinalgError::Singular { step: i });
            }
            let mut s = y[i];
            for j in (i + 1)..n {
                s = (-self.qr[(i, j)]).mul_add(x[j], s);
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn q_is_orthogonal_and_qr_reconstructs() {
        let a = random_matrix(6, 6, 1);
        let f = QrFactorization::new(&a).unwrap();
        let q = f.q();
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(6)) < 1e-12);
        // Q R = A (square case: Q is 6x6, R is 6x6).
        let qr = q.matmul(&f.r());
        assert!(qr.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rectangular_reconstruction() {
        let a = random_matrix(8, 5, 2);
        let f = QrFactorization::new(&a).unwrap();
        let q = f.q();
        let r_full = {
            // Embed R (5x5) into an 8x5 upper-trapezoidal matrix.
            let mut rf = Matrix::<f64>::zeros(8, 5);
            let r = f.r();
            for i in 0..5 {
                for j in 0..5 {
                    rf[(i, j)] = r[(i, j)];
                }
            }
            rf
        };
        let qr = q.matmul(&r_full);
        assert!(qr.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn solves_square_system() {
        let a = random_matrix(10, 10, 3);
        let xtrue = Vector::from_f64_slice(&(0..10).map(|i| i as f64 - 4.5).collect::<Vec<_>>());
        let b = a.matvec(&xtrue);
        let x = QrFactorization::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        assert!((&x - &xtrue).norm2() < 1e-10);
    }

    #[test]
    fn least_squares_residual_orthogonal_to_range() {
        let a = random_matrix(12, 4, 4);
        let b = Vector::from_f64_slice(&(0..12).map(|i| (i as f64).cos()).collect::<Vec<_>>());
        let x = QrFactorization::new(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        let r = &b - &a.matvec(&x);
        // Normal equations: Aᵀ r ≈ 0.
        let atr = a.matvec_transposed(&r);
        assert!(
            atr.norm2() < 1e-10,
            "normal equation residual {}",
            atr.norm2()
        );
    }

    #[test]
    fn apply_q_and_qt_are_inverses() {
        let a = random_matrix(7, 7, 5);
        let f = QrFactorization::new(&a).unwrap();
        let v = Vector::from_f64_slice(&(0..7).map(|i| (i * i) as f64).collect::<Vec<_>>());
        let w = f.apply_qt(&f.apply_q(&v));
        assert!((&w - &v).norm2() < 1e-12);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::<f64>::zeros(2, 5);
        assert!(QrFactorization::new(&a).is_err());
    }
}
