//! Error metrics for computed solutions of linear systems.
//!
//! The paper's stopping criterion is the *scaled residual*
//! `ω = ‖b − A x̃‖ / ‖b‖` (Section III-A), chosen because it is invariant to a
//! common rescaling of `A x` and `b` — exactly what happens when quantum
//! algorithms force `b` to be normalised.  Equation (5) sandwiches the relative
//! forward error between `ω/κ` and `κ ω`; these bounds are implemented here as
//! well so tests and experiment reports can verify the claim numerically.

use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::vector::Vector;

/// The scaled residual `ω = ‖b − A x̃‖₂ / ‖b‖₂` of a computed solution.
///
/// Generic over [`LinearOperator`], so the residual costs O(nnz) on sparse or
/// matrix-free operators (dense [`crate::Matrix`] callers are unchanged).
pub fn scaled_residual<T: Real, Op: LinearOperator<T>>(a: &Op, x: &Vector<T>, b: &Vector<T>) -> T {
    let r = b - &a.matvec(x);
    let nb = b.norm2();
    if nb == T::zero() {
        r.norm2()
    } else {
        r.norm2() / nb
    }
}

/// Relative forward error `‖x − x̃‖₂ / ‖x‖₂` with respect to a reference
/// solution `x_true`.
pub fn forward_error<T: Real>(x_computed: &Vector<T>, x_true: &Vector<T>) -> T {
    let nx = x_true.norm2();
    let diff = (x_computed - x_true).norm2();
    if nx == T::zero() {
        diff
    } else {
        diff / nx
    }
}

/// Norm-wise relative backward error of Rigal–Gaches:
/// `η(x̃) = ‖b − A x̃‖ / (‖A‖·‖x̃‖ + ‖b‖)`.
///
/// A solution is "backward stable" when η is of the order of the working
/// precision, regardless of the conditioning of `A`.
pub fn backward_error<T: Real, Op: LinearOperator<T>>(a: &Op, x: &Vector<T>, b: &Vector<T>) -> T {
    let r = b - &a.matvec(x);
    let denom = a.norm_frobenius() * x.norm2() + b.norm2();
    if denom == T::zero() {
        r.norm2()
    } else {
        r.norm2() / denom
    }
}

/// The two-sided bound of Eq. (5) of the paper:
/// `ω/κ ≤ ‖x − x̃‖/‖x‖ ≤ κ ω`, returned as `(lower, upper)`.
pub fn forward_error_bounds_from_residual<T: Real>(omega: T, kappa: T) -> (T, T) {
    (omega / kappa, kappa * omega)
}

/// Verify Eq. (5) for a concrete triple `(A, x̃, b)` with known true solution:
/// returns `true` when the relative forward error lies inside `[ω/κ·(1−slack),
/// κ·ω·(1+slack)]`.  A small slack tolerates rounding in the norm computations.
pub fn check_eq5_bounds<T: Real, Op: LinearOperator<T>>(
    a: &Op,
    x_computed: &Vector<T>,
    x_true: &Vector<T>,
    b: &Vector<T>,
    kappa: T,
    slack: T,
) -> bool {
    let omega = scaled_residual(a, x_computed, b);
    let fwd = forward_error(x_computed, x_true);
    let (lo, hi) = forward_error_bounds_from_residual(omega, kappa);
    fwd >= lo * (T::one() - slack) && fwd <= hi * (T::one() + slack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::cond_2;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use crate::lu::lu_solve;
    use crate::matrix::Matrix;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exact_solution_has_zero_residual_and_error() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[2.0, 0.0, 0.0, 3.0]);
        let x = Vector::from_f64_slice(&[1.0, 2.0]);
        let b = a.matvec(&x);
        assert_eq!(scaled_residual(&a, &x, &b), 0.0);
        assert_eq!(forward_error(&x, &x), 0.0);
        assert_eq!(backward_error(&a, &x, &b), 0.0);
    }

    #[test]
    fn residual_scale_invariance() {
        // omega is unchanged when A x = b is rescaled to (cA) x = (cb).
        let a = Matrix::from_f64_slice(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let x = Vector::from_f64_slice(&[0.9, 1.1]); // inexact solution
        let b = Vector::from_f64_slice(&[3.0, 7.0]);
        let w1 = scaled_residual(&a, &x, &b);
        let c = 1e-3;
        let w2 = scaled_residual(&a.scaled(c), &x, &b.scaled(c));
        assert!((w1 - w2).abs() < 1e-15);
    }

    #[test]
    fn eq5_bounds_hold_for_lu_solutions() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for &kappa in &[10.0, 100.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let x_true =
                Vector::from_f64_slice(&(0..16).map(|i| (i as f64).cos()).collect::<Vec<_>>());
            let b = a.matvec(&x_true);
            // Perturb the LU solution slightly to make the bound non-trivial.
            let mut x = lu_solve(&a, &b).unwrap();
            x[0] += 1e-6;
            let k = cond_2(&a);
            assert!(check_eq5_bounds(&a, &x, &x_true, &b, k, 1e-6));
        }
    }

    #[test]
    fn backward_error_small_for_stable_solver() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let a = random_matrix_with_cond(
            32,
            1e6,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let x_true = Vector::from_f64_slice(&(0..32).map(|i| 1.0 + i as f64).collect::<Vec<_>>());
        let b = a.matvec(&x_true);
        let x = lu_solve(&a, &b).unwrap();
        // Even for kappa = 1e6 the backward error of LU stays near machine eps.
        assert!(backward_error(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn zero_rhs_handled() {
        let a = Matrix::<f64>::identity(3);
        let x = Vector::from_f64_slice(&[1.0, 0.0, 0.0]);
        let b = Vector::zeros(3);
        assert_eq!(scaled_residual(&a, &x, &b), 1.0);
    }
}
