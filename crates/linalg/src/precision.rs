//! Software-emulated reduced-precision floating point.
//!
//! Mixed-precision iterative refinement (Algorithm 1 of the paper and the
//! Carson–Higham three-precision framework it cites) needs a *low* precision
//! `u_l` that is much coarser than the working precision `u`.  On commodity
//! hardware only `f32`/`f64` are available natively, so this module provides
//! [`Emulated<P>`]: an `f64`-backed value that is re-rounded to `P` bits of
//! mantissa after every arithmetic operation.  This reproduces the rounding
//! behaviour of half precision (`P = 10`), bfloat16 (`P = 7`), or any custom
//! format, and lets the classical baseline explore the same
//! accuracy/iteration-count trade-off that the quantum solver explores through
//! its solver tolerance ε_l.

use crate::scalar::Real;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Round `x` to `p` explicit mantissa bits (round-to-nearest-even), keeping the
/// exponent range of `f64`.
///
/// `p` counts the stored fraction bits, so the format has `p + 1` significand
/// bits including the implicit leading one, and unit roundoff `2^-(p+1)`.
#[inline]
pub fn round_to_mantissa_bits(x: f64, p: u32) -> f64 {
    if !x.is_finite() || x == 0.0 {
        return x;
    }
    debug_assert!(p < 52, "use f64 directly for 52 or more mantissa bits");
    let bits = x.to_bits();
    let shift = 52 - p;
    let mask: u64 = (1u64 << shift) - 1;
    let tail = bits & mask;
    let truncated = bits & !mask;
    let halfway = 1u64 << (shift - 1);
    // Round to nearest, ties to even on the kept last bit.
    let rounded = if tail > halfway || (tail == halfway && (truncated >> shift) & 1 == 1) {
        truncated.wrapping_add(1u64 << shift)
    } else {
        truncated
    };
    f64::from_bits(rounded)
}

/// Description of a floating-point precision, used by the cost/accuracy reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Number of explicit mantissa (fraction) bits.
    pub mantissa_bits: u32,
    /// Unit roundoff `u = 2^-(mantissa_bits + 1)`.
    pub unit_roundoff: f64,
    /// Human-readable name.
    pub name: &'static str,
}

impl Precision {
    /// IEEE double precision (binary64).
    pub const F64: Precision = Precision {
        mantissa_bits: 52,
        unit_roundoff: 1.1102230246251565e-16,
        name: "f64",
    };
    /// IEEE single precision (binary32).
    pub const F32: Precision = Precision {
        mantissa_bits: 23,
        unit_roundoff: 5.960464477539063e-8,
        name: "f32",
    };
    /// IEEE half precision (binary16) — emulated.
    pub const F16: Precision = Precision {
        mantissa_bits: 10,
        unit_roundoff: 4.8828125e-4,
        name: "f16 (emulated)",
    };
    /// bfloat16 — emulated.
    pub const BF16: Precision = Precision {
        mantissa_bits: 7,
        unit_roundoff: 3.90625e-3,
        name: "bf16 (emulated)",
    };

    /// Build a custom precision with `p` mantissa bits.
    pub fn custom(p: u32) -> Precision {
        Precision {
            mantissa_bits: p,
            unit_roundoff: 2f64.powi(-(p as i32) - 1),
            name: "custom (emulated)",
        }
    }
}

/// A software-emulated floating-point value with `P` explicit mantissa bits.
///
/// Every arithmetic operation is performed in `f64` and immediately re-rounded
/// to `P` bits, which models a format of unit roundoff `2^-(P+1)` with the
/// exponent range of `f64` (overflow/underflow of narrow exponent ranges is
/// out of scope for the paper's analysis, which only depends on `u_l`).
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Emulated<const P: u32>(f64);

impl<const P: u32> Emulated<P> {
    /// Wrap an `f64`, rounding it to the emulated precision.
    #[inline]
    pub fn new(x: f64) -> Self {
        Emulated(round_to_mantissa_bits(x, P))
    }
    /// The underlying (already rounded) `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
    /// The [`Precision`] descriptor of this format.
    pub fn precision() -> Precision {
        Precision::custom(P)
    }
}

/// Emulated IEEE half precision.
pub type Half = Emulated<10>;
/// Emulated bfloat16.
pub type BFloat16 = Emulated<7>;

impl<const P: u32> fmt::Debug for Emulated<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Emulated<{}>({})", P, self.0)
    }
}

impl<const P: u32> fmt::Display for Emulated<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u32> Add for Emulated<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Emulated::new(self.0 + rhs.0)
    }
}
impl<const P: u32> Sub for Emulated<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Emulated::new(self.0 - rhs.0)
    }
}
impl<const P: u32> Mul for Emulated<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Emulated::new(self.0 * rhs.0)
    }
}
impl<const P: u32> Div for Emulated<P> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Emulated::new(self.0 / rhs.0)
    }
}
impl<const P: u32> Neg for Emulated<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Emulated(-self.0)
    }
}
impl<const P: u32> AddAssign for Emulated<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<const P: u32> SubAssign for Emulated<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<const P: u32> MulAssign for Emulated<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<const P: u32> DivAssign for Emulated<P> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}
impl<const P: u32> Sum for Emulated<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Emulated::new(0.0), |acc, x| acc + x)
    }
}

impl<const P: u32> Real for Emulated<P> {
    #[inline]
    fn zero() -> Self {
        Emulated(0.0)
    }
    #[inline]
    fn one() -> Self {
        Emulated(1.0)
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Emulated::new(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        2f64.powi(-(P as i32) - 1)
    }
    #[inline]
    fn abs(self) -> Self {
        Emulated(self.0.abs())
    }
    #[inline]
    fn sqrt(self) -> Self {
        Emulated::new(self.0.sqrt())
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        Emulated(self.0.max(other.0))
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        Emulated(self.0.min(other.0))
    }
    fn format_name() -> String {
        format!("emulated<{} mantissa bits>", P)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_keeps_exactly_representable_values() {
        for &x in &[1.0, -2.0, 0.5, 0.75, 1024.0, 0.0] {
            assert_eq!(round_to_mantissa_bits(x, 10), x);
        }
    }

    #[test]
    fn rounding_matches_f32_when_p_is_23() {
        let xs = [std::f64::consts::PI, 1.0 / 3.0, 1e-7, 123456.789, -0.1];
        for &x in &xs {
            let emulated = round_to_mantissa_bits(x, 23);
            let native = x as f32 as f64;
            assert_eq!(emulated, native, "mismatch for {x}");
        }
    }

    #[test]
    fn rounding_error_bounded_by_unit_roundoff() {
        let p = 10u32;
        let u = 2f64.powi(-(p as i32) - 1);
        let mut x = 0.123456789;
        for _ in 0..100 {
            let r = round_to_mantissa_bits(x, p);
            assert!(((r - x) / x).abs() <= u * (1.0 + 1e-12), "x={x} r={r}");
            x *= 1.37;
        }
    }

    #[test]
    fn ties_round_to_even() {
        // With p = 2 the representable values around 1.0 step by 0.25.
        // 1.125 is exactly halfway between 1.0 and 1.25 -> rounds to 1.0 (even last bit).
        assert_eq!(round_to_mantissa_bits(1.125, 2), 1.0);
        // 1.375 is halfway between 1.25 and 1.5 -> rounds to 1.5 (even last bit).
        assert_eq!(round_to_mantissa_bits(1.375, 2), 1.5);
    }

    #[test]
    fn emulated_arithmetic_rounds_each_op() {
        type H = Emulated<10>;
        let a = H::new(1.0);
        let b = H::new(2f64.powi(-12)); // below half-precision resolution at 1.0
        let c = a + b;
        assert_eq!(c.get(), 1.0, "tiny addend must be absorbed");
        // But f64 would keep it:
        assert!(1.0 + 2f64.powi(-12) > 1.0);
    }

    #[test]
    fn emulated_real_trait_roundoff() {
        assert_eq!(<Half as Real>::unit_roundoff(), 2f64.powi(-11));
        assert_eq!(<BFloat16 as Real>::unit_roundoff(), 2f64.powi(-8));
    }

    #[test]
    fn precision_constants_consistent() {
        assert_eq!(Precision::F64.unit_roundoff, 2f64.powi(-53));
        assert_eq!(Precision::F32.unit_roundoff, 2f64.powi(-24));
        assert_eq!(Precision::F16.unit_roundoff, 2f64.powi(-11));
        assert_eq!(Precision::BF16.unit_roundoff, 2f64.powi(-8));
        assert_eq!(
            Precision::custom(10).unit_roundoff,
            Precision::F16.unit_roundoff
        );
    }

    #[test]
    fn sum_is_rounded() {
        type B = Emulated<7>;
        let xs: Vec<B> = (0..1000).map(|_| B::new(0.001)).collect();
        let s: B = xs.into_iter().sum();
        // bf16 accumulation of 1000 * 0.001 stagnates once the addend falls below
        // half a unit in the last place of the running sum (at 0.5), far from the
        // exact value 1.0 — that error is precisely what the test demonstrates.
        assert!(s.get() >= 0.25 && s.get() <= 1.0);
    }
}
