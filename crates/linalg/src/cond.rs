//! Condition number computation and estimation.
//!
//! The convergence of the paper's mixed-precision refinement is governed by
//! the product ε_l·κ (Theorem III.1), so both exact condition numbers (via the
//! SVD, used for the small test matrices) and cheap estimates (Hager–Higham
//! 1-norm estimation, usable at scale from an LU factorisation) are provided.

use crate::lu::{LinalgError, LuFactorization};
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::svd::Svd;
use crate::vector::Vector;

/// Exact 2-norm condition number κ₂(A) = σ_max/σ_min computed from the SVD.
pub fn cond_2<T: Real>(a: &Matrix<T>) -> T {
    Svd::new(a).cond()
}

/// ∞-norm condition number κ_∞(A) = ‖A‖_∞ ‖A⁻¹‖_∞ computed from the explicit
/// inverse (intended for small matrices / validation).
pub fn cond_inf<T: Real>(a: &Matrix<T>) -> Result<T, LinalgError> {
    let inv = LuFactorization::new(a)?.inverse()?;
    Ok(a.norm_inf() * inv.norm_inf())
}

/// Hager–Higham estimator of ‖A⁻¹‖₁ from an existing LU factorisation, giving
/// a 1-norm condition-number estimate `‖A‖₁ · est(‖A⁻¹‖₁)` in O(N²) per
/// iteration instead of the O(N³) required to form the inverse.
pub fn cond_1_estimate<T: Real>(a: &Matrix<T>, lu: &LuFactorization<T>) -> Result<T, LinalgError> {
    let n = a.nrows();
    if n == 0 {
        return Ok(T::zero());
    }
    // Hager's algorithm: maximise ‖A⁻¹ x‖₁ over the unit 1-norm ball.
    let mut x = Vector::from_vec(vec![T::one() / T::from_f64(n as f64); n]);
    let mut est = T::zero();
    for _iter in 0..5 {
        let y = lu.solve(&x)?;
        est = y.norm1();
        // xi = sign(y)
        let xi: Vector<T> = y
            .iter()
            .map(|&v| if v >= T::zero() { T::one() } else { -T::one() })
            .collect();
        let z = lu.solve_transposed(&xi)?;
        // Find the index of the largest |z_j|.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, T::zero()), |(ja, za), (j, &v)| {
                if v.abs() > za {
                    (j, v.abs())
                } else {
                    (ja, za)
                }
            });
        let ztx = z.dot(&x);
        if zmax <= ztx.abs() {
            break;
        }
        x = Vector::basis(n, jmax);
    }
    Ok(a.norm_1() * est)
}

/// Matrix-free 2-norm condition-number estimate for any [`LinearOperator`],
/// using only matvecs — O(nnz) per iteration, no SVD, no factorisation.
///
/// `σ_max` comes from power iteration on `AᵀA`; `σ_min` from power iteration
/// on the **shifted** operator `σ_max²·I − AᵀA`, whose dominant eigenvector
/// is the minimal singular direction (the spectrum of `AᵀA` lies in
/// `[σ_min², σ_max²]`).  Both loops stop when the Rayleigh quotient changes
/// by less than `tol` relatively, or after `max_iterations` matvec pairs.
///
/// The result is an *estimate*: under-converged iterations bias `σ_max` low
/// and `σ_min` high, so the returned value is typically a slight
/// **under-estimate** of κ₂ — the safe direction for the ε_l·κ < 1
/// convergence check of Theorem III.1 is to add margin on top.  The start
/// vectors are deterministic, so the estimate is reproducible.
pub fn cond_2_estimate<Op: LinearOperator<f64>>(a: &Op, max_iterations: usize, tol: f64) -> f64 {
    assert!(a.is_square(), "cond_2_estimate needs a square operator");
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    let normalise = |v: &mut Vector<f64>| v.normalize();
    let ata = |v: &Vector<f64>| a.matvec_transposed(&a.matvec(v));

    // Deterministic, strictly positive start vector (cannot be orthogonal to
    // a nonnegative dominant eigenvector, and generic enough in practice).
    let mut v: Vector<f64> = (0..n).map(|i| 1.5 + (i as f64 + 1.0).sin()).collect();
    normalise(&mut v);
    let mut lambda_max = 0.0f64;
    for _ in 0..max_iterations {
        let mut w = ata(&v);
        let rho = v.dot(&w);
        let norm = normalise(&mut w);
        if norm == 0.0 {
            return if lambda_max == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let converged = (rho - lambda_max).abs() <= tol * rho.abs();
        v = w;
        lambda_max = rho;
        if converged {
            break;
        }
    }
    if lambda_max <= 0.0 {
        return 0.0;
    }

    // Shifted power iteration for the bottom of the spectrum.
    let shift = lambda_max;
    let mut w: Vector<f64> = (0..n).map(|i| 1.5 + (2.0 * i as f64 + 1.0).cos()).collect();
    normalise(&mut w);
    let mut mu = 0.0f64;
    for _ in 0..max_iterations {
        let bw = ata(&w);
        let mut z: Vector<f64> = w
            .iter()
            .zip(bw.iter())
            .map(|(&wi, &bi)| shift * wi - bi)
            .collect();
        let rho = w.dot(&z);
        let norm = normalise(&mut z);
        if norm == 0.0 {
            // shift·I − AᵀA annihilates w: the spectrum is (numerically) a
            // single point, κ = 1.
            return 1.0;
        }
        let converged = (rho - mu).abs() <= tol * rho.abs();
        w = z;
        mu = rho;
        if converged {
            break;
        }
    }
    let lambda_min = (shift - mu).max(0.0);
    if lambda_min == 0.0 {
        return f64::INFINITY;
    }
    (lambda_max / lambda_min).sqrt()
}

/// Scale a matrix so that its spectral norm is at most `target` (< 1 required
/// by block-encodings).  Returns the scaled matrix and the applied factor `s`
/// such that `A_scaled = s · A`.
pub fn scale_to_spectral_norm<T: Real>(a: &Matrix<T>, target: T) -> (Matrix<T>, T) {
    let norm = Svd::new(a).norm2();
    if norm == T::zero() || norm <= target {
        return (a.clone(), T::one());
    }
    let s = target / norm;
    (a.scaled(s), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cond2_of_diag() {
        let a = Matrix::from_diag(&[8.0, 4.0, 2.0]);
        assert!((cond_2(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cond2_of_generated_matrix_matches_request() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for &kappa in &[10.0, 100.0, 1000.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let c = cond_2(&a);
            assert!(
                (c - kappa).abs() / kappa < 1e-8,
                "requested {kappa}, got {c}"
            );
        }
    }

    #[test]
    fn cond_inf_at_least_one() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[4.0, 1.0, 2.0, 3.0]);
        let c = cond_inf(&a).unwrap();
        assert!(c >= 1.0);
    }

    #[test]
    fn hager_estimate_within_factor_of_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let a = random_matrix_with_cond(
            32,
            500.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let lu = LuFactorization::new(&a).unwrap();
        let est = cond_1_estimate(&a, &lu).unwrap();
        // Exact 1-norm condition number.
        let exact = a.norm_1() * lu.inverse().unwrap().norm_1();
        assert!(
            est <= exact * 1.0001,
            "estimate {est} must not exceed exact {exact}"
        );
        assert!(
            est >= exact / 10.0,
            "estimate {est} too far below exact {exact}"
        );
    }

    #[test]
    fn power_iteration_estimate_on_diagonal_matrix() {
        let a = Matrix::from_diag(&[8.0, 4.0, 2.0]);
        let est = cond_2_estimate(&a, 500, 1e-12);
        assert!((est - 4.0).abs() < 1e-6, "estimate {est}");
    }

    #[test]
    fn power_iteration_estimate_matches_svd_on_random_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for &kappa in &[10.0, 100.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let est = cond_2_estimate(&a, 50_000, 1e-13);
            assert!(
                (est - kappa).abs() / kappa < 0.1,
                "requested {kappa}, estimated {est}"
            );
        }
    }

    #[test]
    fn power_iteration_estimate_on_structured_operators() {
        // Matrix-free estimate on the tridiagonal Poisson operator vs the
        // analytic condition number; the clustered Poisson spectrum converges
        // slowly, so allow a generous iteration budget and 10% slack.
        let n = 16;
        let t = crate::tridiag::poisson_1d::<f64>(n, false);
        let exact = crate::tridiag::poisson_1d_condition_number(n);
        let est = cond_2_estimate(&t, 20_000, 1e-13);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "analytic {exact}, estimated {est}"
        );
        // The CSR form of the same operator gives the same estimate.
        let est_csr = cond_2_estimate(&t.to_sparse(), 20_000, 1e-13);
        assert!((est_csr - est).abs() / est < 1e-9);
    }

    #[test]
    fn power_iteration_estimate_identity_and_zero() {
        assert!((cond_2_estimate(&Matrix::<f64>::identity(5), 100, 1e-12) - 1.0).abs() < 1e-9);
        assert_eq!(
            cond_2_estimate(&Matrix::<f64>::zeros(4, 4), 100, 1e-12),
            0.0
        );
    }

    #[test]
    fn scaling_to_target_norm() {
        let a = Matrix::from_diag(&[5.0, 1.0]);
        let (scaled, s) = scale_to_spectral_norm(&a, 0.5);
        assert!((s - 0.1).abs() < 1e-14);
        assert!((Svd::new(&scaled).norm2() - 0.5).abs() < 1e-12);
        // Already-small matrices are untouched.
        let b = Matrix::from_diag(&[0.25, 0.1]);
        let (same, s2) = scale_to_spectral_norm(&b, 0.5);
        assert_eq!(s2, 1.0);
        assert_eq!(same, b);
    }
}
