//! Condition number computation and estimation.
//!
//! The convergence of the paper's mixed-precision refinement is governed by
//! the product ε_l·κ (Theorem III.1), so both exact condition numbers (via the
//! SVD, used for the small test matrices) and cheap estimates (Hager–Higham
//! 1-norm estimation, usable at scale from an LU factorisation) are provided.

use crate::lu::{LinalgError, LuFactorization};
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::svd::Svd;
use crate::vector::Vector;

/// Exact 2-norm condition number κ₂(A) = σ_max/σ_min computed from the SVD.
pub fn cond_2<T: Real>(a: &Matrix<T>) -> T {
    Svd::new(a).cond()
}

/// ∞-norm condition number κ_∞(A) = ‖A‖_∞ ‖A⁻¹‖_∞ computed from the explicit
/// inverse (intended for small matrices / validation).
pub fn cond_inf<T: Real>(a: &Matrix<T>) -> Result<T, LinalgError> {
    let inv = LuFactorization::new(a)?.inverse()?;
    Ok(a.norm_inf() * inv.norm_inf())
}

/// Hager–Higham estimator of ‖A⁻¹‖₁ from an existing LU factorisation, giving
/// a 1-norm condition-number estimate `‖A‖₁ · est(‖A⁻¹‖₁)` in O(N²) per
/// iteration instead of the O(N³) required to form the inverse.
pub fn cond_1_estimate<T: Real>(a: &Matrix<T>, lu: &LuFactorization<T>) -> Result<T, LinalgError> {
    let n = a.nrows();
    if n == 0 {
        return Ok(T::zero());
    }
    // Hager's algorithm: maximise ‖A⁻¹ x‖₁ over the unit 1-norm ball.
    let mut x = Vector::from_vec(vec![T::one() / T::from_f64(n as f64); n]);
    let mut est = T::zero();
    for _iter in 0..5 {
        let y = lu.solve(&x)?;
        est = y.norm1();
        // xi = sign(y)
        let xi: Vector<T> = y
            .iter()
            .map(|&v| if v >= T::zero() { T::one() } else { -T::one() })
            .collect();
        let z = lu.solve_transposed(&xi)?;
        // Find the index of the largest |z_j|.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, T::zero()), |(ja, za), (j, &v)| {
                if v.abs() > za {
                    (j, v.abs())
                } else {
                    (ja, za)
                }
            });
        let ztx = z.dot(&x);
        if zmax <= ztx.abs() {
            break;
        }
        x = Vector::basis(n, jmax);
    }
    Ok(a.norm_1() * est)
}

/// Matrix-free 2-norm condition-number estimate for any [`LinearOperator`],
/// using only matvecs — O(nnz) per Lanczos step, no SVD, no factorisation.
///
/// Runs the Lanczos iteration on `AᵀA` with full reorthogonalisation and
/// reads `σ_max²` and `σ_min²` off the extreme Ritz values of the projected
/// tridiagonal (located by Sturm-sequence bisection).  Unlike the shifted
/// power iteration this replaced (retained as [`cond_2_estimate_power`]),
/// Lanczos resolves **clustered spectra**: each step enlarges the whole
/// Krylov space, so near-degenerate extreme eigenvalues converge together
/// instead of stalling the iteration.
///
/// `max_iterations` bounds the number of Lanczos steps (also capped at the
/// operator order, where the Ritz values are exact, and a hard cap of 400);
/// the loop stops early when both extreme Ritz values are stable to `tol`
/// relatively.  The start vector is deterministic, so the estimate is
/// reproducible.
///
/// The estimate is **never a bogus infinity**: interlacing makes the Ritz
/// extremes inner bounds of the true spectrum, so the result is a (typically
/// slight) *under-estimate* of κ₂ — the safe direction for the ε_l·κ < 1
/// check of Theorem III.1 is to add margin on top.  Working through the
/// normal equations at f64 also floors `σ_min²` at the rounding noise
/// `m·u·σ_max²`, so the estimate **saturates** near `1/√(m·u)` (~10⁷): a
/// genuinely singular operator returns that finite saturation value, not
/// `INFINITY` — use the SVD-backed [`cond_2`] when exact singularity must be
/// certified.  A zero operator returns 0.
pub fn cond_2_estimate<Op: LinearOperator<f64>>(a: &Op, max_iterations: usize, tol: f64) -> f64 {
    assert!(a.is_square(), "cond_2_estimate needs a square operator");
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    let steps_cap = max_iterations.max(2).min(n).min(400);
    let (alphas, betas) = lanczos_normal_equations(a, steps_cap, tol);
    let m = alphas.len();
    let (lambda_min, lambda_max) = tridiag_extreme_eigenvalues(&alphas, &betas);
    if lambda_max <= 0.0 {
        return 0.0;
    }
    // Resolution floor of the normal-equations formulation: Ritz values below
    // m·u·λ_max are indistinguishable from rounding noise.
    let floor = lambda_max * f64::EPSILON * m as f64;
    (lambda_max / lambda_min.max(floor)).sqrt()
}

/// Lanczos on `B = AᵀA` with full (two-pass) reorthogonalisation against the
/// whole basis.  Returns the projected tridiagonal `(α, β)`; stops early on
/// invariant-subspace breakdown (β ≈ 0, where the Ritz values are exact) or
/// when both extreme Ritz values are stable to `tol`.
fn lanczos_normal_equations<Op: LinearOperator<f64>>(
    a: &Op,
    steps: usize,
    tol: f64,
) -> (Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let mut v: Vector<f64> = (0..n).map(|i| 1.5 + (i as f64 + 1.0).sin()).collect();
    v.normalize();
    let mut basis = vec![v];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut prev: Option<(f64, f64)> = None;
    for j in 0..steps {
        let mut w = a.matvec_transposed(&a.matvec(&basis[j]));
        let alpha = basis[j].dot(&w);
        alphas.push(alpha);
        // Full reorthogonalisation (two classical Gram-Schmidt passes)
        // subtracts the α·v_j and β·v_{j−1} terms along the way and keeps the
        // basis numerically orthogonal — the property that lets Lanczos
        // separate clustered eigenvalues at all.
        for _ in 0..2 {
            for q in &basis {
                let c = q.dot(&w);
                w.axpy(-c, q);
            }
        }
        let beta = w.norm2();
        let scale = alphas
            .iter()
            .chain(betas.iter())
            .fold(0.0f64, |acc, &x| acc.max(x.abs()));
        if beta <= scale * f64::EPSILON * 64.0 {
            break; // invariant subspace: the Ritz values are exact
        }
        let (lo, hi) = tridiag_extreme_eigenvalues(&alphas, &betas);
        if let Some((plo, phi)) = prev {
            let lo_stable = (lo - plo).abs() <= tol * lo.abs().max(1e-300);
            let hi_stable = (hi - phi).abs() <= tol * hi.abs().max(1e-300);
            if lo_stable && hi_stable {
                break;
            }
        }
        prev = Some((lo, hi));
        betas.push(beta);
        w.scale(1.0 / beta);
        basis.push(w);
    }
    betas.truncate(alphas.len().saturating_sub(1));
    (alphas, betas)
}

/// Extreme eigenvalues of a symmetric tridiagonal `(α, β)` via Sturm-sequence
/// bisection on the LDLᵀ recurrence (Gershgorin brackets the spectrum).
fn tridiag_extreme_eigenvalues(alphas: &[f64], betas: &[f64]) -> (f64, f64) {
    let m = alphas.len();
    if m == 0 {
        return (0.0, 0.0);
    }
    // Gershgorin bounds.
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for i in 0..m {
        let mut r = 0.0;
        if i > 0 {
            r += betas[i - 1].abs();
        }
        if i < m - 1 {
            r += betas[i].abs();
        }
        lo = lo.min(alphas[i] - r);
        hi = hi.max(alphas[i] + r);
    }
    if lo == hi {
        return (lo, hi);
    }
    // Count of eigenvalues strictly below x (Sturm sequence via LDLᵀ).
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = 1.0f64;
        for i in 0..m {
            let off = if i == 0 {
                0.0
            } else {
                betas[i - 1] * betas[i - 1]
            };
            d = (alphas[i] - x) - off / d;
            if d == 0.0 {
                d = -f64::MIN_POSITIVE;
            }
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    let bisect = |target: usize| -> f64 {
        let (mut a, mut b) = (lo, hi);
        for _ in 0..120 {
            let mid = 0.5 * (a + b);
            if count_below(mid) >= target {
                b = mid;
            } else {
                a = mid;
            }
        }
        0.5 * (a + b)
    };
    (bisect(1), bisect(m))
}

/// The shifted power iteration this crate used for κ₂ estimation before the
/// Lanczos path existed — retained as the simple oracle it is, **with its
/// known failure mode**: on clustered spectra the shifted iteration for
/// `σ_min` can under-converge to `mu ≥ shift`, and the estimate collapses to
/// `f64::INFINITY` even though the operator is far from singular (see the
/// regression test).  New callers should use [`cond_2_estimate`].
pub fn cond_2_estimate_power<Op: LinearOperator<f64>>(
    a: &Op,
    max_iterations: usize,
    tol: f64,
) -> f64 {
    assert!(
        a.is_square(),
        "cond_2_estimate_power needs a square operator"
    );
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    let normalise = |v: &mut Vector<f64>| v.normalize();
    let ata = |v: &Vector<f64>| a.matvec_transposed(&a.matvec(v));

    // Deterministic, strictly positive start vector (cannot be orthogonal to
    // a nonnegative dominant eigenvector, and generic enough in practice).
    let mut v: Vector<f64> = (0..n).map(|i| 1.5 + (i as f64 + 1.0).sin()).collect();
    normalise(&mut v);
    let mut lambda_max = 0.0f64;
    for _ in 0..max_iterations {
        let mut w = ata(&v);
        let rho = v.dot(&w);
        let norm = normalise(&mut w);
        if norm == 0.0 {
            return if lambda_max == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let converged = (rho - lambda_max).abs() <= tol * rho.abs();
        v = w;
        lambda_max = rho;
        if converged {
            break;
        }
    }
    if lambda_max <= 0.0 {
        return 0.0;
    }

    // Shifted power iteration for the bottom of the spectrum.
    let shift = lambda_max;
    let mut w: Vector<f64> = (0..n).map(|i| 1.5 + (2.0 * i as f64 + 1.0).cos()).collect();
    normalise(&mut w);
    let mut mu = 0.0f64;
    for _ in 0..max_iterations {
        let bw = ata(&w);
        let mut z: Vector<f64> = w
            .iter()
            .zip(bw.iter())
            .map(|(&wi, &bi)| shift * wi - bi)
            .collect();
        let rho = w.dot(&z);
        let norm = normalise(&mut z);
        if norm == 0.0 {
            // shift·I − AᵀA annihilates w: the spectrum is (numerically) a
            // single point, κ = 1.
            return 1.0;
        }
        let converged = (rho - mu).abs() <= tol * rho.abs();
        w = z;
        mu = rho;
        if converged {
            break;
        }
    }
    let lambda_min = (shift - mu).max(0.0);
    if lambda_min == 0.0 {
        return f64::INFINITY;
    }
    (lambda_max / lambda_min).sqrt()
}

/// Scale a matrix so that its spectral norm is **strictly below** `target`
/// (block-encodings require the subnormalised norm `< 1`, strictly).
/// Returns the scaled matrix and the applied factor `s` such that
/// `A_scaled = s · A`.
///
/// The effective target carries a `(1 − 4u)` margin: a matrix whose norm
/// lands exactly on `target` (or a hair above after rounding) is still
/// scaled below it, instead of being passed through unscaled at the boundary
/// as the pre-margin implementation did.
pub fn scale_to_spectral_norm<T: Real>(a: &Matrix<T>, target: T) -> (Matrix<T>, T) {
    let norm = Svd::new(a).norm2();
    let effective = target * T::from_f64(1.0 - 4.0 * T::unit_roundoff());
    if norm == T::zero() || norm < effective {
        return (a.clone(), T::one());
    }
    let s = effective / norm;
    (a.scaled(s), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cond2_of_diag() {
        let a = Matrix::from_diag(&[8.0, 4.0, 2.0]);
        assert!((cond_2(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cond2_of_generated_matrix_matches_request() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for &kappa in &[10.0, 100.0, 1000.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let c = cond_2(&a);
            assert!(
                (c - kappa).abs() / kappa < 1e-8,
                "requested {kappa}, got {c}"
            );
        }
    }

    #[test]
    fn cond_inf_at_least_one() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[4.0, 1.0, 2.0, 3.0]);
        let c = cond_inf(&a).unwrap();
        assert!(c >= 1.0);
    }

    #[test]
    fn hager_estimate_within_factor_of_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let a = random_matrix_with_cond(
            32,
            500.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let lu = LuFactorization::new(&a).unwrap();
        let est = cond_1_estimate(&a, &lu).unwrap();
        // Exact 1-norm condition number.
        let exact = a.norm_1() * lu.inverse().unwrap().norm_1();
        assert!(
            est <= exact * 1.0001,
            "estimate {est} must not exceed exact {exact}"
        );
        assert!(
            est >= exact / 10.0,
            "estimate {est} too far below exact {exact}"
        );
    }

    #[test]
    fn power_iteration_estimate_on_diagonal_matrix() {
        let a = Matrix::from_diag(&[8.0, 4.0, 2.0]);
        let est = cond_2_estimate(&a, 500, 1e-12);
        assert!((est - 4.0).abs() < 1e-6, "estimate {est}");
    }

    #[test]
    fn power_iteration_estimate_matches_svd_on_random_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for &kappa in &[10.0, 100.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let est = cond_2_estimate(&a, 50_000, 1e-13);
            assert!(
                (est - kappa).abs() / kappa < 0.1,
                "requested {kappa}, estimated {est}"
            );
        }
    }

    #[test]
    fn power_iteration_estimate_on_structured_operators() {
        // Matrix-free estimate on the tridiagonal Poisson operator vs the
        // analytic condition number; the clustered Poisson spectrum converges
        // slowly, so allow a generous iteration budget and 10% slack.
        let n = 16;
        let t = crate::tridiag::poisson_1d::<f64>(n, false);
        let exact = crate::tridiag::poisson_1d_condition_number(n);
        let est = cond_2_estimate(&t, 20_000, 1e-13);
        assert!(
            (est - exact).abs() / exact < 0.1,
            "analytic {exact}, estimated {est}"
        );
        // The CSR form of the same operator gives the same estimate.
        let est_csr = cond_2_estimate(&t.to_sparse(), 20_000, 1e-13);
        assert!((est_csr - est).abs() / est < 1e-9);
    }

    #[test]
    fn power_iteration_estimate_identity_and_zero() {
        assert!((cond_2_estimate(&Matrix::<f64>::identity(5), 100, 1e-12) - 1.0).abs() < 1e-9);
        assert_eq!(
            cond_2_estimate(&Matrix::<f64>::zeros(4, 4), 100, 1e-12),
            0.0
        );
    }

    #[test]
    fn scaling_to_target_norm() {
        let a = Matrix::from_diag(&[5.0, 1.0]);
        let (scaled, s) = scale_to_spectral_norm(&a, 0.5);
        assert!((s - 0.1).abs() < 1e-14);
        assert!((Svd::new(&scaled).norm2() - 0.5).abs() < 1e-12);
        // Already-small matrices are untouched.
        let b = Matrix::from_diag(&[0.25, 0.1]);
        let (same, s2) = scale_to_spectral_norm(&b, 0.5);
        assert_eq!(s2, 1.0);
        assert_eq!(same, b);
    }

    #[test]
    fn scaling_at_the_boundary_stays_strictly_below_target() {
        // A matrix whose norm is *exactly* the target used to pass through
        // unscaled, violating the strict `< target` block-encoding contract.
        let a = Matrix::from_diag(&[0.5, 0.1]);
        let (scaled, s) = scale_to_spectral_norm(&a, 0.5);
        assert!(s < 1.0, "boundary matrix must be scaled, got s = {s}");
        let norm = Svd::new(&scaled).norm2();
        assert!(norm < 0.5, "scaled norm {norm} must be strictly below 0.5");
        assert!((norm - 0.5).abs() < 1e-12, "margin must stay tiny: {norm}");
    }

    #[test]
    fn lanczos_estimate_matches_svd_on_geometric_and_clustered_spectra() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for &dist in &[
            SingularValueDistribution::Geometric,
            SingularValueDistribution::Clustered,
        ] {
            for &kappa in &[100.0, 10_000.0] {
                let a = random_matrix_with_cond(24, kappa, dist, MatrixEnsemble::General, &mut rng);
                let exact = cond_2(&a);
                let est = cond_2_estimate(&a, 400, 1e-14);
                assert!(
                    (est - exact).abs() / exact < 1e-3,
                    "{dist:?} kappa={kappa}: exact {exact}, lanczos {est}"
                );
            }
        }
    }

    #[test]
    fn clustered_spectrum_no_longer_collapses_to_infinity() {
        // Eleven-fold degenerate σ = 1 plus one tiny σ = 1e-9: the shifted
        // power iteration converges its Rayleigh quotient to the shift itself
        // and reports a bogus ∞; the Lanczos estimate stays finite (saturated
        // at the normal-equations resolution, a documented under-estimate).
        let mut sv = vec![1.0; 11];
        sv.push(1e-9);
        let a = Matrix::from_diag(&sv);
        let old = cond_2_estimate_power(&a, 5_000, 1e-12);
        assert!(
            old.is_infinite(),
            "regression input no longer triggers the power-iteration failure: {old}"
        );
        let est = cond_2_estimate(&a, 400, 1e-14);
        assert!(est.is_finite(), "lanczos estimate must be finite");
        assert!(
            est > 1e3,
            "saturated estimate should still flag severe ill-conditioning: {est}"
        );
    }

    #[test]
    fn lanczos_estimate_is_exact_below_the_saturation_regime() {
        // κ = 1e6 sits below the ~1/√(m·u) saturation, so the estimate is
        // sharp even though the spectrum is wide.
        let a = Matrix::from_diag(&[1.0, 0.3, 1e-6]);
        let est = cond_2_estimate(&a, 400, 1e-14);
        assert!((est - 1e6).abs() / 1e6 < 1e-4, "estimate {est}");
    }
}
