//! Condition number computation and estimation.
//!
//! The convergence of the paper's mixed-precision refinement is governed by
//! the product ε_l·κ (Theorem III.1), so both exact condition numbers (via the
//! SVD, used for the small test matrices) and cheap estimates (Hager–Higham
//! 1-norm estimation, usable at scale from an LU factorisation) are provided.

use crate::lu::{LinalgError, LuFactorization};
use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::svd::Svd;
use crate::vector::Vector;

/// Exact 2-norm condition number κ₂(A) = σ_max/σ_min computed from the SVD.
pub fn cond_2<T: Real>(a: &Matrix<T>) -> T {
    Svd::new(a).cond()
}

/// ∞-norm condition number κ_∞(A) = ‖A‖_∞ ‖A⁻¹‖_∞ computed from the explicit
/// inverse (intended for small matrices / validation).
pub fn cond_inf<T: Real>(a: &Matrix<T>) -> Result<T, LinalgError> {
    let inv = LuFactorization::new(a)?.inverse()?;
    Ok(a.norm_inf() * inv.norm_inf())
}

/// Hager–Higham estimator of ‖A⁻¹‖₁ from an existing LU factorisation, giving
/// a 1-norm condition-number estimate `‖A‖₁ · est(‖A⁻¹‖₁)` in O(N²) per
/// iteration instead of the O(N³) required to form the inverse.
pub fn cond_1_estimate<T: Real>(a: &Matrix<T>, lu: &LuFactorization<T>) -> Result<T, LinalgError> {
    let n = a.nrows();
    if n == 0 {
        return Ok(T::zero());
    }
    // Hager's algorithm: maximise ‖A⁻¹ x‖₁ over the unit 1-norm ball.
    let mut x = Vector::from_vec(vec![T::one() / T::from_f64(n as f64); n]);
    let mut est = T::zero();
    for _iter in 0..5 {
        let y = lu.solve(&x)?;
        est = y.norm1();
        // xi = sign(y)
        let xi: Vector<T> = y
            .iter()
            .map(|&v| if v >= T::zero() { T::one() } else { -T::one() })
            .collect();
        let z = lu.solve_transposed(&xi)?;
        // Find the index of the largest |z_j|.
        let (jmax, zmax) = z
            .iter()
            .enumerate()
            .fold((0usize, T::zero()), |(ja, za), (j, &v)| {
                if v.abs() > za {
                    (j, v.abs())
                } else {
                    (ja, za)
                }
            });
        let ztx = z.dot(&x);
        if zmax <= ztx.abs() {
            break;
        }
        x = Vector::basis(n, jmax);
    }
    Ok(a.norm_1() * est)
}

/// Scale a matrix so that its spectral norm is at most `target` (< 1 required
/// by block-encodings).  Returns the scaled matrix and the applied factor `s`
/// such that `A_scaled = s · A`.
pub fn scale_to_spectral_norm<T: Real>(a: &Matrix<T>, target: T) -> (Matrix<T>, T) {
    let norm = Svd::new(a).norm2();
    if norm == T::zero() || norm <= target {
        return (a.clone(), T::one());
    }
    let s = target / norm;
    (a.scaled(s), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cond2_of_diag() {
        let a = Matrix::from_diag(&[8.0, 4.0, 2.0]);
        assert!((cond_2(&a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cond2_of_generated_matrix_matches_request() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for &kappa in &[10.0, 100.0, 1000.0] {
            let a = random_matrix_with_cond(
                16,
                kappa,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            );
            let c = cond_2(&a);
            assert!(
                (c - kappa).abs() / kappa < 1e-8,
                "requested {kappa}, got {c}"
            );
        }
    }

    #[test]
    fn cond_inf_at_least_one() {
        let a = Matrix::<f64>::from_f64_slice(2, 2, &[4.0, 1.0, 2.0, 3.0]);
        let c = cond_inf(&a).unwrap();
        assert!(c >= 1.0);
    }

    #[test]
    fn hager_estimate_within_factor_of_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let a = random_matrix_with_cond(
            32,
            500.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let lu = LuFactorization::new(&a).unwrap();
        let est = cond_1_estimate(&a, &lu).unwrap();
        // Exact 1-norm condition number.
        let exact = a.norm_1() * lu.inverse().unwrap().norm_1();
        assert!(
            est <= exact * 1.0001,
            "estimate {est} must not exceed exact {exact}"
        );
        assert!(
            est >= exact / 10.0,
            "estimate {est} too far below exact {exact}"
        );
    }

    #[test]
    fn scaling_to_target_norm() {
        let a = Matrix::from_diag(&[5.0, 1.0]);
        let (scaled, s) = scale_to_spectral_norm(&a, 0.5);
        assert!((s - 0.1).abs() < 1e-14);
        assert!((Svd::new(&scaled).norm2() - 0.5).abs() < 1e-12);
        // Already-small matrices are untouched.
        let b = Matrix::from_diag(&[0.25, 0.1]);
        let (same, s2) = scale_to_spectral_norm(&b, 0.5);
        assert_eq!(s2, 1.0);
        assert_eq!(same, b);
    }
}
