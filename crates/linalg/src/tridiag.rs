//! Tridiagonal matrices and the 1-D Poisson model problem.
//!
//! Section III-C4 of the paper uses the finite-difference discretisation of
//! the one-dimensional Poisson equation `-u''(x) = f(x)` with homogeneous
//! Dirichlet boundary conditions as a running example (Eq. (7)): the matrix is
//! `(1/h²) tridiag(-1, 2, -1)` with `h = 1/(N+1)`.  This module provides that
//! matrix, a compact tridiagonal storage format with an O(N) Thomas solver
//! (the "current classical solvers are efficient at solving this type of
//! linear systems in O(N) flops" remark of the paper), its exact eigenvalues
//! and condition number, and the associated exact solution machinery used by
//! the Poisson example and benchmarks.

use crate::inner::InnerSolver;
use crate::lu::LinalgError;
use crate::matrix::{par_map_rows, Matrix};
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::sparse::SparseMatrix;
use crate::vector::Vector;

/// A tridiagonal matrix stored as three diagonals.
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalMatrix<T: Real> {
    /// Sub-diagonal (length n-1).
    pub lower: Vec<T>,
    /// Main diagonal (length n).
    pub diag: Vec<T>,
    /// Super-diagonal (length n-1).
    pub upper: Vec<T>,
}

impl<T: Real> TridiagonalMatrix<T> {
    /// Build from the three diagonals.
    pub fn new(lower: Vec<T>, diag: Vec<T>, upper: Vec<T>) -> Self {
        assert_eq!(
            diag.len().saturating_sub(1),
            lower.len(),
            "lower diagonal length"
        );
        assert_eq!(
            diag.len().saturating_sub(1),
            upper.len(),
            "upper diagonal length"
        );
        TridiagonalMatrix { lower, diag, upper }
    }

    /// Constant-coefficient tridiagonal `tridiag(a, b, c)` of order n.
    pub fn constant(n: usize, a: T, b: T, c: T) -> Self {
        TridiagonalMatrix {
            lower: vec![a; n.saturating_sub(1)],
            diag: vec![b; n],
            upper: vec![c; n.saturating_sub(1)],
        }
    }

    /// Order of the matrix.
    pub fn order(&self) -> usize {
        self.diag.len()
    }

    /// Matrix-vector product in O(N), row-partitioned across threads above
    /// the shared work threshold (the same rayon pattern as
    /// `Matrix::matvec`; each output row reads only `x[i−1..=i+1]`, so the
    /// result is bit-identical at any thread count).
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        let n = self.order();
        assert_eq!(x.len(), n, "tridiagonal matvec: dimension mismatch");
        let xs = x.as_slice();
        par_map_rows(3 * n, n, |i| {
            let mut s = self.diag[i] * xs[i];
            if i > 0 {
                s = self.lower[i - 1].mul_add(xs[i - 1], s);
            }
            if i + 1 < n {
                s = self.upper[i].mul_add(xs[i + 1], s);
            }
            s
        })
    }

    /// Transposed matrix-vector product `Tᵀ x` in O(N) (the transpose of a
    /// tridiagonal matrix swaps the sub- and super-diagonals).
    pub fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        let n = self.order();
        assert_eq!(
            x.len(),
            n,
            "tridiagonal matvec_transposed: dimension mismatch"
        );
        let xs = x.as_slice();
        par_map_rows(3 * n, n, |i| {
            let mut s = self.diag[i] * xs[i];
            if i > 0 {
                s = self.upper[i - 1].mul_add(xs[i - 1], s);
            }
            if i + 1 < n {
                s = self.lower[i].mul_add(xs[i + 1], s);
            }
            s
        })
    }

    /// Number of stored diagonal entries (`3N − 2` for N ≥ 1).
    pub fn nnz(&self) -> usize {
        self.diag.len() + self.lower.len() + self.upper.len()
    }

    /// Convert into CSR form (entries in row-major, column-sorted order).
    pub fn to_sparse(&self) -> SparseMatrix<T> {
        let n = self.order();
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..n {
            if i > 0 {
                triplets.push((i, i - 1, self.lower[i - 1]));
            }
            triplets.push((i, i, self.diag[i]));
            if i + 1 < n {
                triplets.push((i, i + 1, self.upper[i]));
            }
        }
        SparseMatrix::from_triplets(n, n, &triplets)
    }

    /// Solve `T x = b` with the Thomas algorithm (no pivoting), O(N) flops,
    /// reporting pivot breakdown instead of silently returning inf/NaN.
    ///
    /// Thomas does not pivot, so a pivot with magnitude at or below the
    /// scaled threshold `4·u·max|entry|` means the elimination is about to
    /// amplify rounding errors unboundedly (or divide by zero outright, as
    /// for the perfectly conditioned `[[0,1],[1,0]]`).  Such systems return
    /// [`LinalgError::Singular`]; the inner-solver layer
    /// ([`crate::inner::FactorizableOperator`]) reacts by falling back to
    /// pivoted dense LU.
    pub fn try_solve_thomas(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        crate::inner::ThomasFactorization::new(self)?.solve(b)
    }

    /// Infallible Thomas solve for systems known to be safe without pivoting
    /// (diagonally dominant or symmetric positive definite, such as the
    /// Poisson matrix).
    ///
    /// # Panics
    /// Panics on pivot breakdown or a dimension mismatch — use
    /// [`TridiagonalMatrix::try_solve_thomas`] when the input is not known to
    /// be diagonally dominant / SPD.
    pub fn solve_thomas(&self, b: &Vector<T>) -> Vector<T> {
        self.try_solve_thomas(b)
            .expect("Thomas breakdown: matrix is not safe for unpivoted elimination (use try_solve_thomas or factorize)")
    }

    /// Entrywise conversion to another precision.
    pub fn convert<S: Real>(&self) -> TridiagonalMatrix<S> {
        let conv = |xs: &[T]| xs.iter().map(|&x| S::from_f64(x.to_f64())).collect();
        TridiagonalMatrix {
            lower: conv(&self.lower),
            diag: conv(&self.diag),
            upper: conv(&self.upper),
        }
    }

    /// Densify into a full matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        let n = self.order();
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = self.diag[i];
            if i > 0 {
                m[(i, i - 1)] = self.lower[i - 1];
            }
            if i + 1 < n {
                m[(i, i + 1)] = self.upper[i];
            }
        }
        m
    }
}

impl<T: Real> LinearOperator<T> for TridiagonalMatrix<T> {
    fn nrows(&self) -> usize {
        self.order()
    }

    fn ncols(&self) -> usize {
        self.order()
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        TridiagonalMatrix::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        TridiagonalMatrix::matvec_transposed(self, x)
    }

    fn nnz(&self) -> usize {
        TridiagonalMatrix::nnz(self)
    }

    fn to_dense(&self) -> Matrix<T> {
        TridiagonalMatrix::to_dense(self)
    }

    fn norm_inf(&self) -> T {
        let n = self.order();
        (0..n)
            .map(|i| {
                let mut s = self.diag[i].abs();
                if i > 0 {
                    s += self.lower[i - 1].abs();
                }
                if i + 1 < n {
                    s += self.upper[i].abs();
                }
                s
            })
            .fold(T::zero(), |acc, s| acc.max(s))
    }

    fn norm_frobenius(&self) -> T {
        let sum_sq = |xs: &[T]| xs.iter().fold(T::zero(), |acc, &x| x.mul_add(x, acc));
        (sum_sq(&self.diag) + sum_sq(&self.lower) + sum_sq(&self.upper)).sqrt()
    }
}

/// The 1-D Poisson (second-difference) matrix of Eq. (7):
/// `(1/h²) tridiag(-1, 2, -1)` of order `n` with `h = 1/(n+1)`.
///
/// When `scaled_by_h2` is false the factor `1/h²` is omitted, giving the pure
/// `tridiag(-1, 2, -1)` stencil whose spectrum lies in `(0, 4)` — the form
/// most convenient for block-encoding since the spectral norm is bounded by 4
/// independently of `n`.
pub fn poisson_1d<T: Real>(n: usize, scaled_by_h2: bool) -> TridiagonalMatrix<T> {
    let h = 1.0 / (n as f64 + 1.0);
    let scale = if scaled_by_h2 { 1.0 / (h * h) } else { 1.0 };
    TridiagonalMatrix::constant(
        n,
        T::from_f64(-scale),
        T::from_f64(2.0 * scale),
        T::from_f64(-scale),
    )
}

/// Exact eigenvalues of the unscaled `tridiag(-1, 2, -1)` matrix of order n:
/// `λ_k = 2 - 2 cos(kπ/(n+1)) = 4 sin²(kπ/(2(n+1)))`, k = 1..n.
pub fn poisson_1d_eigenvalues(n: usize) -> Vec<f64> {
    (1..=n)
        .map(|k| {
            let t = (k as f64) * std::f64::consts::PI / (2.0 * (n as f64 + 1.0));
            4.0 * t.sin().powi(2)
        })
        .collect()
}

/// Exact 2-norm condition number of the Poisson matrix of order n
/// (independent of the 1/h² scaling), which grows as O(N²) as noted in
/// Section III-C4 of the paper.
pub fn poisson_1d_condition_number(n: usize) -> f64 {
    let ev = poisson_1d_eigenvalues(n);
    let max = ev.iter().cloned().fold(f64::MIN, f64::max);
    let min = ev.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

/// Sample the right-hand side `f_j = f(j h)` on the interior grid of the
/// Poisson problem, with `h = 1/(n+1)`.
pub fn poisson_rhs<T: Real>(n: usize, f: impl Fn(f64) -> f64) -> Vector<T> {
    let h = 1.0 / (n as f64 + 1.0);
    (1..=n).map(|j| T::from_f64(f(j as f64 * h))).collect()
}

/// Sample a continuous function on the interior grid (used to compare the
/// discrete solution against the analytic solution of the ODE).
pub fn sample_on_grid<T: Real>(n: usize, u: impl Fn(f64) -> f64) -> Vector<T> {
    let h = 1.0 / (n as f64 + 1.0);
    (1..=n).map(|j| T::from_f64(u(j as f64 * h))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::cond_2;
    use crate::lu::lu_solve;

    #[test]
    fn dense_poisson_matches_equation_7() {
        let t = poisson_1d::<f64>(4, true);
        let d = t.to_dense();
        let h = 1.0 / 5.0;
        let s = 1.0 / (h * h);
        assert!((d[(0, 0)] - 2.0 * s).abs() < 1e-10);
        assert!((d[(0, 1)] + s).abs() < 1e-10);
        assert_eq!(d[(0, 2)], 0.0);
        assert!(d.is_symmetric(1e-12));
    }

    #[test]
    fn matvec_agrees_with_dense() {
        let t = poisson_1d::<f64>(8, false);
        let d = t.to_dense();
        let x: Vector<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        assert!((&t.matvec(&x) - &d.matvec(&x)).norm2() < 1e-13);
    }

    #[test]
    fn thomas_solver_matches_lu() {
        let t = poisson_1d::<f64>(16, true);
        let d = t.to_dense();
        let b: Vector<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.1).collect();
        let x_thomas = t.solve_thomas(&b);
        let x_lu = lu_solve(&d, &b).unwrap();
        assert!((&x_thomas - &x_lu).norm2() < 1e-8);
        assert!((&t.matvec(&x_thomas) - &b).norm2() / b.norm2() < 1e-12);
    }

    #[test]
    fn eigenvalues_match_dense_spectrum_extremes() {
        let n = 8;
        let ev = poisson_1d_eigenvalues(n);
        let t = poisson_1d::<f64>(n, false);
        let kappa_analytic = poisson_1d_condition_number(n);
        let kappa_numeric = cond_2(&t.to_dense());
        assert!((kappa_analytic - kappa_numeric).abs() / kappa_analytic < 1e-8);
        assert!(ev.iter().all(|&l| l > 0.0 && l < 4.0));
    }

    #[test]
    fn condition_number_grows_quadratically() {
        // κ(N) ≈ (2(N+1)/π)² for large N; check the ratio for doubling N.
        let k16 = poisson_1d_condition_number(16);
        let k32 = poisson_1d_condition_number(32);
        let ratio = k32 / k16;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio} should be ≈ 4");
    }

    #[test]
    fn poisson_discretisation_converges_to_analytic_solution() {
        // -u'' = π² sin(πx), u(0)=u(1)=0 has exact solution u(x) = sin(πx).
        let f = |x: f64| std::f64::consts::PI.powi(2) * (std::f64::consts::PI * x).sin();
        let u_exact = |x: f64| (std::f64::consts::PI * x).sin();
        let mut prev_err = f64::MAX;
        for &n in &[8usize, 16, 32] {
            let t = poisson_1d::<f64>(n, true);
            let b = poisson_rhs::<f64>(n, f);
            let u = t.solve_thomas(&b);
            let u_true = sample_on_grid::<f64>(n, u_exact);
            let err = (&u - &u_true).norm_inf();
            assert!(err < prev_err, "discretisation error must decrease with n");
            prev_err = err;
        }
        assert!(prev_err < 1e-3);
    }

    #[test]
    fn transposed_matvec_and_sparse_conversion_match_dense() {
        let t = TridiagonalMatrix::new(
            vec![1.0, -2.0, 0.5],
            vec![4.0, 5.0, 6.0, 7.0],
            vec![-1.0, 3.0, 2.5],
        );
        let d = t.to_dense();
        let x = Vector::from_f64_slice(&[0.3, -0.9, 1.7, 0.2]);
        assert!((&t.matvec_transposed(&x) - &d.matvec_transposed(&x)).norm2() < 1e-14);
        assert_eq!(t.to_sparse().to_dense(), d);
        assert_eq!(TridiagonalMatrix::nnz(&t), 10);
        assert_eq!(LinearOperator::norm_inf(&t), d.norm_inf());
        assert!((LinearOperator::norm_frobenius(&t) - d.norm_frobenius()).abs() < 1e-13);
    }

    #[test]
    fn large_matvec_takes_the_parallel_path_unchanged() {
        // 3N above the shared work threshold: the row-partitioned fan-out
        // must agree with the dense product (and with any thread count).
        let n = 100_000usize;
        let t = poisson_1d::<f64>(n, false);
        let x: Vector<f64> = (0..n).map(|i| ((i % 97) as f64 / 97.0) - 0.5).collect();
        let y = t.matvec(&x);
        for &i in &[0usize, 1, n / 2, n - 2, n - 1] {
            let mut expect = 2.0 * x[i];
            if i > 0 {
                expect -= x[i - 1];
            }
            if i + 1 < n {
                expect -= x[i + 1];
            }
            assert!((y[i] - expect).abs() < 1e-12, "row {i}");
        }
    }

    #[test]
    fn empty_and_single_entry_edge_cases() {
        let t1 = TridiagonalMatrix::constant(1, -1.0, 2.0, -1.0);
        let b = Vector::from_f64_slice(&[4.0]);
        let x = t1.solve_thomas(&b);
        assert_eq!(x.as_slice(), &[2.0]);
        let t0 = TridiagonalMatrix::<f64>::constant(0, 0.0, 0.0, 0.0);
        assert_eq!(t0.order(), 0);
        assert_eq!(t0.try_solve_thomas(&Vector::zeros(0)).unwrap().len(), 0);
    }

    #[test]
    fn thomas_breakdown_is_an_error_not_nan() {
        // [[0, 1], [1, 0]] is nonsingular but has a zero first pivot: the old
        // unguarded sweep returned NaN here.
        let t = TridiagonalMatrix::new(vec![1.0], vec![0.0, 0.0], vec![1.0]);
        let b = Vector::from_f64_slice(&[1.0, 2.0]);
        assert!(matches!(
            t.try_solve_thomas(&b),
            Err(LinalgError::Singular { step: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "Thomas breakdown")]
    fn infallible_wrapper_panics_on_breakdown() {
        let t = TridiagonalMatrix::new(vec![1.0], vec![0.0, 0.0], vec![1.0]);
        t.solve_thomas(&Vector::from_f64_slice(&[1.0, 2.0]));
    }

    #[test]
    fn conversion_round_trips_through_f32() {
        let t = poisson_1d::<f64>(6, false);
        let low: TridiagonalMatrix<f32> = t.convert();
        assert_eq!(low.to_dense(), t.to_dense().convert());
    }
}
