//! The structured linear-operator abstraction of the classical stack.
//!
//! The paper's hybrid refinement only ever touches the matrix through a
//! handful of operations on the classical side: the high-precision residual
//! `r = b − A x` (a matvec per iteration), the transposed matvec used by norm
//! and condition estimation, and a few cheap norms.  None of those require
//! dense storage — the Poisson systems the paper benchmarks are tridiagonal
//! (3 nonzeros per row), and 2-D Poisson problems never need the matrix
//! materialised at all.  [`LinearOperator`] captures exactly that access
//! pattern so every consumer above it ([`crate::refine::ClassicalRefiner`],
//! [`crate::error::scaled_residual`], condition estimation,
//! `qls_core::HybridRefiner`, …) can be written once and run at O(nnz) per
//! matvec on structured problems while keeping dense [`Matrix`] as the
//! default — and as the equivalence oracle the structured implementations are
//! property-tested against (mirroring `qls_sim::kernels::reference`).
//!
//! Five implementations ship with the crate:
//!
//! | type | storage | matvec cost |
//! |------|---------|-------------|
//! | [`Matrix`] | dense row-major | O(N²), row-parallel |
//! | [`crate::sparse::SparseMatrix`] | CSR | O(nnz), row-parallel |
//! | [`crate::tridiag::TridiagonalMatrix`] | three diagonals | O(N), row-parallel |
//! | [`crate::stencil::StencilOperator`] | five scalars (matrix-free) | O(N), row-parallel |
//! | [`crate::stencil::StencilNd`] | `2d + 1` scalars (matrix-free, d-dim) | O(d·N), row-parallel |
//!
//! Each of the five also implements
//! [`crate::inner::FactorizableOperator`], which maps the representation to
//! its structured low-precision inner solver (Thomas, Jacobi-CG/BiCGSTAB,
//! dense LU) so the refinement loops never densify structured operators.
//!
//! Algorithms that genuinely need explicit entries (LU factorisation, SVD,
//! block-encoding synthesis) bridge through [`LinearOperator::to_dense`]; the
//! contract is that `to_dense` reproduces the represented matrix exactly, so
//! a structured operator and its densification drive bit-identical inner
//! solves.

use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::vector::Vector;

/// A real linear operator accessed through matrix-vector products.
///
/// The trait is deliberately small: it is the exact interface the classical
/// side of the hybrid solver consumes.  All methods must be consistent with
/// the dense materialisation returned by [`LinearOperator::to_dense`] (the
/// norms exactly, the matvecs to within the usual floating-point
/// reassociation — the CSR and stencil implementations are in fact
/// bit-identical to the dense oracle because they accumulate in the same
/// column order).
pub trait LinearOperator<T: Real>: Clone + Send + Sync {
    /// Number of rows.
    fn nrows(&self) -> usize;

    /// Number of columns.
    fn ncols(&self) -> usize;

    /// Matrix-vector product `A x`.
    fn matvec(&self, x: &Vector<T>) -> Vector<T>;

    /// Transposed matrix-vector product `Aᵀ x`.
    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T>;

    /// Number of stored scalars touched by one matvec (dense: `rows · cols`;
    /// CSR: the stored nonzeros).  This is the O(nnz) in "residuals cost
    /// O(nnz)" and the flop accounting the cost models use.
    fn nnz(&self) -> usize;

    /// Materialise the operator as a dense matrix — the equivalence oracle,
    /// and the bridge to algorithms that need explicit entries (LU, SVD,
    /// block-encoding construction).  Must reproduce the represented matrix
    /// exactly.
    fn to_dense(&self) -> Matrix<T>;

    /// Exact ∞-norm (maximum absolute row sum) in O(nnz).
    fn norm_inf(&self) -> T;

    /// Exact Frobenius norm in O(nnz).
    fn norm_frobenius(&self) -> T;

    /// True when the operator is square.
    fn is_square(&self) -> bool {
        self.nrows() == self.ncols()
    }
}

impl<T: Real> LinearOperator<T> for Matrix<T> {
    fn nrows(&self) -> usize {
        Matrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        Matrix::ncols(self)
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        Matrix::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        Matrix::matvec_transposed(self, x)
    }

    fn nnz(&self) -> usize {
        Matrix::nrows(self) * Matrix::ncols(self)
    }

    fn to_dense(&self) -> Matrix<T> {
        self.clone()
    }

    fn norm_inf(&self) -> T {
        Matrix::norm_inf(self)
    }

    fn norm_frobenius(&self) -> T {
        Matrix::norm_frobenius(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operator_roundtrip<Op: LinearOperator<f64>>(op: &Op) {
        let dense = op.to_dense();
        assert_eq!(op.nrows(), dense.nrows());
        assert_eq!(op.ncols(), dense.ncols());
        let x: Vector<f64> = (0..op.ncols()).map(|i| (i as f64 * 0.7).cos()).collect();
        let xt: Vector<f64> = (0..op.nrows()).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!((&op.matvec(&x) - &dense.matvec(&x)).norm2() < 1e-12);
        assert!((&op.matvec_transposed(&xt) - &dense.matvec_transposed(&xt)).norm2() < 1e-12);
        assert!((op.norm_inf() - LinearOperator::norm_inf(&dense)).abs() < 1e-12);
        assert!((op.norm_frobenius() - LinearOperator::norm_frobenius(&dense)).abs() < 1e-12);
    }

    #[test]
    fn dense_matrix_is_its_own_oracle() {
        let a = Matrix::<f64>::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 5.0);
        operator_roundtrip(&a);
        assert_eq!(LinearOperator::nnz(&a), 12);
        assert!(!LinearOperator::is_square(&a));
    }

    #[test]
    fn generic_residual_through_the_trait() {
        fn residual<Op: LinearOperator<f64>>(a: &Op, x: &Vector<f64>, b: &Vector<f64>) -> f64 {
            (b - &a.matvec(x)).norm2()
        }
        let a = Matrix::<f64>::identity(3);
        let x = Vector::from_f64_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(residual(&a, &x, &x), 0.0);
    }
}
