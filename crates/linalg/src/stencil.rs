//! Matrix-free Kronecker-sum stencil operators and the 2-D Poisson problem.
//!
//! The 2-D analogue of the paper's Poisson running example (Section III-C4)
//! discretises `−Δu = f` on the unit square with homogeneous Dirichlet
//! boundary conditions: the matrix is the Kronecker sum
//! `A = T_x ⊗ I_ny + I_nx ⊗ T_y` of two 1-D second-difference matrices — the
//! classic five-point stencil.  At `N = nx·ny` unknowns the dense form costs
//! O(N²) memory; [`StencilOperator`] stores **five scalars** and applies the
//! operator in O(N), which is what lets the classical residual path of the
//! hybrid refiner scale to grids of tens of thousands of unknowns.
//!
//! The matvec visits the five neighbours of every grid point in increasing
//! column order with the same fused multiply-adds as the dense kernel, so the
//! product is **bit-identical** to `to_dense().matvec(..)` — the stencil can
//! replace the dense matrix inside the refinement loop without changing a
//! single bit of the convergence history (verified by the end-to-end
//! equivalence tests).

use crate::matrix::{par_map_rows, Matrix};
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::sparse::SparseMatrix;
use crate::vector::Vector;

/// A matrix-free five-point stencil on an `nx × ny` grid with Dirichlet
/// (zero) boundary conditions.
///
/// Grid point `(ix, iy)` maps to the flat index `ix·ny + iy`; the operator
/// couples it to itself with `center`, to `(ix±1, iy)` with `off_x` and to
/// `(ix, iy±1)` with `off_y`.  The represented matrix is symmetric (a
/// Kronecker sum of symmetric tridiagonal factors), so the transposed matvec
/// is the matvec itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilOperator<T: Real> {
    nx: usize,
    ny: usize,
    center: T,
    off_x: T,
    off_y: T,
}

impl<T: Real> StencilOperator<T> {
    /// Build a five-point stencil with the given coefficients.
    pub fn new(nx: usize, ny: usize, center: T, off_x: T, off_y: T) -> Self {
        assert!(nx >= 1 && ny >= 1, "stencil grid must be non-empty");
        StencilOperator {
            nx,
            ny,
            center,
            off_x,
            off_y,
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Order of the represented matrix, `N = nx·ny`.
    pub fn order(&self) -> usize {
        self.nx * self.ny
    }

    /// The stencil coefficients `(center, off_x, off_y)`.
    pub fn coefficients(&self) -> (T, T, T) {
        (self.center, self.off_x, self.off_y)
    }

    /// Number of stored matrix entries the five-point coupling represents.
    pub fn stencil_nnz(&self) -> usize {
        let (nx, ny) = (self.nx, self.ny);
        nx * ny + 2 * (nx - 1) * ny + 2 * nx * (ny - 1)
    }

    /// Apply the stencil in O(N), without ever materialising the matrix.
    ///
    /// Neighbours are accumulated in increasing column order
    /// (`ix−1 → iy−1 → centre → iy+1 → ix+1`) so the result is bit-identical
    /// to the dense matvec of [`StencilOperator::to_dense`].
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        let n = self.order();
        assert_eq!(x.len(), n, "stencil matvec: dimension mismatch");
        let xs = x.as_slice();
        let ny = self.ny;
        let (center, off_x, off_y) = (self.center, self.off_x, self.off_y);
        par_map_rows(self.stencil_nnz(), n, |k| {
            let iy = k % ny;
            let mut acc = T::zero();
            if k >= ny {
                acc = off_x.mul_add(xs[k - ny], acc);
            }
            if iy > 0 {
                acc = off_y.mul_add(xs[k - 1], acc);
            }
            acc = center.mul_add(xs[k], acc);
            if iy + 1 < ny {
                acc = off_y.mul_add(xs[k + 1], acc);
            }
            if k + ny < n {
                acc = off_x.mul_add(xs[k + ny], acc);
            }
            acc
        })
    }

    /// Materialise the stencil as a CSR matrix (useful for comparisons and
    /// for feeding constructors that want explicit sparsity).
    pub fn to_sparse(&self) -> SparseMatrix<T> {
        let n = self.order();
        let ny = self.ny;
        let mut triplets = Vec::with_capacity(self.stencil_nnz());
        for k in 0..n {
            let iy = k % ny;
            if k >= ny {
                triplets.push((k, k - ny, self.off_x));
            }
            if iy > 0 {
                triplets.push((k, k - 1, self.off_y));
            }
            triplets.push((k, k, self.center));
            if iy + 1 < ny {
                triplets.push((k, k + 1, self.off_y));
            }
            if k + ny < n {
                triplets.push((k, k + ny, self.off_x));
            }
        }
        SparseMatrix::from_triplets(n, n, &triplets)
    }

    /// Densify into a full matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        self.to_sparse().to_dense()
    }
}

impl<T: Real> LinearOperator<T> for StencilOperator<T> {
    fn nrows(&self) -> usize {
        self.order()
    }

    fn ncols(&self) -> usize {
        self.order()
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        StencilOperator::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        // The Kronecker-sum stencil is symmetric.
        StencilOperator::matvec(self, x)
    }

    fn nnz(&self) -> usize {
        self.stencil_nnz()
    }

    fn to_dense(&self) -> Matrix<T> {
        StencilOperator::to_dense(self)
    }

    fn norm_inf(&self) -> T {
        // The maximum absolute row sum is attained at an interior point
        // (every boundary row is missing one or more couplings).
        let x_terms = if self.nx > 1 { 2 } else { 0 };
        let y_terms = if self.ny > 1 { 2 } else { 0 };
        let mut s = self.center.abs();
        for _ in 0..x_terms {
            s += self.off_x.abs();
        }
        for _ in 0..y_terms {
            s += self.off_y.abs();
        }
        s
    }

    fn norm_frobenius(&self) -> T {
        let (nx, ny) = (self.nx, self.ny);
        let c2 = self.center * self.center;
        let x2 = self.off_x * self.off_x;
        let y2 = self.off_y * self.off_y;
        let count = |m: usize| T::from_f64(m as f64);
        let sum =
            count(nx * ny) * c2 + count(2 * (nx - 1) * ny) * x2 + count(2 * nx * (ny - 1)) * y2;
        sum.sqrt()
    }
}

/// The 2-D Poisson (five-point) operator on an `nx × ny` interior grid of the
/// unit square with Dirichlet boundary conditions.
///
/// With `scaled_by_h2` the operator is the PDE discretisation
/// `(1/hx²)·tridiag(−1,2,−1) ⊗ I + I ⊗ (1/hy²)·tridiag(−1,2,−1)`
/// (`hx = 1/(nx+1)`, `hy = 1/(ny+1)`); without it, the pure stencil with
/// `center = 4`, `off = −1`, whose spectrum lies in `(0, 8)` — the form most
/// convenient for block-encoding (spectral norm bounded independently of N).
pub fn poisson_2d<T: Real>(nx: usize, ny: usize, scaled_by_h2: bool) -> StencilOperator<T> {
    let (sx, sy) = if scaled_by_h2 {
        let hx = 1.0 / (nx as f64 + 1.0);
        let hy = 1.0 / (ny as f64 + 1.0);
        (1.0 / (hx * hx), 1.0 / (hy * hy))
    } else {
        (1.0, 1.0)
    };
    StencilOperator::new(
        nx,
        ny,
        T::from_f64(2.0 * sx + 2.0 * sy),
        T::from_f64(-sx),
        T::from_f64(-sy),
    )
}

/// Exact eigenvalues of the **unscaled** 2-D Poisson stencil:
/// `λ_ij = 4 sin²(iπ/(2(nx+1))) + 4 sin²(jπ/(2(ny+1)))`, `i = 1..nx`,
/// `j = 1..ny`.
pub fn poisson_2d_eigenvalues(nx: usize, ny: usize) -> Vec<f64> {
    let ex = crate::tridiag::poisson_1d_eigenvalues(nx);
    let ey = crate::tridiag::poisson_1d_eigenvalues(ny);
    let mut out = Vec::with_capacity(nx * ny);
    for &lx in &ex {
        for &ly in &ey {
            out.push(lx + ly);
        }
    }
    out
}

/// Exact 2-norm condition number of the unscaled 2-D Poisson stencil
/// (also valid for the `1/h²`-scaled operator on a **square** grid, where the
/// scaling is a uniform positive factor).
pub fn poisson_2d_condition_number(nx: usize, ny: usize) -> f64 {
    let ev = poisson_2d_eigenvalues(nx, ny);
    let max = ev.iter().cloned().fold(f64::MIN, f64::max);
    let min = ev.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

/// Sample `f(x, y)` on the interior grid of the 2-D Poisson problem
/// (`x = ix·hx`, `y = iy·hy` for `ix = 1..nx`, `iy = 1..ny`), flattened in
/// the operator's `ix·ny + iy` ordering.
pub fn poisson_2d_rhs<T: Real>(nx: usize, ny: usize, f: impl Fn(f64, f64) -> f64) -> Vector<T> {
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let mut out = Vec::with_capacity(nx * ny);
    for ix in 1..=nx {
        for iy in 1..=ny {
            out.push(T::from_f64(f(ix as f64 * hx, iy as f64 * hy)));
        }
    }
    Vector::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::cond_2;

    #[test]
    fn poisson_2d_matches_kronecker_sum_structure() {
        let s = poisson_2d::<f64>(3, 2, false);
        let d = s.to_dense();
        assert_eq!(d.nrows(), 6);
        assert!(d.is_symmetric(0.0));
        // Interior coupling pattern: centre 4, four neighbours -1.
        assert_eq!(d[(0, 0)], 4.0);
        assert_eq!(d[(0, 1)], -1.0); // (0,0)-(0,1): y neighbour
        assert_eq!(d[(0, 2)], -1.0); // (0,0)-(1,0): x neighbour
        assert_eq!(d[(0, 3)], 0.0);
        // No wrap-around between grid lines: (0,1) [k=1] and (1,0) [k=2]
        // are not coupled.
        assert_eq!(d[(1, 2)], 0.0);
    }

    #[test]
    fn matvec_is_bit_identical_to_dense() {
        let s = poisson_2d::<f64>(5, 4, true);
        let d = s.to_dense();
        let x: Vector<f64> = (0..20).map(|i| ((i as f64) * 0.37).sin()).collect();
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
        assert_eq!(
            LinearOperator::matvec_transposed(&s, &x).as_slice(),
            d.matvec(&x).as_slice()
        );
    }

    #[test]
    fn eigenvalues_match_dense_condition_number() {
        let kappa_analytic = poisson_2d_condition_number(4, 3);
        let kappa_numeric = cond_2(&poisson_2d::<f64>(4, 3, false).to_dense());
        assert!((kappa_analytic - kappa_numeric).abs() / kappa_analytic < 1e-8);
        assert!(poisson_2d_eigenvalues(4, 3)
            .iter()
            .all(|&l| l > 0.0 && l < 8.0));
    }

    #[test]
    fn norms_match_dense() {
        let s = poisson_2d::<f64>(4, 6, true);
        let d = s.to_dense();
        assert_eq!(LinearOperator::norm_inf(&s), d.norm_inf());
        assert!(
            (LinearOperator::norm_frobenius(&s) - d.norm_frobenius()).abs() / d.norm_frobenius()
                < 1e-14
        );
        assert_eq!(LinearOperator::nnz(&s), s.to_sparse().nnz());
    }

    #[test]
    fn rhs_sampling_follows_grid_ordering() {
        // f(x, y) = x so the sample varies only along ix (the outer index).
        let b = poisson_2d_rhs::<f64>(2, 3, |x, _| x);
        let hx = 1.0 / 3.0;
        assert!((b[0] - hx).abs() < 1e-15);
        assert!((b[2] - hx).abs() < 1e-15);
        assert!((b[3] - 2.0 * hx).abs() < 1e-15);
    }

    #[test]
    fn degenerate_one_dimensional_grids() {
        // ny = 1 reduces to the 1-D Poisson matrix along x.
        let s = poisson_2d::<f64>(5, 1, false);
        let t = crate::tridiag::poisson_1d::<f64>(5, false);
        // center = 2 + 2 = 4 here (both factors present); compare structure
        // against T_x + 2I instead.
        let d = s.to_dense();
        let mut expect = t.to_dense();
        for i in 0..5 {
            expect[(i, i)] += 2.0;
        }
        assert_eq!(d, expect);
    }
}
