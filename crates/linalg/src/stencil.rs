//! Matrix-free Kronecker-sum stencil operators and the 2-D Poisson problem.
//!
//! The 2-D analogue of the paper's Poisson running example (Section III-C4)
//! discretises `−Δu = f` on the unit square with homogeneous Dirichlet
//! boundary conditions: the matrix is the Kronecker sum
//! `A = T_x ⊗ I_ny + I_nx ⊗ T_y` of two 1-D second-difference matrices — the
//! classic five-point stencil.  At `N = nx·ny` unknowns the dense form costs
//! O(N²) memory; [`StencilOperator`] stores **five scalars** and applies the
//! operator in O(N), which is what lets the classical residual path of the
//! hybrid refiner scale to grids of tens of thousands of unknowns.
//!
//! The matvec visits the five neighbours of every grid point in increasing
//! column order with the same fused multiply-adds as the dense kernel, so the
//! product is **bit-identical** to `to_dense().matvec(..)` — the stencil can
//! replace the dense matrix inside the refinement loop without changing a
//! single bit of the convergence history (verified by the end-to-end
//! equivalence tests).

use crate::matrix::{par_map_rows, Matrix};
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::sparse::SparseMatrix;
use crate::vector::Vector;

/// A matrix-free five-point stencil on an `nx × ny` grid with Dirichlet
/// (zero) boundary conditions.
///
/// Grid point `(ix, iy)` maps to the flat index `ix·ny + iy`; the operator
/// couples it to itself with `center`, to `(ix±1, iy)` with `off_x` and to
/// `(ix, iy±1)` with `off_y`.  The represented matrix is symmetric (a
/// Kronecker sum of symmetric tridiagonal factors), so the transposed matvec
/// is the matvec itself.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilOperator<T: Real> {
    nx: usize,
    ny: usize,
    center: T,
    off_x: T,
    off_y: T,
}

impl<T: Real> StencilOperator<T> {
    /// Build a five-point stencil with the given coefficients.
    pub fn new(nx: usize, ny: usize, center: T, off_x: T, off_y: T) -> Self {
        assert!(nx >= 1 && ny >= 1, "stencil grid must be non-empty");
        StencilOperator {
            nx,
            ny,
            center,
            off_x,
            off_y,
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Order of the represented matrix, `N = nx·ny`.
    pub fn order(&self) -> usize {
        self.nx * self.ny
    }

    /// The stencil coefficients `(center, off_x, off_y)`.
    pub fn coefficients(&self) -> (T, T, T) {
        (self.center, self.off_x, self.off_y)
    }

    /// Number of stored matrix entries the five-point coupling represents.
    pub fn stencil_nnz(&self) -> usize {
        let (nx, ny) = (self.nx, self.ny);
        nx * ny + 2 * (nx - 1) * ny + 2 * nx * (ny - 1)
    }

    /// Apply the stencil in O(N), without ever materialising the matrix.
    ///
    /// Neighbours are accumulated in increasing column order
    /// (`ix−1 → iy−1 → centre → iy+1 → ix+1`) so the result is bit-identical
    /// to the dense matvec of [`StencilOperator::to_dense`].
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        let n = self.order();
        assert_eq!(x.len(), n, "stencil matvec: dimension mismatch");
        let xs = x.as_slice();
        let ny = self.ny;
        let (center, off_x, off_y) = (self.center, self.off_x, self.off_y);
        par_map_rows(self.stencil_nnz(), n, |k| {
            let iy = k % ny;
            let mut acc = T::zero();
            if k >= ny {
                acc = off_x.mul_add(xs[k - ny], acc);
            }
            if iy > 0 {
                acc = off_y.mul_add(xs[k - 1], acc);
            }
            acc = center.mul_add(xs[k], acc);
            if iy + 1 < ny {
                acc = off_y.mul_add(xs[k + 1], acc);
            }
            if k + ny < n {
                acc = off_x.mul_add(xs[k + ny], acc);
            }
            acc
        })
    }

    /// Materialise the stencil as a CSR matrix (useful for comparisons and
    /// for feeding constructors that want explicit sparsity).
    pub fn to_sparse(&self) -> SparseMatrix<T> {
        let n = self.order();
        let ny = self.ny;
        let mut triplets = Vec::with_capacity(self.stencil_nnz());
        for k in 0..n {
            let iy = k % ny;
            if k >= ny {
                triplets.push((k, k - ny, self.off_x));
            }
            if iy > 0 {
                triplets.push((k, k - 1, self.off_y));
            }
            triplets.push((k, k, self.center));
            if iy + 1 < ny {
                triplets.push((k, k + 1, self.off_y));
            }
            if k + ny < n {
                triplets.push((k, k + ny, self.off_x));
            }
        }
        SparseMatrix::from_triplets(n, n, &triplets)
    }

    /// Densify into a full matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        self.to_sparse().to_dense()
    }

    /// Convert the five coefficients to another precision (O(1): the grid is
    /// never materialised).
    pub fn convert<S: Real>(&self) -> StencilOperator<S> {
        StencilOperator {
            nx: self.nx,
            ny: self.ny,
            center: S::from_f64(self.center.to_f64()),
            off_x: S::from_f64(self.off_x.to_f64()),
            off_y: S::from_f64(self.off_y.to_f64()),
        }
    }
}

impl<T: Real> LinearOperator<T> for StencilOperator<T> {
    fn nrows(&self) -> usize {
        self.order()
    }

    fn ncols(&self) -> usize {
        self.order()
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        StencilOperator::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        // The Kronecker-sum stencil is symmetric.
        StencilOperator::matvec(self, x)
    }

    fn nnz(&self) -> usize {
        self.stencil_nnz()
    }

    fn to_dense(&self) -> Matrix<T> {
        StencilOperator::to_dense(self)
    }

    fn norm_inf(&self) -> T {
        // The maximum absolute row sum is attained at an interior point
        // (every boundary row is missing one or more couplings).
        let x_terms = if self.nx > 1 { 2 } else { 0 };
        let y_terms = if self.ny > 1 { 2 } else { 0 };
        let mut s = self.center.abs();
        for _ in 0..x_terms {
            s += self.off_x.abs();
        }
        for _ in 0..y_terms {
            s += self.off_y.abs();
        }
        s
    }

    fn norm_frobenius(&self) -> T {
        let (nx, ny) = (self.nx, self.ny);
        let c2 = self.center * self.center;
        let x2 = self.off_x * self.off_x;
        let y2 = self.off_y * self.off_y;
        let count = |m: usize| T::from_f64(m as f64);
        let sum =
            count(nx * ny) * c2 + count(2 * (nx - 1) * ny) * x2 + count(2 * nx * (ny - 1)) * y2;
        sum.sqrt()
    }
}

/// A matrix-free `(2d+1)`-point stencil on a d-dimensional grid with
/// Dirichlet (zero) boundary conditions — the d-dimensional generalisation of
/// [`StencilOperator`] that makes 3-D Poisson (and beyond) affordable.
///
/// Grid point `(c_0, …, c_{d−1})` on a `dims[0] × … × dims[d−1]` grid maps to
/// the row-major flat index `Σ c_a·stride_a` (`stride_{d−1} = 1`); the
/// operator couples it to itself with `center` and to its two neighbours
/// along axis `a` with `offs[a]`.  The represented matrix is the Kronecker
/// sum of symmetric tridiagonal factors, so the transposed matvec is the
/// matvec itself.
///
/// Neighbours are accumulated in increasing column order (minus-neighbours by
/// decreasing stride, centre, plus-neighbours by increasing stride) with the
/// same fused multiply-adds as the dense kernel, so the matvec is
/// **bit-identical** to `to_dense().matvec(..)` — the same oracle contract as
/// the 2-D stencil and the CSR layer.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilNd<T: Real> {
    dims: Vec<usize>,
    strides: Vec<usize>,
    center: T,
    offs: Vec<T>,
}

impl<T: Real> StencilNd<T> {
    /// Build a d-dimensional stencil with the given per-axis couplings.
    pub fn new(dims: &[usize], center: T, offs: &[T]) -> Self {
        assert!(!dims.is_empty(), "stencil needs at least one axis");
        assert!(
            dims.iter().all(|&d| d >= 1),
            "stencil grid must be non-empty"
        );
        assert_eq!(dims.len(), offs.len(), "one coupling per axis");
        let d = dims.len();
        let mut strides = vec![1usize; d];
        for a in (0..d - 1).rev() {
            strides[a] = strides[a + 1] * dims[a + 1];
        }
        StencilNd {
            dims: dims.to_vec(),
            strides,
            center,
            offs: offs.to_vec(),
        }
    }

    /// Grid extents per axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Order of the represented matrix, `N = Π dims[a]`.
    pub fn order(&self) -> usize {
        self.dims.iter().product()
    }

    /// The centre coefficient.
    pub fn center(&self) -> T {
        self.center
    }

    /// The per-axis neighbour couplings.
    pub fn offsets(&self) -> &[T] {
        &self.offs
    }

    /// Number of stored matrix entries the coupling pattern represents.
    pub fn stencil_nnz(&self) -> usize {
        let n = self.order();
        let mut nnz = n;
        for &d in &self.dims {
            nnz += 2 * (d - 1) * (n / d);
        }
        nnz
    }

    /// Apply the stencil in O(d·N), without ever materialising the matrix.
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        let n = self.order();
        assert_eq!(x.len(), n, "stencil matvec: dimension mismatch");
        let xs = x.as_slice();
        let d = self.dims.len();
        par_map_rows(self.stencil_nnz(), n, |k| {
            let mut acc = T::zero();
            // Minus-neighbours: strides decrease with the axis index, so
            // iterating axes in order visits columns k−s_0 < … < k−s_{d−1}.
            for a in 0..d {
                let c = (k / self.strides[a]) % self.dims[a];
                if c > 0 {
                    acc = self.offs[a].mul_add(xs[k - self.strides[a]], acc);
                }
            }
            acc = self.center.mul_add(xs[k], acc);
            for a in (0..d).rev() {
                let c = (k / self.strides[a]) % self.dims[a];
                if c + 1 < self.dims[a] {
                    acc = self.offs[a].mul_add(xs[k + self.strides[a]], acc);
                }
            }
            acc
        })
    }

    /// Materialise as CSR (entries in the matvec's column order).
    pub fn to_sparse(&self) -> SparseMatrix<T> {
        let n = self.order();
        let d = self.dims.len();
        let mut triplets = Vec::with_capacity(self.stencil_nnz());
        for k in 0..n {
            for a in 0..d {
                let c = (k / self.strides[a]) % self.dims[a];
                if c > 0 {
                    triplets.push((k, k - self.strides[a], self.offs[a]));
                }
            }
            triplets.push((k, k, self.center));
            for a in (0..d).rev() {
                let c = (k / self.strides[a]) % self.dims[a];
                if c + 1 < self.dims[a] {
                    triplets.push((k, k + self.strides[a], self.offs[a]));
                }
            }
        }
        SparseMatrix::from_triplets(n, n, &triplets)
    }

    /// Densify into a full matrix.
    pub fn to_dense(&self) -> Matrix<T> {
        self.to_sparse().to_dense()
    }

    /// Convert the coefficients to another precision (O(d)).
    pub fn convert<S: Real>(&self) -> StencilNd<S> {
        StencilNd {
            dims: self.dims.clone(),
            strides: self.strides.clone(),
            center: S::from_f64(self.center.to_f64()),
            offs: self.offs.iter().map(|&o| S::from_f64(o.to_f64())).collect(),
        }
    }
}

impl<T: Real> LinearOperator<T> for StencilNd<T> {
    fn nrows(&self) -> usize {
        self.order()
    }

    fn ncols(&self) -> usize {
        self.order()
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        StencilNd::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        // The Kronecker-sum stencil is symmetric.
        StencilNd::matvec(self, x)
    }

    fn nnz(&self) -> usize {
        self.stencil_nnz()
    }

    fn to_dense(&self) -> Matrix<T> {
        StencilNd::to_dense(self)
    }

    fn norm_inf(&self) -> T {
        // Maximum absolute row sum: a point as interior as each axis allows
        // (min(2, dims[a]−1) neighbours along axis a).
        let mut s = self.center.abs();
        for (a, &dim) in self.dims.iter().enumerate() {
            for _ in 0..2.min(dim - 1) {
                s += self.offs[a].abs();
            }
        }
        s
    }

    fn norm_frobenius(&self) -> T {
        let n = self.order();
        let count = |m: usize| T::from_f64(m as f64);
        let mut sum = count(n) * self.center * self.center;
        for (a, &dim) in self.dims.iter().enumerate() {
            sum += count(2 * (dim - 1) * (n / dim)) * self.offs[a] * self.offs[a];
        }
        sum.sqrt()
    }
}

/// The d-dimensional Poisson operator on the interior grid of the unit
/// hypercube with Dirichlet boundary conditions: the Kronecker sum of 1-D
/// second-difference factors along every axis.
///
/// With `scaled_by_h2` each axis carries its `1/h_a²` factor
/// (`h_a = 1/(dims[a]+1)`); without it, the pure stencil with
/// `center = 2d`, `off = −1`, whose spectrum lies in `(0, 4d)`.
pub fn poisson_nd<T: Real>(dims: &[usize], scaled_by_h2: bool) -> StencilNd<T> {
    let scales: Vec<f64> = dims
        .iter()
        .map(|&d| {
            if scaled_by_h2 {
                let h = 1.0 / (d as f64 + 1.0);
                1.0 / (h * h)
            } else {
                1.0
            }
        })
        .collect();
    let center = T::from_f64(2.0 * scales.iter().sum::<f64>());
    let offs: Vec<T> = scales.iter().map(|&s| T::from_f64(-s)).collect();
    StencilNd::new(dims, center, &offs)
}

/// The 3-D Poisson (seven-point) operator on an `nx × ny × nz` interior grid.
pub fn poisson_3d<T: Real>(nx: usize, ny: usize, nz: usize, scaled_by_h2: bool) -> StencilNd<T> {
    poisson_nd(&[nx, ny, nz], scaled_by_h2)
}

/// Exact 2-norm condition number of the **unscaled** d-dimensional Poisson
/// stencil (also valid for the `1/h²`-scaled operator on a grid with equal
/// extents): the eigenvalues are sums of per-axis 1-D eigenvalues, so the
/// extremes are sums of per-axis extremes — O(Σ dims[a]), usable at N ~ 10⁶.
pub fn poisson_nd_condition_number(dims: &[usize]) -> f64 {
    let mut min = 0.0;
    let mut max = 0.0;
    for &d in dims {
        let ev = crate::tridiag::poisson_1d_eigenvalues(d);
        min += ev.iter().cloned().fold(f64::MAX, f64::min);
        max += ev.iter().cloned().fold(f64::MIN, f64::max);
    }
    max / min
}

/// Exact 2-norm condition number of the unscaled 3-D Poisson stencil.
pub fn poisson_3d_condition_number(nx: usize, ny: usize, nz: usize) -> f64 {
    poisson_nd_condition_number(&[nx, ny, nz])
}

/// Sample `f(x, y, z)` on the interior grid of the 3-D Poisson problem,
/// flattened in the operator's row-major `(ix·ny + iy)·nz + iz` ordering.
pub fn poisson_3d_rhs<T: Real>(
    nx: usize,
    ny: usize,
    nz: usize,
    f: impl Fn(f64, f64, f64) -> f64,
) -> Vector<T> {
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let hz = 1.0 / (nz as f64 + 1.0);
    let mut out = Vec::with_capacity(nx * ny * nz);
    for ix in 1..=nx {
        for iy in 1..=ny {
            for iz in 1..=nz {
                out.push(T::from_f64(f(
                    ix as f64 * hx,
                    iy as f64 * hy,
                    iz as f64 * hz,
                )));
            }
        }
    }
    Vector::from_vec(out)
}

/// The 2-D Poisson (five-point) operator on an `nx × ny` interior grid of the
/// unit square with Dirichlet boundary conditions.
///
/// With `scaled_by_h2` the operator is the PDE discretisation
/// `(1/hx²)·tridiag(−1,2,−1) ⊗ I + I ⊗ (1/hy²)·tridiag(−1,2,−1)`
/// (`hx = 1/(nx+1)`, `hy = 1/(ny+1)`); without it, the pure stencil with
/// `center = 4`, `off = −1`, whose spectrum lies in `(0, 8)` — the form most
/// convenient for block-encoding (spectral norm bounded independently of N).
pub fn poisson_2d<T: Real>(nx: usize, ny: usize, scaled_by_h2: bool) -> StencilOperator<T> {
    let (sx, sy) = if scaled_by_h2 {
        let hx = 1.0 / (nx as f64 + 1.0);
        let hy = 1.0 / (ny as f64 + 1.0);
        (1.0 / (hx * hx), 1.0 / (hy * hy))
    } else {
        (1.0, 1.0)
    };
    StencilOperator::new(
        nx,
        ny,
        T::from_f64(2.0 * sx + 2.0 * sy),
        T::from_f64(-sx),
        T::from_f64(-sy),
    )
}

/// Exact eigenvalues of the **unscaled** 2-D Poisson stencil:
/// `λ_ij = 4 sin²(iπ/(2(nx+1))) + 4 sin²(jπ/(2(ny+1)))`, `i = 1..nx`,
/// `j = 1..ny`.
pub fn poisson_2d_eigenvalues(nx: usize, ny: usize) -> Vec<f64> {
    let ex = crate::tridiag::poisson_1d_eigenvalues(nx);
    let ey = crate::tridiag::poisson_1d_eigenvalues(ny);
    let mut out = Vec::with_capacity(nx * ny);
    for &lx in &ex {
        for &ly in &ey {
            out.push(lx + ly);
        }
    }
    out
}

/// Exact 2-norm condition number of the unscaled 2-D Poisson stencil
/// (also valid for the `1/h²`-scaled operator on a **square** grid, where the
/// scaling is a uniform positive factor).
pub fn poisson_2d_condition_number(nx: usize, ny: usize) -> f64 {
    let ev = poisson_2d_eigenvalues(nx, ny);
    let max = ev.iter().cloned().fold(f64::MIN, f64::max);
    let min = ev.iter().cloned().fold(f64::MAX, f64::min);
    max / min
}

/// Sample `f(x, y)` on the interior grid of the 2-D Poisson problem
/// (`x = ix·hx`, `y = iy·hy` for `ix = 1..nx`, `iy = 1..ny`), flattened in
/// the operator's `ix·ny + iy` ordering.
pub fn poisson_2d_rhs<T: Real>(nx: usize, ny: usize, f: impl Fn(f64, f64) -> f64) -> Vector<T> {
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let mut out = Vec::with_capacity(nx * ny);
    for ix in 1..=nx {
        for iy in 1..=ny {
            out.push(T::from_f64(f(ix as f64 * hx, iy as f64 * hy)));
        }
    }
    Vector::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::cond_2;

    #[test]
    fn poisson_2d_matches_kronecker_sum_structure() {
        let s = poisson_2d::<f64>(3, 2, false);
        let d = s.to_dense();
        assert_eq!(d.nrows(), 6);
        assert!(d.is_symmetric(0.0));
        // Interior coupling pattern: centre 4, four neighbours -1.
        assert_eq!(d[(0, 0)], 4.0);
        assert_eq!(d[(0, 1)], -1.0); // (0,0)-(0,1): y neighbour
        assert_eq!(d[(0, 2)], -1.0); // (0,0)-(1,0): x neighbour
        assert_eq!(d[(0, 3)], 0.0);
        // No wrap-around between grid lines: (0,1) [k=1] and (1,0) [k=2]
        // are not coupled.
        assert_eq!(d[(1, 2)], 0.0);
    }

    #[test]
    fn matvec_is_bit_identical_to_dense() {
        let s = poisson_2d::<f64>(5, 4, true);
        let d = s.to_dense();
        let x: Vector<f64> = (0..20).map(|i| ((i as f64) * 0.37).sin()).collect();
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
        assert_eq!(
            LinearOperator::matvec_transposed(&s, &x).as_slice(),
            d.matvec(&x).as_slice()
        );
    }

    #[test]
    fn eigenvalues_match_dense_condition_number() {
        let kappa_analytic = poisson_2d_condition_number(4, 3);
        let kappa_numeric = cond_2(&poisson_2d::<f64>(4, 3, false).to_dense());
        assert!((kappa_analytic - kappa_numeric).abs() / kappa_analytic < 1e-8);
        assert!(poisson_2d_eigenvalues(4, 3)
            .iter()
            .all(|&l| l > 0.0 && l < 8.0));
    }

    #[test]
    fn norms_match_dense() {
        let s = poisson_2d::<f64>(4, 6, true);
        let d = s.to_dense();
        assert_eq!(LinearOperator::norm_inf(&s), d.norm_inf());
        assert!(
            (LinearOperator::norm_frobenius(&s) - d.norm_frobenius()).abs() / d.norm_frobenius()
                < 1e-14
        );
        assert_eq!(LinearOperator::nnz(&s), s.to_sparse().nnz());
    }

    #[test]
    fn rhs_sampling_follows_grid_ordering() {
        // f(x, y) = x so the sample varies only along ix (the outer index).
        let b = poisson_2d_rhs::<f64>(2, 3, |x, _| x);
        let hx = 1.0 / 3.0;
        assert!((b[0] - hx).abs() < 1e-15);
        assert!((b[2] - hx).abs() < 1e-15);
        assert!((b[3] - 2.0 * hx).abs() < 1e-15);
    }

    #[test]
    fn stencil_nd_reduces_to_the_2d_stencil_bit_for_bit() {
        let s2 = poisson_2d::<f64>(5, 4, true);
        let (c, ox, oy) = s2.coefficients();
        let snd = StencilNd::new(&[5, 4], c, &[ox, oy]);
        let x: Vector<f64> = (0..20).map(|i| ((i as f64) * 0.41).sin()).collect();
        assert_eq!(snd.matvec(&x).as_slice(), s2.matvec(&x).as_slice());
        assert_eq!(snd.to_sparse(), s2.to_sparse());
        assert_eq!(snd.stencil_nnz(), s2.stencil_nnz());
    }

    #[test]
    fn poisson_3d_matvec_is_bit_identical_to_dense() {
        let s = poisson_3d::<f64>(3, 4, 2, true);
        assert_eq!(s.order(), 24);
        let d = s.to_dense();
        assert!(d.is_symmetric(0.0));
        let x: Vector<f64> = (0..24).map(|i| ((i as f64) * 0.73).cos()).collect();
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
        assert_eq!(
            LinearOperator::matvec_transposed(&s, &x).as_slice(),
            d.matvec(&x).as_slice()
        );
    }

    #[test]
    fn poisson_3d_condition_number_matches_dense() {
        let kappa_analytic = poisson_3d_condition_number(3, 2, 4);
        let kappa_numeric = cond_2(&poisson_3d::<f64>(3, 2, 4, false).to_dense());
        assert!((kappa_analytic - kappa_numeric).abs() / kappa_analytic < 1e-8);
    }

    #[test]
    fn stencil_nd_norms_match_dense() {
        let s = poisson_3d::<f64>(4, 3, 2, true);
        let d = s.to_dense();
        assert_eq!(LinearOperator::norm_inf(&s), d.norm_inf());
        assert!(
            (LinearOperator::norm_frobenius(&s) - d.norm_frobenius()).abs() / d.norm_frobenius()
                < 1e-14
        );
        assert_eq!(LinearOperator::nnz(&s), s.to_sparse().nnz());
        // Degenerate axes (extent 1 and 2) keep the row-sum bound exact.
        let thin = poisson_nd::<f64>(&[2, 1, 5], false);
        let dt = thin.to_dense();
        assert_eq!(LinearOperator::norm_inf(&thin), dt.norm_inf());
    }

    #[test]
    fn poisson_3d_rhs_follows_row_major_ordering() {
        // f = z varies fastest (innermost axis).
        let b = poisson_3d_rhs::<f64>(2, 2, 3, |_, _, z| z);
        let hz = 1.0 / 4.0;
        assert!((b[0] - hz).abs() < 1e-15);
        assert!((b[1] - 2.0 * hz).abs() < 1e-15);
        assert!((b[3] - hz).abs() < 1e-15);
    }

    #[test]
    fn degenerate_one_dimensional_grids() {
        // ny = 1 reduces to the 1-D Poisson matrix along x.
        let s = poisson_2d::<f64>(5, 1, false);
        let t = crate::tridiag::poisson_1d::<f64>(5, false);
        // center = 2 + 2 = 4 here (both factors present); compare structure
        // against T_x + 2I instead.
        let d = s.to_dense();
        let mut expect = t.to_dense();
        for i in 0..5 {
            expect[(i, i)] += 2.0;
        }
        assert_eq!(d, expect);
    }
}
