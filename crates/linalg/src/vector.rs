//! Dense real vectors.
//!
//! A thin, owned wrapper around `Vec<T>` providing the vector operations the
//! solvers need: axpy-style updates, dot products, norms, normalisation and
//! precision conversion.  Indexing is checked in debug builds and unchecked
//! behaviour is never relied upon.

use crate::scalar::Real;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense column vector over a [`Real`] scalar type.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector<T: Real> {
    data: Vec<T>,
}

impl<T: Real> Vector<T> {
    /// Create a vector from raw data.
    pub fn from_vec(data: Vec<T>) -> Self {
        Vector { data }
    }

    /// Create a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector {
            data: vec![T::zero(); n],
        }
    }

    /// Create a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Vector {
            data: vec![T::one(); n],
        }
    }

    /// The `i`-th standard basis vector of dimension `n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for dimension {n}");
        let mut v = Self::zeros(n);
        v[i] = T::one();
        v
    }

    /// Build a vector from an `f64` slice, rounding into the target precision.
    pub fn from_f64_slice(xs: &[f64]) -> Self {
        Vector {
            data: xs.iter().map(|&x| T::from_f64(x)).collect(),
        }
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the vector and return the underlying storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Convert every entry to `f64`.
    pub fn to_f64(&self) -> Vec<f64> {
        self.data.iter().map(|x| x.to_f64()).collect()
    }

    /// Convert into another precision, rounding element-wise.
    pub fn convert<S: Real>(&self) -> Vector<S> {
        Vector {
            data: self.data.iter().map(|x| S::from_f64(x.to_f64())).collect(),
        }
    }

    /// Euclidean inner product `self · other`.
    pub fn dot(&self, other: &Self) -> T {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(T::zero(), |acc, (&a, &b)| a.mul_add(b, acc))
    }

    /// Euclidean (2-)norm.
    pub fn norm2(&self) -> T {
        // Scale by the largest magnitude to avoid overflow for extreme inputs.
        let maxabs = self.data.iter().fold(T::zero(), |acc, x| acc.max(x.abs()));
        if maxabs == T::zero() {
            return T::zero();
        }
        let sum = self.data.iter().fold(T::zero(), |acc, &x| {
            let s = x / maxabs;
            s.mul_add(s, acc)
        });
        maxabs * sum.sqrt()
    }

    /// 1-norm (sum of absolute values).
    pub fn norm1(&self) -> T {
        self.data.iter().fold(T::zero(), |acc, x| acc + x.abs())
    }

    /// ∞-norm (largest absolute value).
    pub fn norm_inf(&self) -> T {
        self.data.iter().fold(T::zero(), |acc, x| acc.max(x.abs()))
    }

    /// `self += alpha * x` (the BLAS `axpy` kernel).
    pub fn axpy(&mut self, alpha: T, x: &Self) {
        assert_eq!(self.len(), x.len(), "axpy: dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&x.data) {
            *a = alpha.mul_add(b, *a);
        }
    }

    /// Multiply every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: T) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Return `alpha * self` as a new vector.
    pub fn scaled(&self, alpha: T) -> Self {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Normalise to unit Euclidean norm, returning the original norm.
    ///
    /// Quantum algorithms require the right-hand side to be encoded as a unit
    /// vector (Remark 2 of the paper); this returns the scale factor needed to
    /// undo the normalisation.
    pub fn normalize(&mut self) -> T {
        let n = self.norm2();
        if n != T::zero() {
            let inv = T::one() / n;
            self.scale(inv);
        }
        n
    }

    /// Element-wise maximum absolute difference with another vector.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!(self.len(), other.len(), "max_abs_diff: dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(T::zero(), |acc, (&a, &b)| acc.max((a - b).abs()))
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T: Real> Index<usize> for Vector<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Real> IndexMut<usize> for Vector<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

impl<T: Real> Add for &Vector<T> {
    type Output = Vector<T>;
    fn add(self, rhs: &Vector<T>) -> Vector<T> {
        assert_eq!(self.len(), rhs.len(), "add: dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Real> Sub for &Vector<T> {
    type Output = Vector<T>;
    fn sub(self, rhs: &Vector<T>) -> Vector<T> {
        assert_eq!(self.len(), rhs.len(), "sub: dimension mismatch");
        Vector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Real> Neg for &Vector<T> {
    type Output = Vector<T>;
    fn neg(self) -> Vector<T> {
        Vector {
            data: self.data.iter().map(|&a| -a).collect(),
        }
    }
}

impl<T: Real> Mul<T> for &Vector<T> {
    type Output = Vector<T>;
    fn mul(self, alpha: T) -> Vector<T> {
        self.scaled(alpha)
    }
}

impl<T: Real> AddAssign<&Vector<T>> for Vector<T> {
    fn add_assign(&mut self, rhs: &Vector<T>) {
        assert_eq!(self.len(), rhs.len(), "add_assign: dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl<T: Real> SubAssign<&Vector<T>> for Vector<T> {
    fn sub_assign(&mut self, rhs: &Vector<T>) {
        assert_eq!(self.len(), rhs.len(), "sub_assign: dimension mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl<T: Real> From<Vec<T>> for Vector<T> {
    fn from(data: Vec<T>) -> Self {
        Vector { data }
    }
}

impl<T: Real> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[f64]) -> Vector<f64> {
        Vector::from_f64_slice(xs)
    }

    #[test]
    fn construction_and_len() {
        assert_eq!(Vector::<f64>::zeros(4).len(), 4);
        assert_eq!(Vector::<f64>::ones(3).norm1(), 3.0);
        let e1 = Vector::<f64>::basis(4, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn basis_out_of_range_panics() {
        let _ = Vector::<f64>::basis(3, 3);
    }

    #[test]
    fn dot_and_norms() {
        let a = v(&[3.0, 4.0]);
        assert_eq!(a.norm2(), 5.0);
        assert_eq!(a.norm1(), 7.0);
        assert_eq!(a.norm_inf(), 4.0);
        let b = v(&[1.0, -1.0]);
        assert_eq!(a.dot(&b), -1.0);
    }

    #[test]
    fn norm2_avoids_overflow() {
        let a = v(&[1e200, 1e200]);
        let n = a.norm2();
        assert!(n.is_finite());
        assert!((n - 1e200 * 2f64.sqrt()).abs() / n < 1e-14);
    }

    #[test]
    fn axpy_and_ops() {
        let mut y = v(&[1.0, 2.0, 3.0]);
        let x = v(&[1.0, 1.0, 1.0]);
        y.axpy(2.0, &x);
        assert_eq!(y.as_slice(), &[3.0, 4.0, 5.0]);
        let z = &y - &x;
        assert_eq!(z.as_slice(), &[2.0, 3.0, 4.0]);
        let w = &z + &x;
        assert_eq!(w.as_slice(), y.as_slice());
        let neg = -&x;
        assert_eq!(neg.as_slice(), &[-1.0, -1.0, -1.0]);
        let s = &x * 3.0;
        assert_eq!(s.as_slice(), &[3.0, 3.0, 3.0]);
    }

    #[test]
    fn normalization_returns_scale() {
        let mut a = v(&[3.0, 4.0]);
        let n = a.normalize();
        assert_eq!(n, 5.0);
        assert!((a.norm2() - 1.0).abs() < 1e-15);
        let mut zero = Vector::<f64>::zeros(2);
        assert_eq!(zero.normalize(), 0.0);
    }

    #[test]
    fn conversion_changes_precision() {
        let a = v(&[1.0 / 3.0, 2.0 / 3.0]);
        let low: Vector<f32> = a.convert();
        let back: Vector<f64> = low.convert();
        let diff = a.max_abs_diff(&back);
        assert!(diff > 0.0 && diff < 1e-7);
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_panics() {
        let a = v(&[1.0]);
        let b = v(&[1.0, 2.0]);
        let _ = a.dot(&b);
    }
}
