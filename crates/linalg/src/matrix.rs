//! Dense row-major matrices.
//!
//! The problem sizes in the paper's experiments are tiny (N = 16), but the
//! classical cost model covers general dense matrices, so the kernels here are
//! written the way a production dense-LA library would write them: row-major
//! contiguous storage, cache-friendly loop ordering for the matrix product,
//! and rayon parallelism over rows once the work is large enough to amortise
//! the fork/join overhead.  The vendored rayon adapters fan out over real
//! `std::thread::scope` workers (see `vendor/rayon`), so `matmul` and `matvec`
//! genuinely use the machine's cores above [`PAR_THRESHOLD`].

use crate::scalar::Real;
use crate::simd;
use crate::vector::Vector;
use rayon::prelude::*;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Minimum number of scalar multiply-adds before a kernel fans out across
/// threads.
///
/// Below this threshold the sequential loop is faster than spawning scoped
/// threads; the value is deliberately conservative (≈ a few microseconds of
/// work, comfortably above the per-call spawn cost of the vendored rayon's
/// thread fan-out).
pub(crate) const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Shared row-partitioned parallel map used by every operator matvec in the
/// crate (dense, CSR, tridiagonal, stencil): computes `f(i)` for each output
/// row `i`, fanning out across threads when `work` (total scalar
/// multiply-adds) reaches [`PAR_THRESHOLD`].  Each output entry depends only
/// on its own row, so the result is bit-identical at any thread count.
pub(crate) fn par_map_rows<T: Real>(
    work: usize,
    rows: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vector<T> {
    let data: Vec<T> = if work >= PAR_THRESHOLD {
        (0..rows).into_par_iter().map(f).collect()
    } else {
        (0..rows).map(f).collect()
    };
    Vector::from_vec(data)
}

/// A dense row-major matrix over a [`Real`] scalar type.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T: Real> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Create the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from a row-major `f64` slice, rounding into precision `T`.
    pub fn from_f64_slice(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "from_f64_slice: length mismatch");
        Matrix {
            rows,
            cols,
            data: data.iter().map(|&x| T::from_f64(x)).collect(),
        }
    }

    /// Create a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Create a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[T]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row index out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extract column `j` as a vector.
    pub fn col(&self, j: usize) -> Vector<T> {
        assert!(j < self.cols, "column index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Set column `j` from a vector.
    pub fn set_col(&mut self, j: usize, v: &Vector<T>) {
        assert!(j < self.cols, "column index out of range");
        assert_eq!(v.len(), self.rows, "set_col: dimension mismatch");
        for i in 0..self.rows {
            self[(i, j)] = v[i];
        }
    }

    /// The diagonal entries.
    pub fn diag(&self) -> Vec<T> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Swap rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(
            a < self.rows && b < self.rows,
            "swap_rows: index out of range"
        );
        let c = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.data.split_at_mut(hi * c);
        first[lo * c..lo * c + c].swap_with_slice(&mut second[..c]);
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix-vector product `A x`.
    ///
    /// For `T = f64` this runs the SIMD row-group kernel (see
    /// [`crate::simd`]); the result is bit-identical to
    /// [`Matrix::matvec_scalar`], which every other precision uses directly.
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        if simd::is_f64::<T>() {
            return self.matvec_f64_simd(x);
        }
        self.matvec_scalar(x)
    }

    /// Scalar matvec kernel — the pre-SIMD loop kept verbatim as the
    /// equivalence oracle (and the only path for non-`f64` precisions).
    pub fn matvec_scalar(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        let xs = x.as_slice();
        let work = self.rows * self.cols;
        par_map_rows(work, self.rows, |i| {
            self.row(i)
                .iter()
                .zip(xs)
                .fold(T::zero(), |acc, (&a, &b)| a.mul_add(b, acc))
        })
    }

    /// SIMD matvec for `T = f64`: groups of four output rows per lane set,
    /// row-partitioned across threads above the shared work threshold.
    fn matvec_f64_simd(&self, x: &Vector<T>) -> Vector<T> {
        let cols = self.cols;
        let a = simd::as_f64(self.as_slice());
        let xs = simd::as_f64(x.as_slice());
        let mut out = vec![T::zero(); self.rows];
        let os = simd::as_f64_mut(&mut out);
        let work = self.rows * cols;
        if work >= PAR_THRESHOLD && cols > 0 {
            // Whole lane-groups per task so only the final task has a
            // scalar remainder (identical results either way).
            const GROUP: usize = 8 * simd::LANES;
            os.par_chunks_mut(GROUP).enumerate().for_each(|(g, chunk)| {
                let r0 = g * GROUP;
                simd::dense_matvec(&a[r0 * cols..(r0 + chunk.len()) * cols], cols, xs, chunk);
            });
        } else {
            simd::dense_matvec(a, cols, xs, os);
        }
        Vector::from_vec(out)
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    pub fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(self.rows, x.len(), "matvec_transposed: dimension mismatch");
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            let row = self.row(i);
            for j in 0..self.cols {
                out[j] = row[j].mul_add(xi, out[j]);
            }
        }
        out
    }

    /// Matrix product `A B` (ikj loop order, rayon over rows of `A` when
    /// large).
    ///
    /// For `T = f64` this runs the cache-blocked SIMD kernel (see
    /// [`crate::simd`]); the result is bit-identical to
    /// [`Matrix::matmul_scalar`], which every other precision uses directly.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        if simd::is_f64::<T>() {
            return self.matmul_f64_simd(other);
        }
        self.matmul_scalar(other)
    }

    /// SIMD + cache-blocked matmul for `T = f64`: thread tasks own blocks of
    /// output rows; within a block the `k` dimension is tiled so each panel
    /// of `B` is reused across the block's rows while cache-hot.
    fn matmul_f64_simd(&self, other: &Self) -> Self {
        let m = self.rows;
        let k = self.cols;
        let n = other.cols;
        let mut data = vec![T::zero(); m * n];
        if m > 0 && n > 0 {
            let a = simd::as_f64(&self.data);
            let b = simd::as_f64(&other.data);
            let os = simd::as_f64_mut(&mut data);
            let work = m * k * n;
            if work >= PAR_THRESHOLD {
                const ROW_BLOCK: usize = 8;
                os.par_chunks_mut(ROW_BLOCK * n)
                    .enumerate()
                    .for_each(|(blk, out_blk)| {
                        let i0 = blk * ROW_BLOCK;
                        let ni = out_blk.len() / n;
                        simd::matmul_block(&a[i0 * k..(i0 + ni) * k], k, b, n, out_blk);
                    });
            } else {
                simd::matmul_block(a, k, b, n, os);
            }
        }
        Matrix {
            rows: m,
            cols: n,
            data,
        }
    }

    /// Scalar matmul kernel — the pre-SIMD loop kept verbatim as the
    /// equivalence oracle (and the only path for non-`f64` precisions).
    pub fn matmul_scalar(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let m = self.rows;
        let k = self.cols;
        let n = other.cols;
        let work = m * k * n;
        let compute_row = |i: usize, out_row: &mut [T]| {
            for kk in 0..k {
                let a = self[(i, kk)];
                if a == T::zero() {
                    continue;
                }
                let brow = other.row(kk);
                for j in 0..n {
                    out_row[j] = a.mul_add(brow[j], out_row[j]);
                }
            }
        };
        let mut data = vec![T::zero(); m * n];
        if work >= PAR_THRESHOLD {
            data.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| compute_row(i, out_row));
        } else {
            for (i, out_row) in data.chunks_mut(n).enumerate() {
                compute_row(i, out_row);
            }
        }
        Matrix {
            rows: m,
            cols: n,
            data,
        }
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> T {
        let maxabs = self.data.iter().fold(T::zero(), |acc, x| acc.max(x.abs()));
        if maxabs == T::zero() {
            return T::zero();
        }
        let sum = self.data.iter().fold(T::zero(), |acc, &x| {
            let s = x / maxabs;
            s.mul_add(s, acc)
        });
        maxabs * sum.sqrt()
    }

    /// Maximum absolute row sum (∞-norm).
    pub fn norm_inf(&self) -> T {
        (0..self.rows)
            .map(|i| self.row(i).iter().fold(T::zero(), |acc, x| acc + x.abs()))
            .fold(T::zero(), |acc, s| acc.max(s))
    }

    /// Maximum absolute column sum (1-norm).
    pub fn norm_1(&self) -> T {
        (0..self.cols)
            .map(|j| (0..self.rows).fold(T::zero(), |acc, i| acc + self[(i, j)].abs()))
            .fold(T::zero(), |acc, s| acc.max(s))
    }

    /// Largest absolute entry (max-norm, not submultiplicative).
    pub fn norm_max(&self) -> T {
        self.data.iter().fold(T::zero(), |acc, x| acc.max(x.abs()))
    }

    /// Maximum absolute entry-wise difference with another matrix.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!(self.rows, other.rows, "max_abs_diff: shape mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(T::zero(), |acc, (&a, &b)| acc.max((a - b).abs()))
    }

    /// Scale every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: T) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Return `alpha * self`.
    pub fn scaled(&self, alpha: T) -> Self {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Convert every entry to `f64`.
    pub fn to_f64(&self) -> Matrix<f64> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x.to_f64()).collect(),
        }
    }

    /// Convert into another precision, rounding element-wise.
    pub fn convert<S: Real>(&self) -> Matrix<S> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| S::from_f64(x.to_f64())).collect(),
        }
    }

    /// True if `|a_ij - a_ji| <= tol` for all entries of a square matrix.
    pub fn is_symmetric(&self, tol: T) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl<T: Real> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols, "index out of range");
        &self.data[i * self.cols + j]
    }
}

impl<T: Real> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols, "index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Real> Add for &Matrix<T> {
    type Output = Matrix<T>;
    fn add(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, rhs.rows, "add: shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl<T: Real> Sub for &Matrix<T> {
    type Output = Matrix<T>;
    fn sub(self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, rhs.rows, "sub: shape mismatch");
        assert_eq!(self.cols, rhs.cols, "sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl<T: Real> Neg for &Matrix<T> {
    type Output = Matrix<T>;
    fn neg(self) -> Matrix<T> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| -a).collect(),
        }
    }
}

impl<T: Real> Mul for &Matrix<T> {
    type Output = Matrix<T>;
    fn mul(self, rhs: &Matrix<T>) -> Matrix<T> {
        self.matmul(rhs)
    }
}

impl<T: Real> Mul<&Vector<T>> for &Matrix<T> {
    type Output = Vector<T>;
    fn mul(self, rhs: &Vector<T>) -> Vector<T> {
        self.matvec(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2(data: [f64; 4]) -> Matrix<f64> {
        Matrix::from_f64_slice(2, 2, &data)
    }

    #[test]
    fn identity_and_indexing() {
        let i3 = Matrix::<f64>::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        assert_eq!(i3.diag(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = m2([1.0, 2.0, 3.0, 4.0]);
        let x = Vector::from_f64_slice(&[1.0, 1.0]);
        let y = a.matvec(&x);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
        let yt = a.matvec_transposed(&x);
        assert_eq!(yt.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m2([1.0, 2.0, 3.0, 4.0]);
        let b = m2([0.0, 1.0, 1.0, 0.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::<f64>::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        let i5 = Matrix::<f64>::identity(5);
        assert_eq!(a.matmul(&i5), a);
        assert_eq!(i5.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::<f64>::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().nrows(), 4);
    }

    #[test]
    fn norms_on_known_matrix() {
        let a = m2([1.0, -2.0, -3.0, 4.0]);
        assert_eq!(a.norm_inf(), 7.0); // row sums 3, 7
        assert_eq!(a.norm_1(), 6.0); // col sums 4, 6
        assert_eq!(a.norm_max(), 4.0);
        assert!((a.norm_frobenius() - 30f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn swap_rows_works() {
        let mut a = Matrix::<f64>::from_fn(3, 2, |i, _| i as f64);
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[2.0, 2.0]);
        assert_eq!(a.row(2), &[0.0, 0.0]);
        a.swap_rows(1, 1); // no-op
        assert_eq!(a.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn col_and_set_col() {
        let mut a = Matrix::<f64>::zeros(3, 3);
        let v = Vector::from_f64_slice(&[1.0, 2.0, 3.0]);
        a.set_col(1, &v);
        assert_eq!(a.col(1).as_slice(), v.as_slice());
        assert_eq!(a.col(0).as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn symmetric_detection() {
        let s = m2([2.0, 1.0, 1.0, 3.0]);
        assert!(s.is_symmetric(0.0));
        let ns = m2([2.0, 1.0, 1.5, 3.0]);
        assert!(!ns.is_symmetric(0.1));
        assert!(ns.is_symmetric(1.0));
    }

    #[test]
    fn operators() {
        let a = m2([1.0, 2.0, 3.0, 4.0]);
        let b = m2([4.0, 3.0, 2.0, 1.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0; 4]);
        assert_eq!((&a - &a).norm_frobenius(), 0.0);
        assert_eq!((-&a)[(1, 1)], -4.0);
        let x = Vector::from_f64_slice(&[1.0, 0.0]);
        assert_eq!((&a * &x).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn large_parallel_matmul_agrees_with_small_path() {
        // Exercise the rayon path and compare against the naive triple loop.
        let n = 80; // 80^3 > PAR_THRESHOLD
        let a = Matrix::<f64>::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 / 17.0);
        let b = Matrix::<f64>::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 / 11.0);
        let c = a.matmul(&b);
        // Naive check of a few entries.
        for &(i, j) in &[(0usize, 0usize), (7, 63), (79, 79), (40, 2)] {
            let mut s = 0.0;
            for k in 0..n {
                s += a[(i, k)] * b[(k, j)];
            }
            assert!((c[(i, j)] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Matrix::<f64>::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_matmul_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
