//! Structured inner solvers for the mixed-precision refinement loop.
//!
//! Algorithm 1/2 of the paper factor the matrix **once** at the low precision
//! `u_l` and reuse that factorisation for every correction solve.  Until this
//! module existed, the only inner solver was dense LU, so even an O(nnz)
//! operator paid O(N²) memory (and O(N²)–O(N³) time) the moment a refiner was
//! built — the last dense wall on the classical path.
//!
//! [`FactorizableOperator`] closes it: every operator representation knows how
//! to build the cheapest exact-enough inner solver for its own structure, and
//! the refiners route every correction solve through the resulting
//! [`InnerSolver`] handle.  The selection table:
//!
//! | operator | inner solver | cost | fallback |
//! |---|---|---|---|
//! | [`Matrix`] | dense LU | O(N³) + O(N²) mem | — (it *is* the oracle) |
//! | [`TridiagonalMatrix`] | Thomas LU ([`ThomasFactorization`]) | O(N) | dense LU on pivot breakdown |
//! | [`SparseMatrix`] | Jacobi-CG (SPD) / Jacobi-BiCGSTAB | O(nnz)/iter | dense LU for N ≤ [`DENSIFY_FALLBACK_MAX`] |
//! | [`StencilOperator`] | Jacobi-CG / Jacobi-BiCGSTAB, matrix-free | O(N)/iter | dense LU for N ≤ [`DENSIFY_FALLBACK_MAX`] |
//! | [`StencilNd`] | Jacobi-CG / Jacobi-BiCGSTAB, matrix-free | O(N)/iter | dense LU for N ≤ [`DENSIFY_FALLBACK_MAX`] |
//!
//! The small-N densify fallback is not just a convenience: for N ≤ 64 the
//! dense factors are cheap, and reusing the *exact same* dense-LU code keeps
//! the structured refiners **bit-identical** to the dense refiner on the small
//! equivalence problems (the same oracle pattern as `kernels::reference` and
//! `OptLevel::None` on the simulator side).  At any size,
//! [`FactorizableOperator::factorize_dense_lu`] stays available as the
//! equivalence oracle — `ClassicalRefiner::with_dense_lu` uses it so every
//! structured run can be checked against the dense history.
//!
//! The iterative inner solvers run entirely at the low precision and do not
//! need to hit machine accuracy: per Theorem III.1 any relative accuracy
//! ε_l with ε_l·κ < 1 contracts the outer residual, so CG/BiCGSTAB stop at a
//! few units of roundoff of the low format (or return their best iterate on
//! stagnation, which refinement absorbs).  What they must never do is return
//! garbage silently — breakdowns surface as [`LinalgError`]s.

use std::fmt;

use crate::lu::{LinalgError, LuFactorization};
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::sparse::SparseMatrix;
use crate::stencil::{StencilNd, StencilOperator};
use crate::tridiag::TridiagonalMatrix;
use crate::vector::Vector;

/// Largest order for which CSR / stencil operators fall back to densify +
/// dense LU instead of an iterative inner solver.
///
/// Below this size the dense factorisation is cheaper than an iterative
/// solve's setup, and — more importantly — it keeps small structured refiners
/// bit-identical to the dense oracle (the equivalence tests run at N ≤ 64).
pub const DENSIFY_FALLBACK_MAX: usize = 64;

/// Which factorisation / iteration a [`FactorizableOperator`] selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerSolverKind {
    /// Dense LU with partial pivoting (the equivalence oracle).
    DenseLu,
    /// Thomas tridiagonal LU, O(N) factor and solve.
    Thomas,
    /// Jacobi-preconditioned conjugate gradients (SPD systems).
    ConjugateGradient,
    /// Jacobi-preconditioned BiCGSTAB (nonsymmetric systems).
    BiCgStab,
}

impl fmt::Display for InnerSolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InnerSolverKind::DenseLu => "dense-lu",
            InnerSolverKind::Thomas => "thomas",
            InnerSolverKind::ConjugateGradient => "jacobi-cg",
            InnerSolverKind::BiCgStab => "jacobi-bicgstab",
        };
        f.write_str(name)
    }
}

/// A reusable low-precision inner solver: factor (or set up) once, solve many
/// right-hand sides.  Both solves are fallible — iterative breakdowns and
/// singular factors surface as errors instead of silent inf/NaN.
pub trait InnerSolver<T: Real>: Send + Sync {
    /// Order of the represented system.
    fn order(&self) -> usize;
    /// Which solver this is (for reports and debugging).
    fn kind(&self) -> InnerSolverKind;
    /// Solve `A x = b`.
    fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError>;
    /// Solve `Aᵀ x = b`.
    fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError>;
}

/// An operator that can build the structured inner solver appropriate to its
/// own representation, at any target precision `L`.
///
/// This is the trait the mixed-precision refiners are generic over: the
/// operator is stored at the working precision `H`, while `factorize::<L>()`
/// converts whatever compact data the solver needs down to `L` — never
/// materialising an O(N²) matrix for a structured operator above the
/// [`DENSIFY_FALLBACK_MAX`] threshold.
pub trait FactorizableOperator<T: Real>: LinearOperator<T> {
    /// Build the structured inner solver for this operator at precision `L`.
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError>;

    /// Densify and factorise with dense LU at precision `L` — the equivalence
    /// oracle every structured path can be validated against, and the small-N
    /// fallback of the sparse/stencil implementations.
    fn factorize_dense_lu<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let a_low: Matrix<L> = self.to_dense().convert();
        Ok(Box::new(DenseLuSolver::new(&a_low)?))
    }
}

/// Relative residual tolerance for the iterative inner solvers at precision
/// `L`: a few units of roundoff of the low format (refinement absorbs the
/// rest per Theorem III.1).
fn inner_tolerance<L: Real>() -> f64 {
    (16.0 * L::unit_roundoff()).max(1e-15)
}

// ---------------------------------------------------------------------------
// Dense LU (the oracle).
// ---------------------------------------------------------------------------

/// [`InnerSolver`] wrapper around [`LuFactorization`].
pub struct DenseLuSolver<T: Real> {
    lu: LuFactorization<T>,
}

impl<T: Real> DenseLuSolver<T> {
    /// Factorise a dense matrix with partial pivoting.
    pub fn new(a: &Matrix<T>) -> Result<Self, LinalgError> {
        Ok(DenseLuSolver {
            lu: LuFactorization::new(a)?,
        })
    }
}

impl<T: Real> InnerSolver<T> for DenseLuSolver<T> {
    fn order(&self) -> usize {
        self.lu.order()
    }

    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::DenseLu
    }

    fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.lu.solve(b)
    }

    fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.lu.solve_transposed(b)
    }
}

// ---------------------------------------------------------------------------
// Thomas: tridiagonal LU without pivoting, O(N) factor + solve.
// ---------------------------------------------------------------------------

/// The Thomas algorithm as a reusable factorisation `T = L·U`:
/// `L` unit lower bidiagonal with multipliers `l_i = lower_{i−1}/m_{i−1}`,
/// `U` upper bidiagonal with pivots `m_i = d_i − l_i·upper_{i−1}` and the
/// original super-diagonal.  One O(N) elimination serves both `T x = b`
/// (forward `L`, back `U`) and `Tᵀ x = b` (`Tᵀ = Uᵀ Lᵀ`).
///
/// Thomas does not pivot, so a pivot `|m_i|` at or below a scaled threshold
/// (`4·u·max|entry|`) is reported as [`LinalgError::Singular`] instead of
/// silently amplifying into inf/NaN — the caller (e.g.
/// [`TridiagonalMatrix::factorize`](FactorizableOperator::factorize)) falls
/// back to pivoted dense LU, which handles matrices like `[[0,1],[1,0]]` that
/// are perfectly well conditioned but break the unpivoted recurrence.
pub struct ThomasFactorization<T: Real> {
    /// Pivots `m_i` (the diagonal of U), length n.
    pivots: Vec<T>,
    /// Multipliers `l_i` (sub-diagonal of L); `lowers[0]` is unused (zero).
    lowers: Vec<T>,
    /// The original super-diagonal (the off-diagonal of U), length n−1.
    uppers: Vec<T>,
}

impl<T: Real> ThomasFactorization<T> {
    /// Eliminate in O(N); fails with [`LinalgError::Singular`] on a pivot
    /// below the scaled breakdown threshold.
    pub fn new(t: &TridiagonalMatrix<T>) -> Result<Self, LinalgError> {
        let n = t.order();
        let scale = t
            .diag
            .iter()
            .chain(&t.lower)
            .chain(&t.upper)
            .fold(T::zero(), |acc, &v| acc.max(v.abs()));
        let threshold = scale * T::from_f64(4.0 * T::unit_roundoff());

        let mut pivots = vec![T::zero(); n];
        let mut lowers = vec![T::zero(); n];
        for i in 0..n {
            let m = if i == 0 {
                t.diag[0]
            } else {
                let l = t.lower[i - 1] / pivots[i - 1];
                lowers[i] = l;
                t.diag[i] - l * t.upper[i - 1]
            };
            if m.abs() <= threshold {
                return Err(LinalgError::Singular { step: i });
            }
            pivots[i] = m;
        }
        Ok(ThomasFactorization {
            pivots,
            lowers,
            uppers: t.upper.clone(),
        })
    }
}

impl<T: Real> InnerSolver<T> for ThomasFactorization<T> {
    fn order(&self) -> usize {
        self.pivots.len()
    }

    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::Thomas
    }

    fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        if n == 0 {
            return Ok(Vector::zeros(0));
        }
        // Forward: L y = b.
        let mut y = Vector::zeros(n);
        y[0] = b[0];
        for i in 1..n {
            y[i] = b[i] - self.lowers[i] * y[i - 1];
        }
        // Back: U x = y.
        y[n - 1] /= self.pivots[n - 1];
        for i in (0..n - 1).rev() {
            y[i] = (y[i] - self.uppers[i] * y[i + 1]) / self.pivots[i];
        }
        Ok(y)
    }

    fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        let n = self.order();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        if n == 0 {
            return Ok(Vector::zeros(0));
        }
        // Tᵀ = Uᵀ Lᵀ.  Forward: Uᵀ y = b (lower bidiagonal, diagonal m).
        let mut y = Vector::zeros(n);
        y[0] = b[0] / self.pivots[0];
        for i in 1..n {
            y[i] = (b[i] - self.uppers[i - 1] * y[i - 1]) / self.pivots[i];
        }
        // Back: Lᵀ x = y (unit upper bidiagonal).
        for i in (0..n - 1).rev() {
            y[i] = y[i] - self.lowers[i + 1] * y[i + 1];
        }
        Ok(y)
    }
}

// ---------------------------------------------------------------------------
// Jacobi-preconditioned CG and BiCGSTAB over any LinearOperator.
// ---------------------------------------------------------------------------

/// Jacobi-preconditioned conjugate gradients for SPD systems, matrix-free
/// over any [`LinearOperator`] at the low precision.
///
/// The solve stops at a relative residual of a few units of roundoff of the
/// format, returns its best iterate on stagnation (refinement absorbs an
/// inexact inner solve), and reports [`LinalgError::Singular`] if the very
/// first search direction shows the operator is not positive definite.
pub struct ConjugateGradientSolver<T: Real, Op: LinearOperator<T>> {
    op: Op,
    inv_diag: Vector<T>,
    rel_tol: f64,
    max_iterations: usize,
}

impl<T: Real, Op: LinearOperator<T>> ConjugateGradientSolver<T, Op> {
    /// Set up CG with the Jacobi preconditioner built from `diag` (must be
    /// strictly positive — SPD matrices have positive diagonals).
    pub fn new(
        op: Op,
        diag: &Vector<T>,
        rel_tol: f64,
        max_iterations: usize,
    ) -> Result<Self, LinalgError> {
        if !op.is_square() {
            return Err(LinalgError::NotSquare);
        }
        if diag.len() != op.nrows() {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut inv = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d <= T::zero() {
                return Err(LinalgError::Singular { step: i });
            }
            inv.push(T::one() / d);
        }
        Ok(ConjugateGradientSolver {
            op,
            inv_diag: Vector::from_vec(inv),
            rel_tol,
            max_iterations,
        })
    }

    fn precondition(&self, r: &Vector<T>) -> Vector<T> {
        r.iter()
            .zip(self.inv_diag.iter())
            .map(|(&ri, &di)| ri * di)
            .collect()
    }

    fn solve_impl(&self, b: &Vector<T>, transposed: bool) -> Result<Vector<T>, LinalgError> {
        let n = self.op.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let bnorm = b.norm2();
        if bnorm == T::zero() {
            return Ok(Vector::zeros(n));
        }
        let tol = T::from_f64(self.rel_tol) * bnorm;
        let mv = |v: &Vector<T>| {
            if transposed {
                self.op.matvec_transposed(v)
            } else {
                self.op.matvec(v)
            }
        };

        let mut x = Vector::zeros(n);
        let mut r = b.clone();
        let mut z = self.precondition(&r);
        let mut p = z.clone();
        let mut rz = r.dot(&z);
        let mut best = x.clone();
        let mut best_res = bnorm;
        for step in 0..self.max_iterations {
            let ap = mv(&p);
            let pap = p.dot(&ap);
            if pap <= T::zero() {
                if step == 0 {
                    // Not positive definite along the very first direction:
                    // CG is the wrong solver, report it rather than iterate.
                    return Err(LinalgError::Singular { step });
                }
                break;
            }
            let alpha = rz / pap;
            x.axpy(alpha, &p);
            r.axpy(-alpha, &ap);
            let rnorm = r.norm2();
            if rnorm <= tol {
                return Ok(x);
            }
            if rnorm < best_res {
                best_res = rnorm;
                best = x.clone();
            }
            z = self.precondition(&r);
            let rz_new = r.dot(&z);
            if rz_new == T::zero() {
                break;
            }
            let beta = rz_new / rz;
            rz = rz_new;
            p = &z + &(&p * beta);
        }
        Ok(best)
    }
}

impl<T: Real, Op: LinearOperator<T> + 'static> InnerSolver<T> for ConjugateGradientSolver<T, Op> {
    fn order(&self) -> usize {
        self.op.nrows()
    }

    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::ConjugateGradient
    }

    fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.solve_impl(b, false)
    }

    fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.solve_impl(b, true)
    }
}

/// Jacobi-preconditioned BiCGSTAB for nonsymmetric systems, matrix-free over
/// any [`LinearOperator`] at the low precision.
///
/// Transposed solves run the same iteration against `Aᵀ` (via
/// `matvec_transposed`), which is what the κ machinery and adjoint solves
/// need.  On a breakdown (`ρ → 0`, `r̂·v → 0` or `t·t → 0`) the best iterate
/// so far is returned; the refinement loop detects any resulting stagnation.
pub struct BiCgStabSolver<T: Real, Op: LinearOperator<T>> {
    op: Op,
    inv_diag: Vector<T>,
    rel_tol: f64,
    max_iterations: usize,
}

impl<T: Real, Op: LinearOperator<T>> BiCgStabSolver<T, Op> {
    /// Set up BiCGSTAB with a Jacobi preconditioner from `diag`; zero diagonal
    /// entries downgrade the preconditioner to the identity.
    pub fn new(op: Op, diag: &Vector<T>, rel_tol: f64, max_iterations: usize) -> Self {
        assert!(op.is_square(), "BiCGSTAB needs a square operator");
        let inv = if diag.iter().any(|&d| d == T::zero()) {
            Vector::from_vec(vec![T::one(); op.nrows()])
        } else {
            diag.iter().map(|&d| T::one() / d).collect()
        };
        BiCgStabSolver {
            op,
            inv_diag: inv,
            rel_tol,
            max_iterations,
        }
    }

    fn precondition(&self, r: &Vector<T>) -> Vector<T> {
        r.iter()
            .zip(self.inv_diag.iter())
            .map(|(&ri, &di)| ri * di)
            .collect()
    }

    fn solve_impl(&self, b: &Vector<T>, transposed: bool) -> Result<Vector<T>, LinalgError> {
        let n = self.op.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch);
        }
        let bnorm = b.norm2();
        if bnorm == T::zero() {
            return Ok(Vector::zeros(n));
        }
        let tol = T::from_f64(self.rel_tol) * bnorm;
        let mv = |v: &Vector<T>| {
            if transposed {
                self.op.matvec_transposed(v)
            } else {
                self.op.matvec(v)
            }
        };

        let mut x = Vector::zeros(n);
        let mut r = b.clone();
        let r_hat = b.clone();
        let mut rho = T::one();
        let mut alpha = T::one();
        let mut omega = T::one();
        let mut v = Vector::zeros(n);
        let mut p = Vector::zeros(n);
        let mut best = x.clone();
        let mut best_res = bnorm;
        for _ in 0..self.max_iterations {
            let rho_new = r_hat.dot(&r);
            if rho_new == T::zero() || omega == T::zero() {
                break;
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            // p = r + beta (p − omega v)
            p = &r + &(&(&p - &(&v * omega)) * beta);
            let p_hat = self.precondition(&p);
            v = mv(&p_hat);
            let rhv = r_hat.dot(&v);
            if rhv == T::zero() {
                break;
            }
            alpha = rho / rhv;
            let s = &r - &(&v * alpha);
            x.axpy(alpha, &p_hat);
            let snorm = s.norm2();
            if snorm <= tol {
                return Ok(x);
            }
            if snorm < best_res {
                best_res = snorm;
                best = x.clone();
            }
            let s_hat = self.precondition(&s);
            let t = mv(&s_hat);
            let tt = t.dot(&t);
            if tt == T::zero() {
                break;
            }
            omega = t.dot(&s) / tt;
            x.axpy(omega, &s_hat);
            r = &s - &(&t * omega);
            let rnorm = r.norm2();
            if rnorm <= tol {
                return Ok(x);
            }
            if rnorm < best_res {
                best_res = rnorm;
                best = x.clone();
            }
        }
        Ok(best)
    }
}

impl<T: Real, Op: LinearOperator<T> + 'static> InnerSolver<T> for BiCgStabSolver<T, Op> {
    fn order(&self) -> usize {
        self.op.nrows()
    }

    fn kind(&self) -> InnerSolverKind {
        InnerSolverKind::BiCgStab
    }

    fn solve(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.solve_impl(b, false)
    }

    fn solve_transposed(&self, b: &Vector<T>) -> Result<Vector<T>, LinalgError> {
        self.solve_impl(b, true)
    }
}

// ---------------------------------------------------------------------------
// Per-operator factorize implementations.
// ---------------------------------------------------------------------------

impl<T: Real> FactorizableOperator<T> for Matrix<T> {
    /// Dense matrices keep dense LU — the representation *is* dense, and this
    /// path stays the equivalence oracle for all structured solvers.
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        self.factorize_dense_lu::<L>()
    }
}

impl<T: Real> FactorizableOperator<T> for TridiagonalMatrix<T> {
    /// O(N) Thomas elimination at precision `L`; on pivot breakdown the
    /// pivoted dense LU takes over (e.g. `[[0,1],[1,0]]` — nonsingular, but
    /// fatal for the unpivoted recurrence).
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        let low: TridiagonalMatrix<L> = self.convert();
        match ThomasFactorization::new(&low) {
            Ok(f) => Ok(Box::new(f)),
            Err(LinalgError::Singular { .. }) => self.factorize_dense_lu::<L>(),
            Err(e) => Err(e),
        }
    }
}

impl<T: Real> FactorizableOperator<T> for SparseMatrix<T> {
    /// Jacobi-CG for symmetric matrices with positive diagonal, BiCGSTAB
    /// otherwise; densify-LU below [`DENSIFY_FALLBACK_MAX`].
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare);
        }
        let n = self.nrows();
        if n <= DENSIFY_FALLBACK_MAX {
            return self.factorize_dense_lu::<L>();
        }
        let symmetric = self.is_symmetric();
        let low: SparseMatrix<L> = self.convert();
        let diag = low.diagonal();
        let tol = inner_tolerance::<L>();
        if symmetric && diag.iter().all(|&d| d > L::zero()) {
            Ok(Box::new(ConjugateGradientSolver::new(low, &diag, tol, n)?))
        } else {
            Ok(Box::new(BiCgStabSolver::new(low, &diag, tol, 2 * n)))
        }
    }
}

/// Shared CG/BiCGSTAB selection for the matrix-free stencils: they are
/// symmetric by construction, so CG applies whenever the diagonal-dominance
/// bound `center ≥ Σ 2|off|` certifies positive definiteness.
fn factorize_stencil<L: Real, Op: LinearOperator<L> + 'static>(
    op: Op,
    center: L,
    off_sum: L,
) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
    let n = op.nrows();
    let diag = Vector::from_vec(vec![center; n]);
    let tol = inner_tolerance::<L>();
    if center > L::zero() && center >= off_sum {
        Ok(Box::new(ConjugateGradientSolver::new(op, &diag, tol, n)?))
    } else {
        Ok(Box::new(BiCgStabSolver::new(op, &diag, tol, 2 * n)))
    }
}

impl<T: Real> FactorizableOperator<T> for StencilOperator<T> {
    /// Matrix-free Jacobi-CG (diagonally dominant SPD stencils such as
    /// Poisson) or BiCGSTAB; densify-LU below [`DENSIFY_FALLBACK_MAX`].
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        if self.order() <= DENSIFY_FALLBACK_MAX {
            return self.factorize_dense_lu::<L>();
        }
        let low: StencilOperator<L> = self.convert();
        let (center, off_x, off_y) = low.coefficients();
        let off_sum = (off_x.abs() + off_y.abs()) * L::from_f64(2.0);
        factorize_stencil(low, center, off_sum)
    }
}

impl<T: Real> FactorizableOperator<T> for StencilNd<T> {
    /// Matrix-free Jacobi-CG / BiCGSTAB for the d-dimensional stencil;
    /// densify-LU below [`DENSIFY_FALLBACK_MAX`].
    fn factorize<L: Real>(&self) -> Result<Box<dyn InnerSolver<L>>, LinalgError> {
        if self.order() <= DENSIFY_FALLBACK_MAX {
            return self.factorize_dense_lu::<L>();
        }
        let low: StencilNd<L> = self.convert();
        let center = low.center();
        let off_sum = low
            .offsets()
            .iter()
            .fold(L::zero(), |acc, &o| acc + o.abs() + o.abs());
        factorize_stencil(low, center, off_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::lu_solve;
    use crate::stencil::poisson_2d;
    use crate::tridiag::poisson_1d;

    fn assert_close(a: &Vector<f64>, b: &Vector<f64>, tol: f64, label: &str) {
        let diff = (a - b).norm2() / b.norm2().max(1e-300);
        assert!(diff <= tol, "{label}: relative diff {diff}");
    }

    #[test]
    fn thomas_factorization_matches_lu_both_ways() {
        let t = TridiagonalMatrix::new(
            vec![1.0, -2.0, 0.5, 1.5],
            vec![4.0, 5.0, 6.0, 7.0, 8.0],
            vec![-1.0, 3.0, 2.5, -0.5],
        );
        let d = t.to_dense();
        let f = ThomasFactorization::new(&t).unwrap();
        assert_eq!(f.kind(), InnerSolverKind::Thomas);
        let b = Vector::from_f64_slice(&[0.3, -0.9, 1.7, 0.2, -1.1]);
        assert_close(
            &f.solve(&b).unwrap(),
            &lu_solve(&d, &b).unwrap(),
            1e-13,
            "solve",
        );
        assert_close(
            &f.solve_transposed(&b).unwrap(),
            &lu_solve(&d.transpose(), &b).unwrap(),
            1e-13,
            "solve_transposed",
        );
    }

    #[test]
    fn thomas_breakdown_detected_and_rescued_by_factorize() {
        // [[0, 1], [1, 0]]: perfectly conditioned, but the first Thomas pivot
        // is exactly zero.
        let t = TridiagonalMatrix::new(vec![1.0], vec![0.0, 0.0], vec![1.0]);
        assert!(matches!(
            ThomasFactorization::new(&t),
            Err(LinalgError::Singular { step: 0 })
        ));
        // factorize() falls back to pivoted dense LU and solves it.
        let solver = t.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::DenseLu);
        let b = Vector::from_f64_slice(&[2.0, 3.0]);
        let x = solver.solve(&b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14 && (x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn tridiagonal_factorize_selects_thomas() {
        let t = poisson_1d::<f64>(200, false);
        let solver = t.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::Thomas);
        let b: Vector<f64> = (0..200).map(|i| ((i as f64) * 0.1).sin()).collect();
        let x = solver.solve(&b).unwrap();
        assert!((&t.matvec(&x) - &b).norm2() / b.norm2() < 1e-12);
    }

    #[test]
    fn cg_solves_spd_csr_to_low_precision_accuracy() {
        let csr = poisson_2d::<f64>(12, 12, false).to_sparse();
        let solver = csr.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::ConjugateGradient);
        let b: Vector<f64> = (0..144).map(|i| ((i as f64) * 0.31).cos()).collect();
        let x = solver.solve(&b).unwrap();
        assert!((&csr.matvec(&x) - &b).norm2() / b.norm2() < 1e-10);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric_csr_both_ways() {
        // 1-D convection-diffusion: tridiagonal but fed through CSR to force
        // the nonsymmetric sparse path.
        let n = 80;
        let t = TridiagonalMatrix::new(vec![-1.4; n - 1], vec![2.0; n], vec![-0.6; n - 1]);
        let csr = t.to_sparse();
        let solver = csr.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::BiCgStab);
        let b: Vector<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let x = solver.solve(&b).unwrap();
        assert!((&csr.matvec(&x) - &b).norm2() / b.norm2() < 1e-10);
        let xt = solver.solve_transposed(&b).unwrap();
        assert!((&csr.matvec_transposed(&xt) - &b).norm2() / b.norm2() < 1e-10);
    }

    #[test]
    fn small_operators_fall_back_to_the_dense_oracle() {
        let csr = poisson_2d::<f64>(8, 8, false).to_sparse();
        assert_eq!(csr.nrows(), DENSIFY_FALLBACK_MAX);
        assert_eq!(
            csr.factorize::<f32>().unwrap().kind(),
            InnerSolverKind::DenseLu
        );
        let stencil = poisson_2d::<f64>(8, 8, false);
        assert_eq!(
            stencil.factorize::<f32>().unwrap().kind(),
            InnerSolverKind::DenseLu
        );
    }

    #[test]
    fn stencil_factorize_is_matrix_free_cg() {
        let s = poisson_2d::<f64>(10, 10, false);
        let solver = s.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::ConjugateGradient);
        let b: Vector<f64> = (0..100).map(|i| ((i as f64) - 50.0) / 100.0).collect();
        let x = solver.solve(&b).unwrap();
        assert!((&s.matvec(&x) - &b).norm2() / b.norm2() < 1e-10);
    }

    #[test]
    fn cg_rejects_indefinite_first_direction() {
        // -I is symmetric with negative diagonal: the sparse selector must
        // not pick CG, and CG itself must fail fast if forced.
        let neg = SparseMatrix::from_dense(&Matrix::from_diag(&[-1.0; 80]));
        let diag = Vector::from_vec(vec![1.0f64; 80]);
        let cg = ConjugateGradientSolver::new(neg.clone(), &diag, 1e-12, 80).unwrap();
        let b = Vector::from_vec(vec![1.0f64; 80]);
        assert!(matches!(
            cg.solve(&b),
            Err(LinalgError::Singular { step: 0 })
        ));
        // The selector routes it to BiCGSTAB instead, which solves it.
        let solver = neg.factorize::<f64>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::BiCgStab);
        let x = solver.solve(&b).unwrap();
        assert!((&neg.matvec(&x) - &b).norm2() / b.norm2() < 1e-12);
    }

    #[test]
    fn low_precision_cg_reaches_low_precision_tolerance() {
        let csr = poisson_2d::<f64>(12, 12, false).to_sparse();
        let solver = csr.factorize::<f32>().unwrap();
        assert_eq!(solver.kind(), InnerSolverKind::ConjugateGradient);
        let b: Vector<f32> = (0..144).map(|i| ((i as f64) * 0.17).sin() as f32).collect();
        let x = solver.solve(&b).unwrap();
        let rel = (&csr.convert::<f32>().matvec(&x) - &b).norm2() / b.norm2();
        assert!(rel < 1e-4, "f32 CG relative residual {rel}");
    }
}
