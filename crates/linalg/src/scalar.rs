//! Generic real-scalar abstraction.
//!
//! The mixed-precision iterative refinement of the paper manipulates the same
//! data at two (or three) different precisions: the residual and the solution
//! update are computed at a *working* precision `u`, while the inner solves run
//! at a *low* precision `u_l` (on the QPU, the "precision" is the solver
//! accuracy ε_l; on the CPU baseline it is a narrower floating-point format).
//! The [`Real`] trait lets every kernel in this crate be written once and
//! instantiated at `f32`, `f64` or a software-emulated precision
//! ([`crate::precision::Emulated`]).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar usable in the dense linear-algebra kernels.
///
/// The trait is deliberately small: only the operations actually needed by
/// LU/QR/SVD, iterative refinement and the matrix generators are required.
/// All conversions go through `f64`, which is the "high precision" of the
/// paper's experiments.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Convert from `f64`, rounding to the precision of `Self`.
    fn from_f64(x: f64) -> Self;
    /// Convert to `f64` exactly (all supported formats are sub-formats of f64).
    fn to_f64(self) -> f64;
    /// Unit roundoff of the format (e.g. 2^-53 for f64, 2^-24 for f32).
    fn unit_roundoff() -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Maximum of two values (NaN-propagating-free: returns the other operand).
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// `self * a + b` rounded once per operation at the precision of `Self`.
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    /// True if the value is finite (not NaN, not infinite).
    fn is_finite(self) -> bool {
        self.to_f64().is_finite()
    }
    /// Name of the format, used in reports ("f64", "f32", "emulated<p>").
    fn format_name() -> String;
}

impl Real for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        // 2^-53
        f64::EPSILON / 2.0
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    fn format_name() -> String {
        "f64".to_string()
    }
}

impl Real for f32 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn unit_roundoff() -> f64 {
        // 2^-24
        (f32::EPSILON / 2.0) as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    fn format_name() -> String {
        "f32".to_string()
    }
}

/// Convert a slice of one real format into another, rounding element-wise.
pub fn convert_slice<S: Real, T: Real>(src: &[S]) -> Vec<T> {
    src.iter().map(|&x| T::from_f64(x.to_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundoff_is_2_pow_minus_53() {
        assert_eq!(<f64 as Real>::unit_roundoff(), 2f64.powi(-53));
    }

    #[test]
    fn f32_roundoff_is_2_pow_minus_24() {
        assert_eq!(<f32 as Real>::unit_roundoff(), 2f64.powi(-24));
    }

    #[test]
    fn conversion_roundtrip_f32() {
        let x = 1.0 / 3.0_f64;
        let y = <f32 as Real>::from_f64(x);
        // f32 holds about 7 decimal digits.
        assert!((y.to_f64() - x).abs() < 1e-7);
        assert!((y.to_f64() - x).abs() > 0.0);
    }

    #[test]
    fn basic_ops_generic() {
        fn quadratic<T: Real>(x: T) -> T {
            x * x + T::from_f64(2.0) * x + T::one()
        }
        assert_eq!(quadratic(1.0_f64), 4.0);
        assert_eq!(quadratic(1.0_f32), 4.0);
    }

    #[test]
    fn convert_slice_roundtrips_exact_values() {
        let src = vec![1.0_f64, -2.5, 0.0, 1024.0];
        let as32: Vec<f32> = convert_slice(&src);
        let back: Vec<f64> = convert_slice(&as32);
        assert_eq!(src, back);
    }

    #[test]
    fn min_max_behave() {
        assert_eq!(Real::max(2.0_f64, 3.0), 3.0);
        assert_eq!(Real::min(2.0_f64, 3.0), 2.0);
        assert_eq!(Real::max(-2.0_f32, -3.0), -2.0);
    }

    #[test]
    fn format_names() {
        assert_eq!(<f64 as Real>::format_name(), "f64");
        assert_eq!(<f32 as Real>::format_name(), "f32");
    }
}
