//! Compressed-sparse-row (CSR) matrices.
//!
//! The classical side of the paper's hybrid algorithm recomputes the residual
//! `r = b − A x` at high precision on every refinement iteration.  For the
//! Poisson systems the paper benchmarks (3 nonzeros per row) a dense residual
//! pays O(N²) time and memory for an O(N) job; [`SparseMatrix`] brings the
//! residual path down to O(nnz).  Construction goes through a triplet
//! (coordinate) builder that sorts, merges duplicates and drops explicit
//! zeros, so generators can emit entries in any order.
//!
//! The matvec accumulates each row in increasing column order with the same
//! fused multiply-adds as the dense kernel — skipping a structural zero is an
//! exact no-op — so a `SparseMatrix` built from a dense matrix produces
//! **bit-identical** products to that dense oracle, and row partitioning
//! makes the product parallel above the shared work threshold
//! (`matrix::PAR_THRESHOLD`, the same rayon pattern as `Matrix::matvec`).

use crate::matrix::{par_map_rows, Matrix, PAR_THRESHOLD};
use crate::operator::LinearOperator;
use crate::scalar::Real;
use crate::simd;
use crate::vector::Vector;
use rayon::prelude::*;

/// A sparse matrix in compressed-sparse-row format.
///
/// Invariants: `row_ptr` has length `rows + 1` with `row_ptr[0] == 0` and
/// `row_ptr[rows] == nnz`; within each row the column indices are strictly
/// increasing; no explicit zeros are stored.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix<T: Real> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Real> SparseMatrix<T> {
    /// Build from coordinate-format triplets `(row, col, value)`.
    ///
    /// The input may be unsorted and may contain duplicate coordinates;
    /// duplicates are **summed** (in their original input order, so the
    /// result is deterministic) and entries whose merged value is exactly
    /// zero are dropped.  Rows with no entries are perfectly fine.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, T)]) -> Self {
        // Validate up front: the sort below may never evaluate its key for
        // degenerate inputs (e.g. a single triplet).
        for &(r, c, _) in triplets {
            assert!(
                r < rows,
                "from_triplets: row {r} out of range (rows = {rows})"
            );
            assert!(
                c < cols,
                "from_triplets: col {c} out of range (cols = {cols})"
            );
        }
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        // Stable sort: duplicates keep their input order, making the merge
        // summation order (and hence the rounded sums) deterministic.
        order.sort_by_key(|&k| {
            let (r, c, _) = triplets[k];
            (r, c)
        });

        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values: Vec<T> = Vec::with_capacity(triplets.len());
        let mut rows_seen: Vec<usize> = Vec::with_capacity(triplets.len());
        let mut iter = order.into_iter().peekable();
        while let Some(k) = iter.next() {
            let (r, c, mut v) = triplets[k];
            while let Some(&k2) = iter.peek() {
                let (r2, c2, v2) = triplets[k2];
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != T::zero() {
                rows_seen.push(r);
                col_idx.push(c);
                values.push(v);
            }
        }
        for &r in &rows_seen {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build from a dense matrix, keeping every nonzero entry.
    ///
    /// The resulting operator is bit-identical to the dense one under
    /// [`SparseMatrix::matvec`] / [`SparseMatrix::matvec_transposed`].
    pub fn from_dense(a: &Matrix<T>) -> Self {
        let rows = a.nrows();
        let cols = a.ncols();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for i in 0..rows {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v != T::zero() {
                    col_idx.push(j);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `i` as `(column indices, values)`, columns
    /// strictly increasing.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        assert!(i < self.rows, "row index out of range");
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Iterate over all stored entries as `(row, col, value)` in row-major
    /// order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (i, c, v))
        })
    }

    /// Matrix-vector product `A x` in O(nnz), row-partitioned across threads
    /// above the shared work threshold.
    ///
    /// For `T = f64` this runs the row-group SIMD kernel (see
    /// [`crate::simd`]); the result is bit-identical to
    /// [`SparseMatrix::matvec_scalar`] — and therefore still bit-identical
    /// to the dense oracle — for every row shape, including empty and
    /// single-entry rows (padded lanes are exact no-op fmas).
    pub fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(self.cols, x.len(), "sparse matvec: dimension mismatch");
        if simd::is_f64::<T>() {
            return self.matvec_f64_simd(x);
        }
        self.matvec_scalar(x)
    }

    /// Scalar SpMV kernel — the pre-SIMD loop kept verbatim as the
    /// equivalence oracle (and the only path for non-`f64` precisions).
    pub fn matvec_scalar(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(self.cols, x.len(), "sparse matvec: dimension mismatch");
        let xs = x.as_slice();
        par_map_rows(self.nnz(), self.rows, |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .fold(T::zero(), |acc, (&c, &v)| v.mul_add(xs[c], acc))
        })
    }

    /// SIMD SpMV for `T = f64`: four output rows per lane group,
    /// row-partitioned across threads above the shared work threshold.
    fn matvec_f64_simd(&self, x: &Vector<T>) -> Vector<T> {
        let xs = simd::as_f64(x.as_slice());
        let vals = simd::as_f64(&self.values);
        let mut out = vec![T::zero(); self.rows];
        let os = simd::as_f64_mut(&mut out);
        if self.nnz() >= PAR_THRESHOLD {
            const GROUP: usize = 16 * simd::LANES;
            os.par_chunks_mut(GROUP).enumerate().for_each(|(g, chunk)| {
                simd::spmv(&self.row_ptr, &self.col_idx, vals, xs, chunk, g * GROUP);
            });
        } else {
            simd::spmv(&self.row_ptr, &self.col_idx, vals, xs, os, 0);
        }
        Vector::from_vec(out)
    }

    /// Transposed matrix-vector product `Aᵀ x` in O(nnz) (sequential column
    /// scatter, the same operation order as the dense kernel).
    pub fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        assert_eq!(
            self.rows,
            x.len(),
            "sparse matvec_transposed: dimension mismatch"
        );
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                out[c] = v.mul_add(xi, out[c]);
            }
        }
        out
    }

    /// The main diagonal as a dense vector (absent entries are zero).
    pub fn diagonal(&self) -> Vector<T> {
        let n = self.rows.min(self.cols);
        let mut d = Vector::zeros(n);
        for i in 0..n {
            let (cols, vals) = self.row(i);
            if let Ok(k) = cols.binary_search(&i) {
                d[i] = vals[k];
            }
        }
        d
    }

    /// Exact symmetry check: the matrix equals its transpose entry for entry.
    ///
    /// O(nnz log nnz) (one transpose rebuild); both sides are in canonical
    /// CSR form (sorted columns, no duplicates), so structural equality is
    /// exact symmetry.  Used by the inner-solver selection to decide between
    /// CG and BiCGSTAB.
    pub fn is_symmetric(&self) -> bool {
        self.rows == self.cols && *self == self.transpose()
    }

    /// The explicit transpose, still in CSR.
    pub fn transpose(&self) -> Self {
        let triplets: Vec<(usize, usize, T)> =
            self.iter_entries().map(|(r, c, v)| (c, r, v)).collect();
        Self::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Densify into a full matrix (exact: every stored entry is copied).
    pub fn to_dense(&self) -> Matrix<T> {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter_entries() {
            m[(r, c)] = v;
        }
        m
    }

    /// Scale every stored entry by `alpha` in place.
    pub fn scale(&mut self, alpha: T) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Convert into another precision, rounding element-wise.
    pub fn convert<S: Real>(&self) -> SparseMatrix<S> {
        SparseMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            values: self
                .values
                .iter()
                .map(|v| S::from_f64(v.to_f64()))
                .collect(),
        }
    }
}

impl<T: Real> LinearOperator<T> for SparseMatrix<T> {
    fn nrows(&self) -> usize {
        SparseMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        SparseMatrix::ncols(self)
    }

    fn matvec(&self, x: &Vector<T>) -> Vector<T> {
        SparseMatrix::matvec(self, x)
    }

    fn matvec_transposed(&self, x: &Vector<T>) -> Vector<T> {
        SparseMatrix::matvec_transposed(self, x)
    }

    fn nnz(&self) -> usize {
        SparseMatrix::nnz(self)
    }

    fn to_dense(&self) -> Matrix<T> {
        SparseMatrix::to_dense(self)
    }

    fn norm_inf(&self) -> T {
        (0..self.rows)
            .map(|i| self.row(i).1.iter().fold(T::zero(), |acc, v| acc + v.abs()))
            .fold(T::zero(), |acc, s| acc.max(s))
    }

    fn norm_frobenius(&self) -> T {
        let maxabs = self
            .values
            .iter()
            .fold(T::zero(), |acc, v| acc.max(v.abs()));
        if maxabs == T::zero() {
            return T::zero();
        }
        let sum = self.values.iter().fold(T::zero(), |acc, &v| {
            let s = v / maxabs;
            s.mul_add(s, acc)
        });
        maxabs * sum.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_dense() -> Matrix<f64> {
        Matrix::from_f64_slice(
            3,
            4,
            &[
                1.0, 0.0, -2.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                3.5, 0.0, 0.0, 4.0,
            ],
        )
    }

    #[test]
    fn from_dense_roundtrips_exactly() {
        let d = example_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
        let (cols, vals) = s.row(1);
        assert!(cols.is_empty() && vals.is_empty());
    }

    #[test]
    fn matvec_is_bit_identical_to_dense() {
        let d = example_dense();
        let s = SparseMatrix::from_dense(&d);
        let x = Vector::from_f64_slice(&[0.1, -0.7, 0.33, 1.9]);
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
        let y = Vector::from_f64_slice(&[2.0, -1.0, 0.5]);
        assert_eq!(
            s.matvec_transposed(&y).as_slice(),
            d.matvec_transposed(&y).as_slice()
        );
    }

    #[test]
    fn triplets_sum_duplicates_in_input_order_and_sort_columns() {
        // Unsorted input with a duplicate coordinate and a zero-sum pair.
        let t = SparseMatrix::<f64>::from_triplets(
            2,
            3,
            &[
                (1, 2, 4.0),
                (0, 1, 1.0),
                (0, 0, 2.0),
                (0, 1, 0.5), // duplicate of (0,1): summed to 1.5
                (1, 0, 7.0),
                (1, 0, -7.0), // sums to exactly zero: dropped
            ],
        );
        assert_eq!(t.nnz(), 3);
        let (cols, vals) = t.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[2.0, 1.5]);
        let (cols, vals) = t.row(1);
        assert_eq!(cols, &[2]);
        assert_eq!(vals, &[4.0]);
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let t = SparseMatrix::<f64>::from_triplets(4, 4, &[(2, 3, 1.0)]);
        assert_eq!(t.nnz(), 1);
        let x = Vector::ones(4);
        assert_eq!(t.matvec(&x).as_slice(), &[0.0, 0.0, 1.0, 0.0]);
        let empty = SparseMatrix::<f64>::from_triplets(3, 3, &[]);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.matvec(&Vector::ones(3)).as_slice(), &[0.0; 3]);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let d = example_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s.transpose().to_dense(), d.transpose());
    }

    #[test]
    fn norms_match_dense() {
        let d = example_dense();
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(LinearOperator::norm_inf(&s), d.norm_inf());
        assert!((LinearOperator::norm_frobenius(&s) - d.norm_frobenius()).abs() < 1e-15);
    }

    #[test]
    fn large_matvec_takes_the_parallel_path() {
        // nnz above PAR_THRESHOLD exercises the row-partitioned fan-out.
        let n = 920usize;
        let d = Matrix::<f64>::from_fn(n, n, |i, j| {
            if (i + 2 * j) % 3 == 0 {
                ((i * 13 + j * 7) % 23) as f64 / 23.0
            } else {
                0.0
            }
        });
        let s = SparseMatrix::from_dense(&d);
        assert!(s.nnz() > crate::matrix::PAR_THRESHOLD);
        let x: Vector<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        assert_eq!(s.matvec(&x).as_slice(), d.matvec(&x).as_slice());
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = SparseMatrix::<f64>::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "col 5 out of range")]
    fn single_out_of_range_column_is_rejected_at_construction() {
        // Regression: with a single triplet the sort never evaluates its key,
        // so validation must not live inside the sort closure.
        let _ = SparseMatrix::<f64>::from_triplets(2, 2, &[(0, 5, 1.0)]);
    }
}
