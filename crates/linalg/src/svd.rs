//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The QSVT is literally a transformation of the singular values of the
//! block-encoded matrix, so an SVD is needed throughout the reproduction:
//! to compute exact condition numbers κ = σ_max/σ_min of the generated test
//! matrices, to validate the polynomial transformation `P(Σ)` applied by the
//! QSVT circuits, and to normalise matrices so that ‖A‖₂ ≤ 1 before
//! block-encoding.
//!
//! One-sided Jacobi is chosen because it is simple, numerically robust, and
//! computes small singular values to high relative accuracy — which matters
//! when κ is large, precisely the regime the paper studies.

use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::vector::Vector;

/// A singular value decomposition `A = U Σ Vᵀ`.
///
/// `u` is m×n with orthonormal columns, `sigma` holds the singular values in
/// non-increasing order, and `v` is n×n orthogonal (thin SVD, m ≥ n).
#[derive(Debug, Clone)]
pub struct Svd<T: Real> {
    /// Left singular vectors (m×n, orthonormal columns).
    pub u: Matrix<T>,
    /// Singular values, sorted in non-increasing order.
    pub sigma: Vec<T>,
    /// Right singular vectors (n×n, orthogonal).
    pub v: Matrix<T>,
}

impl<T: Real> Svd<T> {
    /// Compute the SVD of an m×n matrix with m ≥ n using one-sided Jacobi.
    ///
    /// Iterates sweeps of plane rotations on the columns of a working copy of
    /// `A` until all column pairs are numerically orthogonal.
    pub fn new(a: &Matrix<T>) -> Self {
        let m = a.nrows();
        let n = a.ncols();
        assert!(
            m >= n,
            "Svd::new requires m >= n; transpose the input first"
        );

        // Work on a copy whose columns converge to U Σ; V accumulates rotations.
        let mut w = a.clone();
        let mut v = Matrix::<T>::identity(n);

        let eps = T::from_f64(<T as Real>::unit_roundoff() * 16.0);
        let max_sweeps = 60;
        for _sweep in 0..max_sweeps {
            let mut off_diag_large = false;
            for p in 0..n {
                for q in (p + 1)..n {
                    // Compute the 2x2 Gram sub-matrix entries.
                    let mut app = T::zero();
                    let mut aqq = T::zero();
                    let mut apq = T::zero();
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        app = wp.mul_add(wp, app);
                        aqq = wq.mul_add(wq, aqq);
                        apq = wp.mul_add(wq, apq);
                    }
                    if apq.abs() <= eps * (app * aqq).sqrt() {
                        continue;
                    }
                    off_diag_large = true;
                    // Jacobi rotation that annihilates apq.
                    let tau = (aqq - app) / (T::from_f64(2.0) * apq);
                    let t = {
                        let sign = if tau >= T::zero() {
                            T::one()
                        } else {
                            -T::one()
                        };
                        sign / (tau.abs() + (T::one() + tau * tau).sqrt())
                    };
                    let c = T::one() / (T::one() + t * t).sqrt();
                    let s = c * t;
                    // Apply the rotation to columns p and q of W and V.
                    for i in 0..m {
                        let wp = w[(i, p)];
                        let wq = w[(i, q)];
                        w[(i, p)] = c * wp - s * wq;
                        w[(i, q)] = s * wp + c * wq;
                    }
                    for i in 0..n {
                        let vp = v[(i, p)];
                        let vq = v[(i, q)];
                        v[(i, p)] = c * vp - s * vq;
                        v[(i, q)] = s * vp + c * vq;
                    }
                }
            }
            if !off_diag_large {
                break;
            }
        }

        // Extract singular values as column norms of W, and normalise the columns.
        let mut sigma: Vec<T> = Vec::with_capacity(n);
        let mut u = Matrix::<T>::zeros(m, n);
        for j in 0..n {
            let col = w.col(j);
            let s = col.norm2();
            sigma.push(s);
            if s > T::zero() {
                let inv = T::one() / s;
                for i in 0..m {
                    u[(i, j)] = w[(i, j)] * inv;
                }
            } else {
                // Zero singular value: fill with a canonical basis direction to
                // keep U's columns well defined (orthogonality handled below is
                // best-effort for rank-deficient input).
                u[(j.min(m - 1), j)] = T::one();
            }
        }

        // Sort by decreasing singular value.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap());
        let sigma_sorted: Vec<T> = order.iter().map(|&i| sigma[i]).collect();
        let mut u_sorted = Matrix::<T>::zeros(m, n);
        let mut v_sorted = Matrix::<T>::zeros(n, n);
        for (newj, &oldj) in order.iter().enumerate() {
            u_sorted.set_col(newj, &u.col(oldj));
            v_sorted.set_col(newj, &v.col(oldj));
        }

        Svd {
            u: u_sorted,
            sigma: sigma_sorted,
            v: v_sorted,
        }
    }

    /// The largest singular value, i.e. the spectral norm ‖A‖₂.
    pub fn norm2(&self) -> T {
        self.sigma.first().copied().unwrap_or_else(T::zero)
    }

    /// The smallest singular value.
    pub fn sigma_min(&self) -> T {
        self.sigma.last().copied().unwrap_or_else(T::zero)
    }

    /// 2-norm condition number κ₂ = σ_max / σ_min.
    pub fn cond(&self) -> T {
        let smin = self.sigma_min();
        if smin == T::zero() {
            T::from_f64(f64::INFINITY)
        } else {
            self.norm2() / smin
        }
    }

    /// Numerical rank with tolerance `tol * σ_max`.
    pub fn rank(&self, tol: T) -> usize {
        let thresh = tol * self.norm2();
        self.sigma.iter().filter(|&&s| s > thresh).count()
    }

    /// Reconstruct `U Σ Vᵀ` (for verification).
    pub fn reconstruct(&self) -> Matrix<T> {
        let n = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..n {
            for i in 0..us.nrows() {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Apply the Moore–Penrose pseudo-inverse to a vector: `A⁺ b = V Σ⁺ Uᵀ b`.
    ///
    /// Singular values below `tol * σ_max` are treated as zero.  This is the
    /// classical analogue of what the QSVT matrix-inversion polynomial does on
    /// the quantum side.
    pub fn pseudo_solve(&self, b: &Vector<T>, tol: T) -> Vector<T> {
        let thresh = tol * self.norm2();
        let utb = self.u.matvec_transposed(b);
        let n = self.sigma.len();
        let mut y = Vector::zeros(n);
        for j in 0..n {
            if self.sigma[j] > thresh {
                y[j] = utb[j] / self.sigma[j];
            }
        }
        self.v.matvec(&y)
    }

    /// Apply an arbitrary function of the singular values: `U f(Σ) Vᵀ x` when
    /// `transpose` is false, or `V f(Σ) Uᵀ x` when true (the "odd polynomial on
    /// Aᵀ" convention used by QSVT-based matrix inversion).
    pub fn apply_function(&self, x: &Vector<T>, f: impl Fn(T) -> T, transpose: bool) -> Vector<T> {
        if transpose {
            let utx = self.u.matvec_transposed(x);
            let mut y = Vector::zeros(self.sigma.len());
            for j in 0..self.sigma.len() {
                y[j] = f(self.sigma[j]) * utx[j];
            }
            self.v.matvec(&y)
        } else {
            let vtx = self.v.matvec_transposed(x);
            let mut y = Vector::zeros(self.sigma.len());
            for j in 0..self.sigma.len() {
                y[j] = f(self.sigma[j]) * vtx[j];
            }
            self.u.matvec(&y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn reconstruction_is_accurate() {
        let a = random_matrix(8, 8, 11);
        let svd = Svd::new(&a);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn rectangular_reconstruction() {
        let a = random_matrix(10, 6, 12);
        let svd = Svd::new(&a);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-12);
        assert_eq!(svd.sigma.len(), 6);
    }

    #[test]
    fn singular_values_sorted_and_positive() {
        let a = random_matrix(9, 9, 13);
        let svd = Svd::new(&a);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn orthogonality_of_factors() {
        let a = random_matrix(8, 8, 14);
        let svd = Svd::new(&a);
        let utu = svd.u.transpose().matmul(&svd.u);
        let vtv = svd.v.transpose().matmul(&svd.v);
        assert!(utu.max_abs_diff(&Matrix::identity(8)) < 1e-12);
        assert!(vtv.max_abs_diff(&Matrix::identity(8)) < 1e-12);
    }

    #[test]
    fn diagonal_matrix_has_its_entries_as_singular_values() {
        let d = Matrix::from_diag(&[3.0, -2.0, 0.5]);
        let svd = Svd::new(&d);
        let got: Vec<f64> = svd.sigma.clone();
        assert!((got[0] - 3.0).abs() < 1e-14);
        assert!((got[1] - 2.0).abs() < 1e-14);
        assert!((got[2] - 0.5).abs() < 1e-14);
    }

    #[test]
    fn cond_of_known_matrix() {
        let d = Matrix::from_diag(&[10.0, 5.0, 1.0]);
        let svd = Svd::new(&d);
        assert!((svd.cond() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pseudo_solve_matches_lu_for_nonsingular() {
        use crate::lu::lu_solve;
        let a = random_matrix(7, 7, 15);
        let b = Vector::from_f64_slice(&(0..7).map(|i| (i as f64 + 1.0).ln()).collect::<Vec<_>>());
        let x_lu = lu_solve(&a, &b).unwrap();
        let x_svd = Svd::new(&a).pseudo_solve(&b, 1e-13);
        assert!((&x_lu - &x_svd).norm2() < 1e-10);
    }

    #[test]
    fn rank_deficient_matrix_detected() {
        // Rank-1 matrix.
        let a = Matrix::from_fn(5, 5, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = Svd::new(&a);
        assert_eq!(svd.rank(1e-10), 1);
    }

    #[test]
    fn apply_function_inverse_matches_solve() {
        let a = random_matrix(6, 6, 16);
        let b = Vector::from_f64_slice(&(0..6).map(|i| (i as f64).sin()).collect::<Vec<_>>());
        let svd = Svd::new(&a);
        // Solving A x = b with the SVD of A via x = V Σ^{-1} Uᵀ b.
        let x = svd.apply_function(&b, |s| 1.0 / s, true);
        let r = &a.matvec(&x) - &b;
        assert!(r.norm2() < 1e-10);
    }
}
