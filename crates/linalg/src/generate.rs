//! Test-matrix and test-vector generators.
//!
//! Section IV of the paper evaluates the solver on "randomly generated"
//! matrices with prescribed condition numbers (κ = 10, 100, 200, 300, …) and
//! unit-norm right-hand sides.  The standard way to build such matrices is
//! `A = U Σ Vᵀ` with Haar-random orthogonal `U`, `V` and a chosen singular
//! value profile; this module implements that construction plus a symmetric
//! positive-definite variant and uniform random matrices.

use crate::matrix::Matrix;
use crate::qr::QrFactorization;
use crate::sparse::SparseMatrix;
use crate::vector::Vector;
use rand::Rng;

pub use crate::stencil::{poisson_2d, poisson_2d_condition_number, poisson_2d_rhs};

/// How the singular values are distributed between 1 and 1/κ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingularValueDistribution {
    /// Geometric spacing: σ_i = κ^{-(i-1)/(n-1)} (LAPACK "mode 3", the default
    /// used in mixed-precision iterative-refinement studies).
    Geometric,
    /// Arithmetic (linear) spacing between 1 and 1/κ.
    Arithmetic,
    /// One large singular value, all the others equal to 1/κ (LAPACK "mode 1").
    OneLarge,
    /// All singular values equal to 1 except the smallest equal to 1/κ
    /// (LAPACK "mode 2").
    OneSmall,
    /// Clustered: half the spectrum at 1, half at 1/κ.
    Clustered,
}

impl SingularValueDistribution {
    /// Generate `n` singular values in `[1/κ, 1]`, sorted in non-increasing
    /// order, with σ_max = 1 and σ_min = 1/κ (so κ₂ = κ exactly).
    pub fn singular_values(self, n: usize, kappa: f64) -> Vec<f64> {
        assert!(n >= 1, "need at least one singular value");
        assert!(kappa >= 1.0, "condition number must be >= 1");
        if n == 1 {
            return vec![1.0];
        }
        let smin = 1.0 / kappa;
        let mut sv: Vec<f64> = match self {
            SingularValueDistribution::Geometric => (0..n)
                .map(|i| kappa.powf(-(i as f64) / (n as f64 - 1.0)))
                .collect(),
            SingularValueDistribution::Arithmetic => (0..n)
                .map(|i| 1.0 - (1.0 - smin) * (i as f64) / (n as f64 - 1.0))
                .collect(),
            SingularValueDistribution::OneLarge => {
                let mut v = vec![smin; n];
                v[0] = 1.0;
                v
            }
            SingularValueDistribution::OneSmall => {
                let mut v = vec![1.0; n];
                v[n - 1] = smin;
                v
            }
            SingularValueDistribution::Clustered => {
                let half = n / 2;
                let mut v = vec![1.0; n];
                for item in v.iter_mut().skip(half) {
                    *item = smin;
                }
                v
            }
        };
        // Enforce the extremes exactly so cond_2 == kappa.
        sv[0] = 1.0;
        sv[n - 1] = smin;
        sv.sort_by(|a, b| b.partial_cmp(a).unwrap());
        sv
    }
}

/// Which matrix ensemble to draw the orthogonal factors from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixEnsemble {
    /// General nonsymmetric matrix: independent Haar-random U and V.
    General,
    /// Symmetric positive definite: A = Q Σ Qᵀ with a single Haar-random Q.
    SymmetricPositiveDefinite,
    /// Symmetric indefinite: A = Q D Qᵀ with alternating signs on the diagonal.
    SymmetricIndefinite,
}

/// Draw an n×n matrix with independent standard-normal entries
/// (Box–Muller transform so only a uniform RNG is required).
pub fn random_gaussian_matrix<R: Rng>(n: usize, rng: &mut R) -> Matrix<f64> {
    Matrix::from_fn(n, n, |_, _| {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

/// Draw a Haar-distributed random orthogonal matrix (QR of a Gaussian matrix,
/// with the sign convention fixed so the distribution is exactly Haar).
pub fn random_orthogonal<R: Rng>(n: usize, rng: &mut R) -> Matrix<f64> {
    let g = random_gaussian_matrix(n, rng);
    let qr = QrFactorization::new(&g).expect("QR of a random Gaussian matrix");
    let mut q = qr.q();
    let r = qr.r();
    // Fix signs: multiply column j of Q by sign(r_jj) so the factorisation is
    // unique and Q is Haar-distributed.
    for j in 0..n {
        if r[(j, j)] < 0.0 {
            for i in 0..n {
                q[(i, j)] = -q[(i, j)];
            }
        }
    }
    q
}

/// Generate a random n×n matrix with 2-norm condition number exactly `kappa`,
/// spectral norm 1, and the requested singular-value profile / symmetry.
pub fn random_matrix_with_cond<R: Rng>(
    n: usize,
    kappa: f64,
    dist: SingularValueDistribution,
    ensemble: MatrixEnsemble,
    rng: &mut R,
) -> Matrix<f64> {
    let sv = dist.singular_values(n, kappa);
    match ensemble {
        MatrixEnsemble::General => {
            let u = random_orthogonal(n, rng);
            let v = random_orthogonal(n, rng);
            let mut us = u;
            for j in 0..n {
                for i in 0..n {
                    us[(i, j)] *= sv[j];
                }
            }
            us.matmul(&v.transpose())
        }
        MatrixEnsemble::SymmetricPositiveDefinite => {
            let q = random_orthogonal(n, rng);
            let mut qs = q.clone();
            for j in 0..n {
                for i in 0..n {
                    qs[(i, j)] *= sv[j];
                }
            }
            qs.matmul(&q.transpose())
        }
        MatrixEnsemble::SymmetricIndefinite => {
            let q = random_orthogonal(n, rng);
            let mut qs = q.clone();
            for j in 0..n {
                let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
                for i in 0..n {
                    qs[(i, j)] *= sv[j] * sign;
                }
            }
            qs.matmul(&q.transpose())
        }
    }
}

/// Generate a random vector with independent uniform entries in [-1, 1],
/// normalised to unit Euclidean norm (the paper fixes ‖b‖ = 1).
pub fn random_unit_vector<R: Rng>(n: usize, rng: &mut R) -> Vector<f64> {
    loop {
        let mut v: Vector<f64> = (0..n)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect::<Vector<f64>>();
        let norm = v.normalize();
        if norm > 1e-12 {
            return v;
        }
    }
}

/// The (weighted) graph Laplacian `L = D − W` of an undirected graph on `n`
/// vertices, built directly in CSR form: each edge `(u, v, w)` contributes
/// `+w` to both diagonal entries and `−w` to both off-diagonal couplings.
/// Parallel edges are merged by the triplet builder (their weights sum).
///
/// `L` is symmetric positive **semi**-definite — the constant vector is
/// always in its null space — so linear solves use
/// [`shifted_graph_laplacian`] (adds `shift·I`, making the system SPD), the
/// standard regularisation for graph workloads.
pub fn graph_laplacian<T: crate::scalar::Real>(
    n: usize,
    edges: &[(usize, usize, f64)],
) -> SparseMatrix<T> {
    SparseMatrix::from_triplets(n, n, &laplacian_triplets(n, edges))
}

/// [`graph_laplacian`] plus `shift·I` (symmetric positive definite for any
/// `shift > 0` — the solvable form of a graph-Laplacian system).
pub fn shifted_graph_laplacian<T: crate::scalar::Real>(
    n: usize,
    edges: &[(usize, usize, f64)],
    shift: f64,
) -> SparseMatrix<T> {
    let mut triplets = laplacian_triplets(n, edges);
    for i in 0..n {
        triplets.push((i, i, T::from_f64(shift)));
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// The `L = D − W` triplets shared by the Laplacian builders (duplicate
/// coordinates are summed by the triplet builder).
fn laplacian_triplets<T: crate::scalar::Real>(
    n: usize,
    edges: &[(usize, usize, f64)],
) -> Vec<(usize, usize, T)> {
    let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(4 * edges.len() + n);
    for &(u, v, w) in edges {
        assert!(
            u < n && v < n,
            "graph_laplacian: edge ({u}, {v}) out of range"
        );
        assert_ne!(u, v, "graph_laplacian: self-loops are not allowed");
        let w = T::from_f64(w);
        triplets.push((u, u, w));
        triplets.push((v, v, w));
        triplets.push((u, v, -w));
        triplets.push((v, u, -w));
    }
    triplets
}

/// A random connected weighted graph: a random spanning tree (vertex `v`
/// attaches to a uniformly chosen earlier vertex) plus `extra_edges` uniform
/// random edges, all with weights in `[0.5, 1.5)`.  Duplicate edges are fine
/// — the Laplacian builders merge them.
pub fn random_connected_graph<R: Rng>(
    n: usize,
    extra_edges: usize,
    rng: &mut R,
) -> Vec<(usize, usize, f64)> {
    assert!(n >= 2, "need at least two vertices");
    let mut edges = Vec::with_capacity(n - 1 + extra_edges);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        edges.push((u, v, rng.gen_range(0.5..1.5)));
    }
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n);
        let mut v = rng.gen_range(0..n - 1);
        if v >= u {
            v += 1;
        }
        edges.push((u.min(v), u.max(v), rng.gen_range(0.5..1.5)));
    }
    edges
}

/// The 1-D convection-diffusion operator `−u'' + p·u'` on a uniform grid with
/// Dirichlet boundaries, centrally differenced and scaled by `h²`: the
/// tridiagonal matrix with rows `(−1 − p/2, 2, −1 + p/2)` where `p` is the
/// mesh Péclet number `c·h`.  Nonsymmetric for any `p ≠ 0` — the canonical
/// small workload for the transposed solves and the BiCGSTAB inner path.  For
/// `|p| < 2` the matrix is (weakly) row diagonally dominant and all
/// eigenvalues `2 − 2·√((1−p/2)(1+p/2))·cos(kπ/(n+1))` are real and positive.
pub fn convection_diffusion_1d<T: crate::scalar::Real>(
    n: usize,
    peclet: f64,
) -> crate::tridiag::TridiagonalMatrix<T> {
    assert!(n >= 1, "convection_diffusion_1d: empty grid");
    assert!(
        peclet.abs() < 2.0,
        "convection_diffusion_1d: |peclet| must be < 2 for a stable central scheme"
    );
    let lower = T::from_f64(-1.0 - peclet / 2.0);
    let upper = T::from_f64(-1.0 + peclet / 2.0);
    crate::tridiag::TridiagonalMatrix::new(
        vec![lower; n.saturating_sub(1)],
        vec![T::from_f64(2.0); n],
        vec![upper; n.saturating_sub(1)],
    )
}

/// The 2-D convection-diffusion operator `−Δu + (cx, cy)·∇u` on an
/// `nx × ny` interior grid (Dirichlet boundaries, central differences,
/// scaled by `h²`), built directly in CSR form.  With mesh Péclet numbers
/// `px = cx·h` and `py = cy·h` the five-point rows are
/// `center 4`, `west −1 − px/2`, `east −1 + px/2`,
/// `south −1 − py/2`, `north −1 + py/2` — nonsymmetric whenever either
/// Péclet number is nonzero.  Grid point `(ix, iy)` maps to row
/// `ix·ny + iy` (row-major, matching [`crate::stencil::poisson_2d`]).
pub fn convection_diffusion_2d<T: crate::scalar::Real>(
    nx: usize,
    ny: usize,
    peclet_x: f64,
    peclet_y: f64,
) -> SparseMatrix<T> {
    assert!(nx >= 1 && ny >= 1, "convection_diffusion_2d: empty grid");
    assert!(
        peclet_x.abs() < 2.0 && peclet_y.abs() < 2.0,
        "convection_diffusion_2d: mesh Péclet numbers must satisfy |p| < 2"
    );
    let n = nx * ny;
    let west = T::from_f64(-1.0 - peclet_x / 2.0);
    let east = T::from_f64(-1.0 + peclet_x / 2.0);
    let south = T::from_f64(-1.0 - peclet_y / 2.0);
    let north = T::from_f64(-1.0 + peclet_y / 2.0);
    let center = T::from_f64(4.0);
    let mut triplets: Vec<(usize, usize, T)> = Vec::with_capacity(5 * n);
    for ix in 0..nx {
        for iy in 0..ny {
            let k = ix * ny + iy;
            if ix > 0 {
                triplets.push((k, k - ny, west));
            }
            if iy > 0 {
                triplets.push((k, k - 1, south));
            }
            triplets.push((k, k, center));
            if iy + 1 < ny {
                triplets.push((k, k + 1, north));
            }
            if ix + 1 < nx {
                triplets.push((k, k + ny, east));
            }
        }
    }
    SparseMatrix::from_triplets(n, n, &triplets)
}

/// Generate a right-hand side with a known solution: returns `(b, x_true)`
/// where `b = A x_true` and `x_true` has uniform entries in [-1, 1].
pub fn rhs_with_known_solution<R: Rng>(a: &Matrix<f64>, rng: &mut R) -> (Vector<f64>, Vector<f64>) {
    let n = a.ncols();
    let x_true: Vector<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b = a.matvec(&x_true);
    (b, x_true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::cond_2;
    use crate::svd::Svd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn singular_value_profiles_hit_extremes() {
        for dist in [
            SingularValueDistribution::Geometric,
            SingularValueDistribution::Arithmetic,
            SingularValueDistribution::OneLarge,
            SingularValueDistribution::OneSmall,
            SingularValueDistribution::Clustered,
        ] {
            let sv = dist.singular_values(8, 100.0);
            assert_eq!(sv.len(), 8);
            assert!((sv[0] - 1.0).abs() < 1e-15);
            assert!((sv[7] - 0.01).abs() < 1e-15);
            for w in sv.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }

    #[test]
    fn orthogonal_matrices_are_orthogonal() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let q = random_orthogonal(10, &mut rng);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.max_abs_diff(&Matrix::identity(10)) < 1e-12);
    }

    #[test]
    fn generated_matrix_has_requested_cond_and_unit_norm() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let a = random_matrix_with_cond(
            16,
            200.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let svd = Svd::new(&a);
        assert!((svd.norm2() - 1.0).abs() < 1e-10);
        assert!((svd.cond() - 200.0).abs() / 200.0 < 1e-8);
    }

    #[test]
    fn spd_matrix_is_symmetric_with_positive_eigenvalues() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let a = random_matrix_with_cond(
            8,
            50.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::SymmetricPositiveDefinite,
            &mut rng,
        );
        assert!(a.is_symmetric(1e-12));
        // Positive definiteness: xᵀAx > 0 for a few random x.
        for seed in 0..5u64 {
            let mut r2 = ChaCha8Rng::seed_from_u64(100 + seed);
            let x = random_unit_vector(8, &mut r2);
            assert!(x.dot(&a.matvec(&x)) > 0.0);
        }
        assert!((cond_2(&a) - 50.0).abs() / 50.0 < 1e-8);
    }

    #[test]
    fn symmetric_indefinite_is_symmetric() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let a = random_matrix_with_cond(
            8,
            20.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::SymmetricIndefinite,
            &mut rng,
        );
        assert!(a.is_symmetric(1e-12));
        assert!((cond_2(&a) - 20.0).abs() / 20.0 < 1e-8);
    }

    #[test]
    fn unit_vector_has_norm_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let v = random_unit_vector(16, &mut rng);
        assert!((v.norm2() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn rhs_with_known_solution_is_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(36);
        let a = random_matrix_with_cond(
            8,
            10.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let (b, x) = rhs_with_known_solution(&a, &mut rng);
        assert!((&a.matvec(&x) - &b).norm2() < 1e-14);
    }

    #[test]
    fn graph_laplacian_has_zero_row_sums_and_is_symmetric() {
        let mut rng = ChaCha8Rng::seed_from_u64(38);
        let edges = random_connected_graph(12, 8, &mut rng);
        let l = graph_laplacian::<f64>(12, &edges);
        let d = l.to_dense();
        assert!(d.is_symmetric(1e-14));
        // L * 1 = 0 (the constant null vector).
        let ones = Vector::ones(12);
        assert!(l.matvec(&ones).norm2() < 1e-12);
        // Positive semi-definite: xᵀLx >= 0.
        for seed in 0..3u64 {
            let mut r2 = ChaCha8Rng::seed_from_u64(200 + seed);
            let x = random_unit_vector(12, &mut r2);
            assert!(x.dot(&l.matvec(&x)) >= -1e-12);
        }
    }

    #[test]
    fn shifted_graph_laplacian_is_positive_definite() {
        let mut rng = ChaCha8Rng::seed_from_u64(39);
        let edges = random_connected_graph(10, 5, &mut rng);
        let l = shifted_graph_laplacian::<f64>(10, &edges, 0.5);
        // Smallest eigenvalue is exactly shift (the constant vector), so the
        // matrix is comfortably SPD and LU-solvable.
        let x = crate::lu::lu_solve(&l.to_dense(), &Vector::ones(10)).unwrap();
        assert!((&l.matvec(&x) - &Vector::ones(10)).norm2() < 1e-10);
        for seed in 0..3u64 {
            let mut r2 = ChaCha8Rng::seed_from_u64(300 + seed);
            let v = random_unit_vector(10, &mut r2);
            assert!(v.dot(&l.matvec(&v)) >= 0.5 - 1e-10);
        }
    }

    #[test]
    fn parallel_edges_merge_in_the_laplacian() {
        // The same edge twice behaves like one edge of summed weight.
        let twice = graph_laplacian::<f64>(3, &[(0, 1, 0.75), (0, 1, 0.25), (1, 2, 1.0)]);
        let once = graph_laplacian::<f64>(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        assert_eq!(twice.to_dense(), once.to_dense());
    }

    #[test]
    fn convection_diffusion_1d_is_nonsymmetric_with_dominant_rows() {
        let t = convection_diffusion_1d::<f64>(6, 0.8);
        let a = t.to_dense();
        // Row pattern (−1.4, 2, −0.6): nonsymmetric, weakly dominant.
        assert_eq!(a[(1, 0)], -1.4);
        assert_eq!(a[(1, 1)], 2.0);
        assert_eq!(a[(1, 2)], -0.6);
        assert!(a.max_abs_diff(&a.transpose()) > 0.5);
        // peclet = 0 recovers the 1-D Poisson matrix exactly.
        let p0 = convection_diffusion_1d::<f64>(6, 0.0).to_dense();
        assert_eq!(p0, crate::tridiag::poisson_1d::<f64>(6, false).to_dense());
    }

    #[test]
    fn convection_diffusion_2d_reduces_to_poisson_at_zero_peclet() {
        let cd = convection_diffusion_2d::<f64>(4, 3, 0.0, 0.0);
        let poisson = crate::stencil::poisson_2d::<f64>(4, 3, false).to_sparse();
        assert_eq!(cd.to_dense(), poisson.to_dense());
    }

    #[test]
    fn convection_diffusion_2d_couples_the_grid_directionally() {
        let (nx, ny) = (3, 4);
        let a = convection_diffusion_2d::<f64>(nx, ny, 0.5, -0.25);
        let d = a.to_dense();
        // Interior point (1, 1) → row 1·ny + 1 = 5.
        let k = ny + 1;
        assert_eq!(d[(k, k)], 4.0);
        assert_eq!(d[(k, k - ny)], -1.25); // west  (−1 − px/2)
        assert_eq!(d[(k, k + ny)], -0.75); // east  (−1 + px/2)
        assert_eq!(d[(k, k - 1)], -0.875); // south (−1 − py/2)
        assert_eq!(d[(k, k + 1)], -1.125); // north (−1 + py/2)
        assert!(!a.is_symmetric());
    }

    #[test]
    fn deterministic_given_seed() {
        let a1 = {
            let mut rng = ChaCha8Rng::seed_from_u64(37);
            random_matrix_with_cond(
                8,
                10.0,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            )
        };
        let a2 = {
            let mut rng = ChaCha8Rng::seed_from_u64(37);
            random_matrix_with_cond(
                8,
                10.0,
                SingularValueDistribution::Geometric,
                MatrixEnsemble::General,
                &mut rng,
            )
        };
        assert_eq!(a1, a2);
    }
}
