//! Brent's derivative-free 1-D minimisation and root finding.
//!
//! Remark 2 of the paper: quantum linear-system algorithms return only the
//! *direction* η = x/‖x‖ of the solution, so the norm ‖x‖ must be recovered
//! classically by solving `argmin_μ ‖A(μ η) − b‖` (the paper writes the
//! equivalent shifted form).  The paper performs this de-normalisation with
//! Brent's method, whose worst-case complexity appears as the `O(log(1/ε))`
//! term of Table II.  Both the golden-section/parabolic-interpolation
//! minimiser and the classic root finder are implemented here.

/// Result of a Brent search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentResult {
    /// Abscissa of the minimum (or root).
    pub x: f64,
    /// Function value at `x`.
    pub fx: f64,
    /// Number of function evaluations used.
    pub evaluations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Minimise a unimodal function on `[a, b]` with Brent's method
/// (golden-section search with parabolic-interpolation acceleration).
///
/// `tol` is the absolute tolerance on the abscissa; the routine performs at
/// most `max_iter` iterations (each costing one function evaluation).
pub fn brent_minimize(
    f: impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> BrentResult {
    assert!(a < b, "brent_minimize: invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "brent_minimize: tolerance must be positive");
    let golden = 0.5 * (3.0 - 5.0_f64.sqrt());
    let (mut lo, mut hi) = (a, b);
    let mut x = lo + golden * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    let mut evaluations = 1usize;

    for _ in 0..max_iter {
        let m = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + 1e-300;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (hi - lo) {
            return BrentResult {
                x,
                fx,
                evaluations,
                converged: true,
            };
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try a parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = e;
            e = d;
            // Accept the parabolic step only if it falls inside the bracket and
            // improves on the previous-but-one step length.
            if p.abs() < (0.5 * q * e_old).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if (u - lo) < tol2 || (hi - u) < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { hi - x } else { lo - x };
            d = golden * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        evaluations += 1;
        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    BrentResult {
        x,
        fx,
        evaluations,
        converged: false,
    }
}

/// Find a root of `f` in `[a, b]` (requires `f(a)` and `f(b)` of opposite
/// signs) with Brent's method: bisection, secant and inverse quadratic
/// interpolation combined.
pub fn brent_root(
    f: impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Option<BrentResult> {
    let mut a = a;
    let mut b = b;
    let mut fa = f(a);
    let mut fb = f(b);
    let mut evaluations = 2usize;
    if fa * fb > 0.0 {
        return None;
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;

    for _ in 0..max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Some(BrentResult {
                x: b,
                fx: fb,
                evaluations,
                converged: true,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let cond1 = !(s > (3.0 * a + b) / 4.0 && s < b || s < (3.0 * a + b) / 4.0 && s > b);
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && (c - d).abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        evaluations += 1;
        d = c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Some(BrentResult {
        x: b,
        fx: fb,
        evaluations,
        converged: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = brent_minimize(|x| (x - 1.7).powi(2) + 3.0, -10.0, 10.0, 1e-10, 200);
        assert!(r.converged);
        assert!((r.x - 1.7).abs() < 1e-7);
        assert!((r.fx - 3.0).abs() < 1e-12);
    }

    #[test]
    fn minimizes_nonsymmetric_unimodal_function() {
        // f(x) = e^x - 2x has its minimum at ln 2.
        let r = brent_minimize(|x| x.exp() - 2.0 * x, -5.0, 5.0, 1e-12, 200);
        assert!(r.converged);
        assert!((r.x - std::f64::consts::LN_2).abs() < 1e-7);
    }

    #[test]
    fn minimization_uses_few_evaluations() {
        let r = brent_minimize(|x| (x - 0.3).powi(2), 0.0, 1.0, 1e-8, 500);
        assert!(r.converged);
        // Brent should need on the order of tens of evaluations, never hundreds.
        assert!(r.evaluations < 60, "used {} evaluations", r.evaluations);
    }

    #[test]
    fn scale_recovery_model_problem() {
        // The Remark-2 use case: given eta = x/||x||, recover mu = ||x|| by
        // minimising ||mu * (A eta) - b||^2, a perfect quadratic in mu.
        let a_eta = [0.3, -0.2, 0.5];
        let mu_true = 7.25;
        let b: Vec<f64> = a_eta.iter().map(|v| v * mu_true).collect();
        let objective = |mu: f64| -> f64 {
            a_eta
                .iter()
                .zip(&b)
                .map(|(&ae, &bi)| (mu * ae - bi).powi(2))
                .sum()
        };
        let r = brent_minimize(objective, 0.0, 100.0, 1e-12, 300);
        assert!((r.x - mu_true).abs() < 1e-6);
    }

    #[test]
    fn root_of_cubic() {
        let r = brent_root(|x| x * x * x - 2.0, 0.0, 2.0, 1e-14, 200).unwrap();
        assert!(r.converged);
        assert!((r.x - 2f64.powf(1.0 / 3.0)).abs() < 1e-10);
    }

    #[test]
    fn root_requires_sign_change() {
        assert!(brent_root(|x| x * x + 1.0, -1.0, 1.0, 1e-10, 100).is_none());
    }

    #[test]
    fn root_at_endpoint() {
        let r = brent_root(|x| x, 0.0, 1.0, 1e-15, 100).unwrap();
        assert!(r.x.abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_bracket_panics() {
        let _ = brent_minimize(|x| x, 1.0, -1.0, 1e-8, 10);
    }
}
