//! # qls-encoding
//!
//! Quantum data-loading substrate: state preparation and block-encodings.
//!
//! The QSVT linear solver of the paper needs two encodings of classical data
//! into quantum circuits (Section III-A):
//!
//! * **State preparation** — the right-hand side `b` (and, at every refinement
//!   iteration, the residual `r_i`) must be loaded as the amplitudes of a
//!   quantum state.  [`state_prep`] implements the tree-based method of
//!   Kerenidis–Prakash (the paper's Ref. [23]): a binary tree of partial norms
//!   computed classically in O(N), then a cascade of multiplexed Ry rotations.
//! * **Block-encoding** — the matrix `A†` must be embedded in the top-left
//!   block of a unitary `U` with `(⟨0|_a ⊗ I) U (|0⟩_a ⊗ I) = A†/α`.
//!   Four constructions are provided:
//!   [`lcu`] (Linear Combination of Unitaries over the Pauli decomposition of
//!   `A`, the paper's Refs. [12], [25]), [`fable`] (FABLE-style encoding with
//!   one ancilla per matrix dimension and threshold compression, Ref. [10]),
//!   [`tridiag`] (the Poisson tridiagonal matrix of Eq. (7), used by the
//!   Table-II use case), and [`dilation`] (an exact unitary-dilation encoding
//!   used as the fast emulation path — see DESIGN.md for the substitution
//!   note).
//!
//! All encodings implement the [`BlockEncoding`] trait so the QSVT layer in
//! `qls-qsvt` is agnostic to which construction produced the circuit.  The
//! trait's `Ext` helpers are one-shot conveniences; repeated or batched
//! application goes through [`executor::BlockEncodingExecutor`], which
//! compiles the forward and adjoint circuits exactly once (the compile-once
//! engine pattern of `qls_sim::QuantumExecutor`).

pub mod block_encoding;
pub mod dilation;
pub mod executor;
pub mod fable;
pub mod lcu;
pub mod pauli;
pub mod state_prep;
pub mod tridiag;

pub use block_encoding::{BlockEncoding, BlockEncodingExt};
pub use dilation::DilationBlockEncoding;
pub use executor::BlockEncodingExecutor;
pub use fable::FableBlockEncoding;
pub use lcu::LcuBlockEncoding;
pub use pauli::{PauliDecomposition, PauliString, PauliTerm};
pub use state_prep::{prepare_state_circuit, StatePreparation};
pub use tridiag::TridiagBlockEncoding;
