//! Tree-based amplitude state preparation (Kerenidis–Prakash).
//!
//! Given a real vector `v ∈ R^{2^n}`, build a circuit that maps `|0…0⟩` to
//! `Σ_i (v_i/‖v‖) |i⟩`.  Following the paper's Ref. [23], a binary tree of
//! partial squared norms is computed classically in O(N) flops (the "SP —
//! classical O(2^n)" row of Table II); the tree angles then drive a cascade of
//! multiplexed Ry rotations, one level per qubit.  Negative entries are
//! handled by a final layer of basis-state phase flips.
//!
//! Qubit convention: the prepared register is the *data* register of the
//! solver, occupying qubits `0..n`; within the register, qubit `n-1` (the
//! highest) corresponds to the most significant bit of the vector index, so
//! that amplitude `i` of the produced state equals `v_i/‖v‖`.

use qls_linalg::Vector;
use qls_sim::{Circuit, Gate, StateVector};

/// The classical preprocessing product of the Kerenidis–Prakash method: the
/// binary tree of partial norms, the rotation angles, and the sign pattern.
#[derive(Debug, Clone)]
pub struct StatePreparation {
    /// Number of data qubits (`N = 2^n`).
    pub num_qubits: usize,
    /// Norm of the input vector (returned to the caller so it can undo the
    /// normalisation classically, per Remark 2 of the paper).
    pub norm: f64,
    /// Rotation angles per tree level: `angles[l]` has `2^l` entries.
    pub angles: Vec<Vec<f64>>,
    /// Indices of the entries with a negative sign.
    pub negative_indices: Vec<usize>,
    /// Classical flop count spent building the tree (reported in Table II).
    pub classical_flops: usize,
}

impl StatePreparation {
    /// Run the classical preprocessing for a vector of length `2^n`.
    ///
    /// Zero vectors are rejected; callers should short-circuit that case.
    pub fn new(v: &Vector<f64>) -> Self {
        let len = v.len();
        assert!(
            len.is_power_of_two() && len >= 1,
            "vector length must be a power of two"
        );
        let num_qubits = len.trailing_zeros() as usize;
        let norm = v.norm2();
        assert!(norm > 0.0, "cannot prepare the zero vector");

        let mut flops = 0usize;

        // Leaves of the tree: squared magnitudes.
        let mut level: Vec<f64> = v.iter().map(|&x| x * x).collect();
        flops += len;
        // Build the tree bottom-up: levels[l][j] = sum of squared magnitudes of
        // the subtree rooted at node j of level l (level 0 = root).
        let mut levels: Vec<Vec<f64>> = vec![level.clone()];
        while level.len() > 1 {
            let next: Vec<f64> = level.chunks(2).map(|c| c[0] + c[1]).collect();
            flops += next.len();
            levels.push(next.clone());
            level = next;
        }
        levels.reverse(); // levels[0] = root, levels[n] = leaves

        // Angles: at level l, node j splits its mass between children 2j (left,
        // bit 0) and 2j+1 (right, bit 1); the Ry angle is 2·atan2(√right, √left).
        let mut angles = Vec::with_capacity(num_qubits);
        for l in 0..num_qubits {
            let parents = &levels[l];
            let children = &levels[l + 1];
            let mut level_angles = Vec::with_capacity(parents.len());
            for (j, &mass) in parents.iter().enumerate() {
                let left = children[2 * j];
                let right = children[2 * j + 1];
                let angle = if mass <= 0.0 {
                    0.0
                } else {
                    2.0 * right.sqrt().atan2(left.sqrt())
                };
                flops += 4;
                level_angles.push(angle);
            }
            angles.push(level_angles);
        }

        let negative_indices: Vec<usize> = v
            .iter()
            .enumerate()
            .filter(|(_, &x)| x < 0.0)
            .map(|(i, _)| i)
            .collect();

        StatePreparation {
            num_qubits,
            norm,
            angles,
            negative_indices,
            classical_flops: flops,
        }
    }

    /// Build the preparation circuit on `num_qubits` qubits.
    ///
    /// Level-`l` rotations act on qubit `n-1-l` (most significant bit first)
    /// and are multiplexed over the `l` previously prepared qubits; the
    /// multiplexing is realised as one multi-controlled Ry per control pattern
    /// (0-controls implemented by X conjugation).
    pub fn circuit(&self) -> Circuit {
        let n = self.num_qubits;
        let mut circuit = Circuit::new(n.max(1));
        if n == 0 {
            return circuit;
        }
        for (l, level_angles) in self.angles.iter().enumerate() {
            let target = n - 1 - l;
            // Control qubits: the l already-prepared qubits (the more significant ones).
            let controls: Vec<usize> = (0..l).map(|k| n - 1 - k).collect();
            for (pattern, &angle) in level_angles.iter().enumerate() {
                if angle == 0.0 {
                    continue;
                }
                if controls.is_empty() {
                    circuit.ry(target, angle);
                    continue;
                }
                // Pattern bit k corresponds to control qubit n-1-k.
                let zero_controls: Vec<usize> = controls
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| pattern & (1 << (l - 1 - k)) == 0)
                    .map(|(_, &q)| q)
                    .collect();
                for &q in &zero_controls {
                    circuit.x(q);
                }
                circuit.controlled_gate(Gate::Ry(angle), &[target], &controls);
                for &q in &zero_controls {
                    circuit.x(q);
                }
            }
        }
        // Sign layer: flip the phase of every negative entry.
        for &idx in &self.negative_indices {
            apply_basis_phase_flip(&mut circuit, n, idx);
        }
        circuit
    }
}

/// Append a phase flip of the single computational basis state `index` to the
/// circuit (multi-controlled Z with 0-controls handled by X conjugation).
fn apply_basis_phase_flip(circuit: &mut Circuit, n: usize, index: usize) {
    // The amplitude index uses the convention: bit k of `index` (from the most
    // significant, k = 0) lives on qubit n-1-k, i.e. plain little-endian on the
    // basis index — qubit q holds bit q of the index.
    let zero_qubits: Vec<usize> = (0..n).filter(|q| index & (1 << q) == 0).collect();
    for &q in &zero_qubits {
        circuit.x(q);
    }
    if n == 1 {
        circuit.z(0);
    } else {
        let controls: Vec<usize> = (0..n - 1).collect();
        circuit.controlled_gate(Gate::Z, &[n - 1], &controls);
    }
    for &q in &zero_qubits {
        circuit.x(q);
    }
}

/// Convenience function: classical preprocessing + circuit in one call,
/// returning `(circuit, ‖v‖)`.
pub fn prepare_state_circuit(v: &Vector<f64>) -> (Circuit, f64) {
    let prep = StatePreparation::new(v);
    (prep.circuit(), prep.norm)
}

/// Verify a preparation circuit by running it and comparing amplitudes with
/// the normalised input (returns the maximum absolute amplitude error).
pub fn verify_preparation(v: &Vector<f64>, circuit: &Circuit) -> f64 {
    let state = StateVector::run(circuit);
    let norm = v.norm2();
    let mut err = 0.0f64;
    for (i, &vi) in v.iter().enumerate() {
        let target = vi / norm;
        let got = state.amplitudes()[i];
        err = err.max((got.re - target).abs().max(got.im.abs()));
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_roundtrip(v: &[f64]) {
        let vec = Vector::from_f64_slice(v);
        let (circuit, norm) = prepare_state_circuit(&vec);
        assert!((norm - vec.norm2()).abs() < 1e-14);
        let err = verify_preparation(&vec, &circuit);
        assert!(err < 1e-12, "preparation error {err} for {v:?}");
    }

    #[test]
    fn prepares_positive_vectors() {
        check_roundtrip(&[1.0, 0.0]);
        check_roundtrip(&[1.0, 1.0]);
        check_roundtrip(&[0.5, 0.25, 0.125, 0.125]);
        check_roundtrip(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
    }

    #[test]
    fn prepares_vectors_with_negative_entries() {
        check_roundtrip(&[1.0, -1.0]);
        check_roundtrip(&[0.5, -0.25, -0.125, 0.125]);
        check_roundtrip(&[-3.0, 1.0, -4.0, 1.0, -5.0, 9.0, -2.0, 6.0]);
    }

    #[test]
    fn prepares_sparse_vectors() {
        check_roundtrip(&[0.0, 1.0, 0.0, 0.0]);
        check_roundtrip(&[0.0, 0.0, 0.0, -2.0]);
        check_roundtrip(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn prepares_random_vectors_of_various_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        for &n in &[1usize, 2, 3, 4, 5] {
            let v: Vec<f64> = (0..(1 << n)).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_roundtrip(&v);
        }
    }

    #[test]
    fn single_qubit_case() {
        check_roundtrip(&[0.6, 0.8]);
        check_roundtrip(&[0.6, -0.8]);
    }

    #[test]
    fn classical_cost_is_linear_in_n() {
        let v16 = Vector::from_f64_slice(&[1.0; 16]);
        let v64 = Vector::from_f64_slice(&vec![1.0; 64]);
        let p16 = StatePreparation::new(&v16);
        let p64 = StatePreparation::new(&v64);
        assert!(p64.classical_flops > p16.classical_flops);
        // O(N): the ratio should be ≈ 4, certainly below 8.
        assert!((p64.classical_flops as f64 / p16.classical_flops as f64) < 8.0);
    }

    #[test]
    fn circuit_size_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(82);
        let v: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let prep = StatePreparation::new(&Vector::from_f64_slice(&v));
        let circuit = prep.circuit();
        assert_eq!(circuit.num_qubits(), 4);
        assert!(circuit.gate_count() > 0);
    }

    #[test]
    #[should_panic]
    fn zero_vector_rejected() {
        let _ = StatePreparation::new(&Vector::from_f64_slice(&[0.0, 0.0]));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = StatePreparation::new(&Vector::from_f64_slice(&[1.0, 2.0, 3.0]));
    }
}
