//! Pauli decomposition of dense matrices.
//!
//! The LCU block-encoding (Section II-A1 of the paper, Refs. [12], [25])
//! represents `A` as a weighted sum of unitaries; for a general dense matrix
//! the natural unitary basis is the set of `4^n` Pauli strings, and the paper's
//! authors' own tree-approach Pauli decomposition (Ref. [25]) is the classical
//! pre-processing step whose `O(n 4^n)` cost appears in Section III-C2.  This
//! module computes the decomposition `A = Σ_P c_P P` exactly, exploiting the
//! permutation-with-phases structure of Pauli strings so each coefficient costs
//! `O(2^n)` instead of `O(4^n)`.

use num_complex::Complex64;
use qls_sim::{CMatrix, Circuit, Gate};

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl PauliOp {
    /// The 2×2 matrix of the operator.
    pub fn matrix(self) -> CMatrix {
        match self {
            PauliOp::I => CMatrix::identity(2),
            PauliOp::X => Gate::X.matrix(),
            PauliOp::Y => Gate::Y.matrix(),
            PauliOp::Z => Gate::Z.matrix(),
        }
    }

    /// Character used in string labels ("IXYZ").
    pub fn symbol(self) -> char {
        match self {
            PauliOp::I => 'I',
            PauliOp::X => 'X',
            PauliOp::Y => 'Y',
            PauliOp::Z => 'Z',
        }
    }
}

/// An `n`-qubit Pauli string; `ops[q]` acts on qubit `q` (little-endian, qubit
/// 0 = least significant bit of the basis index).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// Per-qubit operators.
    pub ops: Vec<PauliOp>,
}

impl PauliString {
    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            ops: vec![PauliOp::I; n],
        }
    }

    /// Build the string from its index in `{0..4^n}` (base-4 digits, digit `q`
    /// selecting the operator on qubit `q`: 0=I, 1=X, 2=Y, 3=Z).
    pub fn from_index(n: usize, mut index: usize) -> Self {
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(match index % 4 {
                0 => PauliOp::I,
                1 => PauliOp::X,
                2 => PauliOp::Y,
                _ => PauliOp::Z,
            });
            index /= 4;
        }
        PauliString { ops }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.ops.len()
    }

    /// Number of non-identity factors (the "weight" of the string).
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|&&p| p != PauliOp::I).count()
    }

    /// Label such as "XIZY" with qubit `n-1` first (most significant).
    pub fn label(&self) -> String {
        self.ops.iter().rev().map(|p| p.symbol()).collect()
    }

    /// Bit mask of qubits carrying X or Y (the bit-flip part of the string).
    pub fn x_mask(&self) -> usize {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == PauliOp::X || p == PauliOp::Y)
            .map(|(q, _)| 1usize << q)
            .sum()
    }

    /// Bit mask of qubits carrying Z or Y (the phase-flip part of the string).
    pub fn z_mask(&self) -> usize {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == PauliOp::Z || p == PauliOp::Y)
            .map(|(q, _)| 1usize << q)
            .sum()
    }

    /// Number of Y factors.
    pub fn y_count(&self) -> usize {
        self.ops.iter().filter(|&&p| p == PauliOp::Y).count()
    }

    /// The action on a basis state: `P|k⟩ = phase(k) |k ⊕ x_mask⟩`.
    pub fn apply_to_basis(&self, k: usize) -> (usize, Complex64) {
        let x_mask = self.x_mask();
        let z_mask = self.z_mask();
        // Phase: i^{#Y} · (-1)^{popcount(k & z_mask)}.
        let mut phase = match self.y_count() % 4 {
            0 => Complex64::new(1.0, 0.0),
            1 => Complex64::new(0.0, 1.0),
            2 => Complex64::new(-1.0, 0.0),
            _ => Complex64::new(0.0, -1.0),
        };
        if (k & z_mask).count_ones() % 2 == 1 {
            phase = -phase;
        }
        (k ^ x_mask, phase)
    }

    /// The dense `2^n × 2^n` matrix of the string (little-endian ordering).
    pub fn matrix(&self) -> CMatrix {
        let n = self.num_qubits();
        let dim = 1usize << n;
        let mut m = CMatrix::zeros(dim, dim);
        for k in 0..dim {
            let (row, phase) = self.apply_to_basis(k);
            m[(row, k)] = phase;
        }
        m
    }

    /// Append the string's gates to a circuit on the given data qubits.
    pub fn append_to_circuit(&self, circuit: &mut Circuit, controls: &[usize]) {
        for (q, &p) in self.ops.iter().enumerate() {
            let gate = match p {
                PauliOp::I => continue,
                PauliOp::X => Gate::X,
                PauliOp::Y => Gate::Y,
                PauliOp::Z => Gate::Z,
            };
            if controls.is_empty() {
                circuit.gate(gate, &[q]);
            } else {
                circuit.controlled_gate(gate, &[q], controls);
            }
        }
    }
}

/// One term `c · P` of a Pauli decomposition.
#[derive(Debug, Clone)]
pub struct PauliTerm {
    /// The Pauli string.
    pub string: PauliString,
    /// Its (complex) coefficient.
    pub coefficient: Complex64,
}

/// The full decomposition `A = Σ c_P P`.
#[derive(Debug, Clone)]
pub struct PauliDecomposition {
    /// Number of qubits (`A` is `2^n × 2^n`).
    pub num_qubits: usize,
    /// Non-negligible terms, sorted by decreasing coefficient magnitude.
    pub terms: Vec<PauliTerm>,
}

impl PauliDecomposition {
    /// Decompose a complex matrix, dropping coefficients below `tolerance`.
    pub fn decompose(a: &CMatrix, tolerance: f64) -> Self {
        assert_eq!(
            a.nrows(),
            a.ncols(),
            "Pauli decomposition needs a square matrix"
        );
        let dim = a.nrows();
        assert!(dim.is_power_of_two(), "dimension must be a power of two");
        let n = dim.trailing_zeros() as usize;

        let mut terms = Vec::new();
        for index in 0..(4usize.pow(n as u32)) {
            let string = PauliString::from_index(n, index);
            // c_P = Tr(P A) / 2^n.  With P|k⟩ = phase(k)|k ⊕ x⟩ the only
            // non-zero entry in column k of P is P[k ⊕ x, k] = phase(k), so
            // Tr(P A) = Σ_k P[k ⊕ x, k] · A[k, k ⊕ x] = Σ_k phase(k) A[k, k ⊕ x].
            let mut trace = Complex64::new(0.0, 0.0);
            for k in 0..dim {
                let (col, phase) = string.apply_to_basis(k);
                trace += phase * a[(k, col)];
            }
            let coeff = trace / dim as f64;
            if coeff.norm() > tolerance {
                terms.push(PauliTerm {
                    string,
                    coefficient: coeff,
                });
            }
        }
        terms.sort_by(|a, b| {
            b.coefficient
                .norm()
                .partial_cmp(&a.coefficient.norm())
                .unwrap()
        });
        PauliDecomposition {
            num_qubits: n,
            terms,
        }
    }

    /// Decompose a real matrix (convenience wrapper).
    pub fn decompose_real(a: &qls_linalg::Matrix<f64>, tolerance: f64) -> Self {
        Self::decompose(&CMatrix::from_real(a), tolerance)
    }

    /// Decompose a real matrix given only its **nonzero entries**
    /// `(row, col, value)`, in `O(2^n · nnz)` instead of the dense path's
    /// `O(8^n)`.  Entries may arrive in any order; duplicate coordinates are
    /// summed (the same convention as `SparseMatrix::from_triplets`), so the
    /// decomposition is always that of the represented matrix.
    ///
    /// The key structural fact: a Pauli string with bit-flip mask `x` only
    /// reads the matrix entries on the "XOR diagonal" `col = row ⊕ x`, so
    /// only masks that actually occur among the given entries can carry a
    /// nonzero coefficient.  A tridiagonal matrix has just `n + 1` distinct
    /// masks and a sparse matrix at most `nnz`; for each occurring mask the
    /// `2^n` strings sharing it (I/Z on the unflipped qubits, X/Y on the
    /// flipped ones) get their traces from the stored entries alone.  The
    /// resulting terms are identical to [`PauliDecomposition::decompose`] on
    /// the densified matrix (coefficients and ordering), so structured
    /// constructors can skip the dense round-trip entirely.
    pub fn decompose_real_entries(
        n: usize,
        entries: &[(usize, usize, f64)],
        tolerance: f64,
    ) -> Self {
        let dim = 1usize << n;
        // Canonicalise first: duplicates of the same coordinate are summed
        // (in input order) and entries sorted row-major, so the represented
        // matrix — not the entry list's shape — determines the result, and
        // the per-mask summation order matches the dense path's k-ascending
        // trace loop exactly.
        let mut merged: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for &(r, c, v) in entries {
            assert!(
                r < dim && c < dim,
                "entry ({r}, {c}) out of range for n = {n}"
            );
            *merged.entry((r, c)).or_insert(0.0) += v;
        }
        // Group by XOR-diagonal mask (row-major within each mask).
        let mut by_mask: std::collections::BTreeMap<usize, Vec<(usize, f64)>> =
            std::collections::BTreeMap::new();
        for (&(r, c), &v) in &merged {
            by_mask.entry(r ^ c).or_default().push((r, v));
        }

        let i_pow = |y_count: u32| match y_count % 4 {
            0 => Complex64::new(1.0, 0.0),
            1 => Complex64::new(0.0, 1.0),
            2 => Complex64::new(-1.0, 0.0),
            _ => Complex64::new(0.0, -1.0),
        };
        // `indexed` carries the base-4 string index so the final ordering can
        // reproduce the dense path's stable sort exactly.
        let mut indexed: Vec<(usize, PauliTerm)> = Vec::new();
        for (&x_mask, ents) in &by_mask {
            // z_mask ranges over all 2^n choices: Z vs I on unflipped qubits,
            // Y vs X on flipped ones.
            for z_mask in 0..dim {
                // Σ_k phase(k)·A[k, k⊕x]: signs from the Z part; the i^{#Y}
                // unit factor multiplies the (real) signed sum exactly, so
                // the coefficient matches the dense trace bit for bit.
                let mut signed_sum = 0.0f64;
                for &(k, v) in ents {
                    if (k & z_mask).count_ones() % 2 == 1 {
                        signed_sum -= v;
                    } else {
                        signed_sum += v;
                    }
                }
                let y_count = (x_mask & z_mask).count_ones();
                let coeff = i_pow(y_count) * (signed_sum / dim as f64);
                if coeff.norm() > tolerance {
                    let mut ops = Vec::with_capacity(n);
                    let mut index = 0usize;
                    for q in 0..n {
                        let flips = x_mask >> q & 1 == 1;
                        let phases = z_mask >> q & 1 == 1;
                        let (op, digit) = match (flips, phases) {
                            (false, false) => (PauliOp::I, 0),
                            (true, false) => (PauliOp::X, 1),
                            (true, true) => (PauliOp::Y, 2),
                            (false, true) => (PauliOp::Z, 3),
                        };
                        ops.push(op);
                        index += digit << (2 * q);
                    }
                    indexed.push((
                        index,
                        PauliTerm {
                            string: PauliString { ops },
                            coefficient: coeff,
                        },
                    ));
                }
            }
        }
        // Decreasing magnitude, ties broken by string index — exactly the
        // order the dense path's stable sort over index-ascending terms
        // produces.
        indexed.sort_by(|(ia, a), (ib, b)| {
            b.coefficient
                .norm()
                .partial_cmp(&a.coefficient.norm())
                .unwrap()
                .then(ia.cmp(ib))
        });
        PauliDecomposition {
            num_qubits: n,
            terms: indexed.into_iter().map(|(_, t)| t).collect(),
        }
    }

    /// Decompose a tridiagonal matrix straight from its three diagonals
    /// (order must be a power of two).  A tridiagonal matrix touches only the
    /// `n + 1` XOR-diagonal masks `0, 1, 3, 7, …, 2^n − 1`, so this costs
    /// `O(4^n)` total instead of the dense path's `O(8^n)`.
    pub fn decompose_tridiagonal(t: &qls_linalg::TridiagonalMatrix<f64>, tolerance: f64) -> Self {
        let order = t.order();
        assert!(
            order.is_power_of_two(),
            "tridiagonal order must be a power of two"
        );
        let n = order.trailing_zeros() as usize;
        let mut entries = Vec::with_capacity(3 * order);
        for i in 0..order {
            if i > 0 {
                entries.push((i, i - 1, t.lower[i - 1]));
            }
            entries.push((i, i, t.diag[i]));
            if i + 1 < order {
                entries.push((i, i + 1, t.upper[i]));
            }
        }
        Self::decompose_real_entries(n, &entries, tolerance)
    }

    /// Decompose a CSR sparse matrix from its stored entries, in
    /// `O(2^n · nnz)` (dimension must be a power of two).
    pub fn decompose_sparse(a: &qls_linalg::SparseMatrix<f64>, tolerance: f64) -> Self {
        assert_eq!(
            a.nrows(),
            a.ncols(),
            "Pauli decomposition needs a square matrix"
        );
        assert!(
            a.nrows().is_power_of_two(),
            "dimension must be a power of two"
        );
        let n = a.nrows().trailing_zeros() as usize;
        let entries: Vec<(usize, usize, f64)> = a.iter_entries().collect();
        Self::decompose_real_entries(n, &entries, tolerance)
    }

    /// Number of retained terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The 1-norm of the coefficients, `λ = Σ|c_P|` — the sub-normalisation
    /// factor of the LCU block-encoding.
    pub fn lambda(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient.norm()).sum()
    }

    /// Reconstruct the matrix `Σ c_P P` (for verification).
    pub fn reconstruct(&self) -> CMatrix {
        let dim = 1usize << self.num_qubits;
        let mut m = CMatrix::zeros(dim, dim);
        for term in &self.terms {
            for k in 0..dim {
                let (row, phase) = term.string.apply_to_basis(k);
                m[(row, k)] += term.coefficient * phase;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::Matrix;

    #[test]
    fn single_qubit_string_matrices() {
        for (op, gate) in [
            (PauliOp::X, Gate::X),
            (PauliOp::Y, Gate::Y),
            (PauliOp::Z, Gate::Z),
        ] {
            let s = PauliString { ops: vec![op] };
            assert!(s.matrix().max_abs_diff(&gate.matrix()) < 1e-15);
        }
    }

    #[test]
    fn two_qubit_string_matches_kron() {
        // String "XZ" = X on qubit 1, Z on qubit 0 → matrix = X ⊗ Z (little-endian).
        let s = PauliString {
            ops: vec![PauliOp::Z, PauliOp::X],
        };
        let expected = Gate::X.matrix().kron(&Gate::Z.matrix());
        assert!(s.matrix().max_abs_diff(&expected) < 1e-15);
        assert_eq!(s.label(), "XZ");
    }

    #[test]
    fn string_indexing_roundtrip() {
        for idx in 0..64 {
            let s = PauliString::from_index(3, idx);
            assert_eq!(s.num_qubits(), 3);
            // Re-derive the index from the operators.
            let back: usize = s
                .ops
                .iter()
                .enumerate()
                .map(|(q, &p)| {
                    let d = match p {
                        PauliOp::I => 0,
                        PauliOp::X => 1,
                        PauliOp::Y => 2,
                        PauliOp::Z => 3,
                    };
                    d * 4usize.pow(q as u32)
                })
                .sum();
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn strings_are_unitary_and_hermitian() {
        for idx in [0usize, 5, 27, 44, 63] {
            let m = PauliString::from_index(3, idx).matrix();
            assert!(m.is_unitary(1e-14));
            assert!(m.is_hermitian(1e-14));
        }
    }

    #[test]
    fn decomposition_of_identity() {
        let a = Matrix::<f64>::identity(4);
        let d = PauliDecomposition::decompose_real(&a, 1e-12);
        assert_eq!(d.num_terms(), 1);
        assert_eq!(d.terms[0].string.weight(), 0);
        assert!((d.terms[0].coefficient.re - 1.0).abs() < 1e-14);
        assert!((d.lambda() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn decomposition_reconstructs_random_matrix() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(91);
        let a = Matrix::from_fn(8, 8, |_, _| rng.gen_range(-1.0..1.0));
        let d = PauliDecomposition::decompose_real(&a, 0.0);
        let rec = d.reconstruct();
        assert!(rec.max_abs_diff(&CMatrix::from_real(&a)) < 1e-12);
    }

    #[test]
    fn decomposition_reconstructs_complex_matrix() {
        let a = CMatrix::from_fn(4, 4, |i, j| {
            Complex64::new(i as f64 - j as f64, (i * j) as f64 * 0.1)
        });
        let d = PauliDecomposition::decompose(&a, 0.0);
        assert!(d.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn known_decomposition_of_symmetric_2x2() {
        // [[a, b], [b, c]] = ((a+c)/2) I + b X + ((a-c)/2) Z.
        let a = Matrix::from_f64_slice(2, 2, &[3.0, 1.5, 1.5, -1.0]);
        let d = PauliDecomposition::decompose_real(&a, 1e-12);
        assert_eq!(d.num_terms(), 3);
        let coeff_of = |label: &str| -> f64 {
            d.terms
                .iter()
                .find(|t| t.string.label() == label)
                .map(|t| t.coefficient.re)
                .unwrap_or(0.0)
        };
        assert!((coeff_of("I") - 1.0).abs() < 1e-14);
        assert!((coeff_of("X") - 1.5).abs() < 1e-14);
        assert!((coeff_of("Z") - 2.0).abs() < 1e-14);
    }

    #[test]
    fn sparse_matrix_has_fewer_terms_with_tolerance() {
        let t = qls_linalg::poisson_1d::<f64>(8, false).to_dense();
        let all = PauliDecomposition::decompose_real(&t, 0.0);
        let trimmed = PauliDecomposition::decompose_real(&t, 1e-12);
        assert!(trimmed.num_terms() <= all.num_terms());
        // Reconstruction of the trimmed decomposition is still exact to 1e-10.
        assert!(trimmed.reconstruct().max_abs_diff(&CMatrix::from_real(&t)) < 1e-10);
    }

    #[test]
    fn entries_decomposition_matches_dense_on_tridiagonal() {
        // A non-Toeplitz, nonsymmetric tridiagonal: the structured O(4^n)
        // path must reproduce the dense O(8^n) decomposition exactly —
        // same terms, same coefficients, same order.
        let t = qls_linalg::TridiagonalMatrix::new(
            vec![0.3, -1.1, 0.7, 2.0, -0.4, 0.9, 1.3],
            vec![2.0, -1.5, 3.0, 0.25, 1.0, -2.25, 0.5, 1.75],
            vec![-0.8, 0.6, 1.2, -0.1, 0.55, -1.9, 0.05],
        );
        let dense = PauliDecomposition::decompose_real(&t.to_dense(), 1e-13);
        let structured = PauliDecomposition::decompose_tridiagonal(&t, 1e-13);
        assert_eq!(dense.num_terms(), structured.num_terms());
        for (d, s) in dense.terms.iter().zip(&structured.terms) {
            assert_eq!(d.string, s.string, "term order must match the dense path");
            assert_eq!(d.coefficient, s.coefficient);
        }
    }

    #[test]
    fn entries_decomposition_merges_duplicates_and_ignores_input_order() {
        // Duplicate coordinates sum; shuffled input decomposes the same
        // matrix as the canonical row-major entry list.
        let duplicated = PauliDecomposition::decompose_real_entries(
            1,
            &[(1, 0, 0.25), (0, 1, 0.5), (0, 1, 0.5), (1, 0, 0.25)],
            1e-14,
        );
        let canonical =
            PauliDecomposition::decompose_real_entries(1, &[(0, 1, 1.0), (1, 0, 0.5)], 1e-14);
        assert_eq!(duplicated.num_terms(), canonical.num_terms());
        for (d, c) in duplicated.terms.iter().zip(&canonical.terms) {
            assert_eq!(d.string, c.string);
            assert_eq!(d.coefficient, c.coefficient);
        }
    }

    #[test]
    fn entries_decomposition_matches_dense_on_random_sparse() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(93);
        let a = Matrix::from_fn(8, 8, |_, _| {
            if rng.gen_range(0.0..1.0) < 0.3 {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let sparse = qls_linalg::SparseMatrix::from_dense(&a);
        let dense = PauliDecomposition::decompose_real(&a, 1e-13);
        let structured = PauliDecomposition::decompose_sparse(&sparse, 1e-13);
        assert_eq!(dense.num_terms(), structured.num_terms());
        for (d, s) in dense.terms.iter().zip(&structured.terms) {
            assert_eq!(d.string, s.string);
            assert_eq!(d.coefficient, s.coefficient);
        }
        // And the reconstruction is exact.
        assert!(
            structured
                .reconstruct()
                .max_abs_diff(&CMatrix::from_real(&a))
                < 1e-12
        );
    }

    #[test]
    fn lambda_bounds_spectral_norm() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(92);
        let a = Matrix::from_fn(8, 8, |_, _| rng.gen_range(-1.0..1.0));
        let d = PauliDecomposition::decompose_real(&a, 1e-14);
        let norm = qls_linalg::Svd::new(&a).norm2();
        assert!(
            d.lambda() >= norm - 1e-10,
            "lambda {} < ||A|| {}",
            d.lambda(),
            norm
        );
    }

    #[test]
    fn append_to_circuit_matches_matrix() {
        let s = PauliString {
            ops: vec![PauliOp::X, PauliOp::Y, PauliOp::Z],
        };
        let mut circ = qls_sim::Circuit::new(3);
        s.append_to_circuit(&mut circ, &[]);
        let u = qls_sim::circuit_unitary(&circ);
        assert!(u.max_abs_diff(&s.matrix()) < 1e-13);
    }
}
