//! FABLE-style block-encoding with threshold compression.
//!
//! The Fast Approximate BLock-Encoding of Camps & Van Beeumen (the paper's
//! Ref. [10]) encodes an arbitrary `2^n × 2^n` matrix using `n` extra "row"
//! qubits and one flag qubit: Hadamards spread the row register over all
//! indices, one multiplexed rotation per matrix entry writes `a_ij` into the
//! flag amplitude, and a register swap plus the inverse Hadamards collect the
//! result.  Entries below a compression threshold are simply skipped, trading
//! a controlled approximation error for a smaller circuit — the property that
//! gives FABLE its "approximate" name and that the paper highlights as a way
//! to cut the `O(4^n)` gate cost of dense encodings.
//!
//! The multiplexed rotations are realised here as one multi-controlled Ry per
//! retained entry (`2n` controls).  This is gate-count-pessimistic compared to
//! the Gray-code decomposition of the original FABLE paper but functionally
//! identical; the resource model in `qls-core` uses the published asymptotic
//! counts.

use crate::block_encoding::BlockEncoding;
use qls_linalg::{Matrix, SparseMatrix};
use qls_sim::{Circuit, Gate};

/// FABLE-style block-encoding of a real matrix.
#[derive(Debug, Clone)]
pub struct FableBlockEncoding {
    circuit: Circuit,
    num_data_qubits: usize,
    num_ancilla_qubits: usize,
    alpha: f64,
    retained_entries: usize,
    dropped_entries: usize,
}

impl FableBlockEncoding {
    /// Build the encoding of `A`, skipping entries with `|a_ij| < threshold ·
    /// max|a_ij|` (pass `threshold = 0.0` for the exact encoding).
    pub fn new(a: &Matrix<f64>, threshold: f64) -> Self {
        assert!(a.is_square(), "FABLE needs a square matrix");
        let dim = a.nrows();
        let max_abs = a.norm_max();
        Self::from_entries(
            dim,
            max_abs,
            threshold,
            (0..dim).flat_map(|i| a.row(i).iter().enumerate().map(move |(j, &v)| (i, j, v))),
        )
    }

    /// Build the encoding of a CSR sparse matrix **from its stored entries
    /// only**: circuit construction walks the O(nnz) nonzeros instead of
    /// scanning all `N²` coordinates, which is where FABLE's per-entry
    /// multiplexed rotations actually come from.  The resulting circuit is
    /// identical to `FableBlockEncoding::new(&a.to_dense(), threshold)` —
    /// structural zeros never produced a rotation in the first place.
    pub fn from_sparse(a: &SparseMatrix<f64>, threshold: f64) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "FABLE needs a square matrix");
        let max_abs = a
            .iter_entries()
            .fold(0.0f64, |acc, (_, _, v)| acc.max(v.abs()));
        Self::from_entries(a.nrows(), max_abs, threshold, a.iter_entries())
    }

    /// Shared builder: one multiplexed rotation per retained entry, entries
    /// visited in the caller's (row-major) order.  `max_abs` must be the
    /// maximum absolute entry of the **full** matrix.
    fn from_entries(
        dim: usize,
        max_abs: f64,
        threshold: f64,
        entries: impl Iterator<Item = (usize, usize, f64)>,
    ) -> Self {
        assert!(dim.is_power_of_two(), "matrix dimension must be 2^n");
        let n = dim.trailing_zeros() as usize;

        // Scale so that all entries are in [-1, 1].
        let max_abs = max_abs.max(1e-300);
        let scale = if max_abs > 1.0 { max_abs } else { 1.0 };
        // Sub-normalisation: the encoded block is A / (2^n * scale).
        let alpha = (dim as f64) * scale;

        let total = 2 * n + 1;
        let flag = 2 * n;
        let col_qubits: Vec<usize> = (0..n).collect();
        let row_qubits: Vec<usize> = (n..2 * n).collect();

        let mut circuit = Circuit::new(total);
        // Spread the row register.
        for &q in &row_qubits {
            circuit.h(q);
        }

        // One multiplexed rotation per retained entry.
        let mut retained = 0usize;
        let cutoff = threshold * max_abs;
        for (i, j, value) in entries {
            let entry = value / scale;
            if value.abs() <= cutoff || entry == 0.0 {
                continue;
            }
            retained += 1;
            let theta = 2.0 * entry.clamp(-1.0, 1.0).asin();
            // Controls: row register holds i, column register holds j.
            let mut controls: Vec<usize> = Vec::with_capacity(2 * n);
            let mut zero_controls: Vec<usize> = Vec::new();
            for (bit, &q) in row_qubits.iter().enumerate() {
                controls.push(q);
                if i & (1 << bit) == 0 {
                    zero_controls.push(q);
                }
            }
            for (bit, &q) in col_qubits.iter().enumerate() {
                controls.push(q);
                if j & (1 << bit) == 0 {
                    zero_controls.push(q);
                }
            }
            for &q in &zero_controls {
                circuit.x(q);
            }
            circuit.controlled_gate(Gate::Ry(theta), &[flag], &controls);
            for &q in &zero_controls {
                circuit.x(q);
            }
        }

        // Route the selected row into the data register and fold the flag so
        // that the "good" branch is |0⟩ on every ancilla.
        for q in 0..n {
            circuit.swap(q, q + n);
        }
        for &q in &row_qubits {
            circuit.h(q);
        }
        circuit.x(flag);

        FableBlockEncoding {
            circuit,
            num_data_qubits: n,
            num_ancilla_qubits: n + 1,
            alpha,
            retained_entries: retained,
            // Entries without a rotation — whether filtered here or never
            // stored at all — count as dropped: retained + dropped = N².
            dropped_entries: dim * dim - retained,
        }
    }

    /// Build the encoding of the adjoint `A†`.
    pub fn of_adjoint(a: &Matrix<f64>, threshold: f64) -> Self {
        Self::new(&a.transpose(), threshold)
    }

    /// Build the encoding of the adjoint of a CSR sparse matrix.
    pub fn of_sparse_adjoint(a: &SparseMatrix<f64>, threshold: f64) -> Self {
        Self::from_sparse(&a.transpose(), threshold)
    }

    /// Number of matrix entries that produced a rotation.
    pub fn retained_entries(&self) -> usize {
        self.retained_entries
    }

    /// Number of matrix entries skipped by the compression threshold.
    pub fn dropped_entries(&self) -> usize {
        self.dropped_entries
    }
}

impl BlockEncoding for FableBlockEncoding {
    fn num_data_qubits(&self) -> usize {
        self.num_data_qubits
    }
    fn num_ancilla_qubits(&self) -> usize {
        self.num_ancilla_qubits
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }
    fn circuit(&self) -> &Circuit {
        &self.circuit
    }
    fn method_name(&self) -> &'static str {
        "FABLE (threshold-compressed)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_encoding::{verify_block_encoding, BlockEncodingExt};
    use qls_linalg::poisson_1d;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn encodes_2x2_matrix_exactly() {
        let a = Matrix::from_f64_slice(2, 2, &[0.5, -0.25, 0.75, 0.1]);
        let be = FableBlockEncoding::new(&a, 0.0);
        assert_eq!(be.num_data_qubits(), 1);
        assert_eq!(be.num_ancilla_qubits(), 2);
        assert!((be.alpha() - 2.0).abs() < 1e-14);
        assert!(
            verify_block_encoding(&be, &a) < 1e-11,
            "error {}",
            be.encoding_error(&a)
        );
    }

    #[test]
    fn encodes_4x4_random_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(121);
        let a = Matrix::from_fn(4, 4, |_, _| rng.gen_range(-1.0..1.0));
        let be = FableBlockEncoding::new(&a, 0.0);
        assert!((be.alpha() - 4.0).abs() < 1e-14);
        assert!(
            verify_block_encoding(&be, &a) < 1e-10,
            "error {}",
            be.encoding_error(&a)
        );
        assert_eq!(be.retained_entries() + be.dropped_entries(), 16);
    }

    #[test]
    fn rescales_matrices_with_large_entries() {
        let a = Matrix::from_f64_slice(2, 2, &[3.0, 0.0, 0.0, -2.0]);
        let be = FableBlockEncoding::new(&a, 0.0);
        // alpha = 2^n * max|a_ij| = 2 * 3.
        assert!((be.alpha() - 6.0).abs() < 1e-12);
        assert!(verify_block_encoding(&be, &a) < 1e-11);
    }

    #[test]
    fn sparse_matrix_skips_zero_entries() {
        let t = poisson_1d::<f64>(4, false).to_dense();
        let be = FableBlockEncoding::new(&t, 0.0);
        // The 4x4 Poisson matrix has 10 non-zero entries out of 16.
        assert_eq!(be.retained_entries(), 10);
        assert_eq!(be.dropped_entries(), 6);
        assert!(verify_block_encoding(&be, &t) < 1e-10);
    }

    #[test]
    fn compression_threshold_trades_gates_for_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(122);
        // A matrix with many small entries and a few large ones.
        let a = Matrix::from_fn(4, 4, |i, j| {
            if i == j {
                0.9
            } else {
                rng.gen_range(-0.05..0.05)
            }
        });
        let exact = FableBlockEncoding::new(&a, 0.0);
        let compressed = FableBlockEncoding::new(&a, 0.1);
        assert!(compressed.retained_entries() < exact.retained_entries());
        assert!(compressed.circuit().gate_count() < exact.circuit().gate_count());
        // The exact one is essentially error-free, the compressed one has a
        // small controlled error.
        assert!(exact.encoding_error(&a) < 1e-10);
        let err = compressed.encoding_error(&a);
        assert!(err > 0.0 && err < 0.1);
    }

    #[test]
    fn sparse_constructor_builds_the_same_circuit_as_dense() {
        let t = poisson_1d::<f64>(8, false);
        let dense = FableBlockEncoding::new(&t.to_dense(), 0.0);
        let sparse = FableBlockEncoding::from_sparse(&t.to_sparse(), 0.0);
        assert_eq!(sparse.retained_entries(), dense.retained_entries());
        assert_eq!(sparse.dropped_entries(), dense.dropped_entries());
        assert_eq!(sparse.alpha(), dense.alpha());
        assert_eq!(
            sparse.circuit().gate_count(),
            dense.circuit().gate_count(),
            "CSR-driven construction must emit the identical rotation list"
        );
        assert!(verify_block_encoding(&sparse, &t.to_dense()) < 1e-10);
    }

    #[test]
    fn sparse_adjoint_encodes_transpose() {
        let a = Matrix::from_f64_slice(4, 4, &{
            let mut v = vec![0.0; 16];
            v[1] = 0.9;
            v[4] = -0.4;
            v[10] = 0.3;
            v[15] = 0.7;
            v
        });
        let s = qls_linalg::SparseMatrix::from_dense(&a);
        let be = FableBlockEncoding::of_sparse_adjoint(&s, 0.0);
        assert!(verify_block_encoding(&be, &a.transpose()) < 1e-10);
    }

    #[test]
    fn adjoint_encoding_encodes_transpose() {
        let a = Matrix::from_f64_slice(2, 2, &[0.1, 0.9, -0.4, 0.3]);
        let be = FableBlockEncoding::of_adjoint(&a, 0.0);
        assert!(verify_block_encoding(&be, &a.transpose()) < 1e-11);
    }

    #[test]
    fn apply_matches_scaled_matvec() {
        use num_complex::Complex64;
        let a = Matrix::from_f64_slice(2, 2, &[0.4, -0.2, 0.3, 0.6]);
        let be = FableBlockEncoding::new(&a, 0.0);
        let v = vec![Complex64::new(0.6, 0.0), Complex64::new(0.8, 0.0)];
        let out = be.apply(&v);
        let expected = a.matvec(&qls_linalg::Vector::from_f64_slice(&[0.6, 0.8]));
        for i in 0..2 {
            assert!((out[i].re * be.alpha() - expected[i]).abs() < 1e-10);
        }
    }
}
