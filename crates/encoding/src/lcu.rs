//! Linear-Combination-of-Unitaries (LCU) block-encoding.
//!
//! The "versatile approach to encode matrices" of Section II-A1 of the paper
//! (Refs. [12], [25]): write `A = Σ_j c_j P_j` over Pauli strings, prepare the
//! ancilla state `|c⟩ ∝ Σ_j √|c_j| |j⟩` (PREPARE), apply `P_j` to the data
//! register controlled on the ancilla value `j` (SELECT, with the phase of
//! `c_j` folded into a controlled global phase), and un-prepare the ancillas.
//! The resulting unitary block-encodes `A/λ` with `λ = Σ_j |c_j|` using
//! `⌈log₂ K⌉` ancilla qubits for `K` retained terms.

use crate::block_encoding::BlockEncoding;
use crate::pauli::PauliDecomposition;
use crate::state_prep::StatePreparation;
use qls_linalg::{Matrix, Vector};
use qls_sim::{Circuit, Gate};

/// LCU block-encoding over the Pauli decomposition of a real matrix.
#[derive(Debug, Clone)]
pub struct LcuBlockEncoding {
    circuit: Circuit,
    num_data_qubits: usize,
    num_ancilla_qubits: usize,
    alpha: f64,
    num_terms: usize,
}

impl LcuBlockEncoding {
    /// Build the LCU block-encoding of `A`, dropping Pauli terms with
    /// coefficient magnitude below `tolerance`.
    pub fn new(a: &Matrix<f64>, tolerance: f64) -> Self {
        let decomposition = PauliDecomposition::decompose_real(a, tolerance);
        Self::from_decomposition(&decomposition)
    }

    /// Build the LCU block-encoding of the **adjoint** `A†` (the operator the
    /// QSVT linear solver needs).
    pub fn of_adjoint(a: &Matrix<f64>, tolerance: f64) -> Self {
        Self::new(&a.transpose(), tolerance)
    }

    /// Build the LCU block-encoding of a tridiagonal matrix straight from its
    /// three diagonals — no dense round-trip; the Pauli decomposition runs on
    /// the `n + 1` occupied XOR diagonals only
    /// (see [`PauliDecomposition::decompose_tridiagonal`]).
    pub fn of_tridiagonal(t: &qls_linalg::TridiagonalMatrix<f64>, tolerance: f64) -> Self {
        Self::from_decomposition(&PauliDecomposition::decompose_tridiagonal(t, tolerance))
    }

    /// Build the LCU block-encoding of a CSR sparse matrix from its stored
    /// entries, in `O(2^n · nnz)` classical preprocessing
    /// (see [`PauliDecomposition::decompose_sparse`]).
    pub fn of_sparse(a: &qls_linalg::SparseMatrix<f64>, tolerance: f64) -> Self {
        Self::from_decomposition(&PauliDecomposition::decompose_sparse(a, tolerance))
    }

    /// Build from an existing Pauli decomposition.
    pub fn from_decomposition(decomposition: &PauliDecomposition) -> Self {
        let n = decomposition.num_qubits;
        let k = decomposition.num_terms().max(1);
        let num_ancillas = if k == 1 {
            1
        } else {
            (k as f64).log2().ceil() as usize
        };
        let lambda = decomposition.lambda();
        assert!(lambda > 0.0, "cannot block-encode the zero matrix with LCU");

        // PREPARE: ancilla state with amplitudes sqrt(|c_j| / lambda).
        let mut prep_amplitudes = vec![0.0f64; 1 << num_ancillas];
        for (j, term) in decomposition.terms.iter().enumerate() {
            prep_amplitudes[j] = (term.coefficient.norm() / lambda).sqrt();
        }
        let prep = StatePreparation::new(&Vector::from_f64_slice(&prep_amplitudes));
        // The preparation circuit acts on its own `num_ancillas` qubits; remap
        // them to the high qubits n..n+a of the full register.
        let total = n + num_ancillas;
        let prep_circuit = prep.circuit().remapped(total, |q| q + n);

        let mut circuit = Circuit::new(total);
        circuit.append(&prep_circuit);

        // SELECT: controlled Pauli strings (controls = ancilla pattern j).
        let ancilla_qubits: Vec<usize> = (n..total).collect();
        for (j, term) in decomposition.terms.iter().enumerate() {
            // 0-controls via X conjugation.
            let zero_ancillas: Vec<usize> = ancilla_qubits
                .iter()
                .enumerate()
                .filter(|(bit, _)| j & (1 << bit) == 0)
                .map(|(_, &q)| q)
                .collect();
            for &q in &zero_ancillas {
                circuit.x(q);
            }
            term.string.append_to_circuit(&mut circuit, &ancilla_qubits);
            // Phase of the coefficient (π for negative real coefficients,
            // ±π/2 for purely imaginary ones, …) applied as a controlled
            // global phase on the data register.
            let phase = term.coefficient.arg();
            if phase.abs() > 1e-15 {
                circuit.controlled_gate(Gate::GlobalPhase(phase), &[0], &ancilla_qubits);
            }
            for &q in &zero_ancillas {
                circuit.x(q);
            }
        }

        // PREPARE†.
        circuit.append(&prep_circuit.adjoint());

        LcuBlockEncoding {
            circuit,
            num_data_qubits: n,
            num_ancilla_qubits: num_ancillas,
            alpha: lambda,
            num_terms: decomposition.num_terms(),
        }
    }

    /// Number of retained Pauli terms.
    pub fn num_terms(&self) -> usize {
        self.num_terms
    }
}

impl BlockEncoding for LcuBlockEncoding {
    fn num_data_qubits(&self) -> usize {
        self.num_data_qubits
    }
    fn num_ancilla_qubits(&self) -> usize {
        self.num_ancilla_qubits
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }
    fn circuit(&self) -> &Circuit {
        &self.circuit
    }
    fn method_name(&self) -> &'static str {
        "LCU over the Pauli decomposition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_encoding::{verify_block_encoding, BlockEncodingExt};
    use qls_linalg::generate::{
        random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution,
    };
    use qls_linalg::poisson_1d;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn encodes_single_pauli_matrix() {
        // A = X: one term, one ancilla, lambda = 1.
        let x = Matrix::from_f64_slice(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let be = LcuBlockEncoding::new(&x, 1e-12);
        assert_eq!(be.num_terms(), 1);
        assert!((be.alpha() - 1.0).abs() < 1e-14);
        assert!(verify_block_encoding(&be, &x) < 1e-12);
    }

    #[test]
    fn encodes_2x2_symmetric_matrix() {
        let a = Matrix::from_f64_slice(2, 2, &[1.0, 0.5, 0.5, -0.25]);
        let be = LcuBlockEncoding::new(&a, 1e-12);
        assert!(
            verify_block_encoding(&be, &a) < 1e-11,
            "error {}",
            be.encoding_error(&a)
        );
        // lambda equals the coefficient 1-norm of the decomposition.
        assert!(be.alpha() >= qls_linalg::Svd::new(&a).norm2() - 1e-12);
    }

    #[test]
    fn encodes_nonsymmetric_matrix_with_negative_coefficients() {
        let a = Matrix::from_f64_slice(2, 2, &[0.3, -0.9, 0.4, -0.1]);
        let be = LcuBlockEncoding::new(&a, 1e-12);
        assert!(
            verify_block_encoding(&be, &a) < 1e-11,
            "error {}",
            be.encoding_error(&a)
        );
    }

    #[test]
    fn encodes_4x4_poisson_matrix() {
        let t = poisson_1d::<f64>(4, false).to_dense();
        let be = LcuBlockEncoding::new(&t, 1e-12);
        assert_eq!(be.num_data_qubits(), 2);
        assert!(
            verify_block_encoding(&be, &t) < 1e-10,
            "error {}",
            be.encoding_error(&t)
        );
    }

    #[test]
    fn encodes_random_8x8_matrix() {
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        let a = random_matrix_with_cond(
            8,
            10.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let be = LcuBlockEncoding::new(&a, 1e-12);
        assert_eq!(be.num_data_qubits(), 3);
        assert!(
            verify_block_encoding(&be, &a) < 1e-9,
            "error {}",
            be.encoding_error(&a)
        );
    }

    #[test]
    fn adjoint_encoding_encodes_transpose() {
        let a = Matrix::from_f64_slice(2, 2, &[0.2, 0.8, -0.3, 0.5]);
        let be = LcuBlockEncoding::of_adjoint(&a, 1e-12);
        assert!(verify_block_encoding(&be, &a.transpose()) < 1e-11);
    }

    #[test]
    fn tolerance_reduces_term_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(112);
        let a = random_matrix_with_cond(
            8,
            10.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let exact = LcuBlockEncoding::new(&a, 0.0);
        let trimmed = LcuBlockEncoding::new(&a, 0.05);
        assert!(trimmed.num_terms() < exact.num_terms());
        // The trimmed encoding is still a reasonable approximation.
        assert!(trimmed.encoding_error(&a) < 0.05 * exact.num_terms() as f64);
    }

    #[test]
    fn apply_matches_matrix_action() {
        use num_complex::Complex64;
        let a = Matrix::from_f64_slice(2, 2, &[0.6, 0.2, -0.1, 0.4]);
        let be = LcuBlockEncoding::new(&a, 1e-12);
        let v = vec![Complex64::new(0.8, 0.0), Complex64::new(0.6, 0.0)];
        let out = be.apply(&v);
        let expected = a.matvec(&Vector::from_f64_slice(&[0.8, 0.6]));
        for i in 0..2 {
            assert!((out[i].re * be.alpha() - expected[i]).abs() < 1e-11);
        }
    }
}
