//! Compile-once execution engine for block-encodings.
//!
//! The [`BlockEncodingExt`](crate::block_encoding::BlockEncodingExt)
//! convenience methods re-walk (and, for the adjoint, re-derive) the encoding
//! circuit on every call — fine for a one-off verification, wasteful for the
//! paper's actual access pattern where the matrix is fixed and the encoding
//! is applied over and over.  [`BlockEncodingExecutor`] captures everything
//! per-call work can be hoisted out of, exactly once at construction:
//!
//! * the forward circuit compiled into a
//!   [`QuantumExecutor`](qls_sim::QuantumExecutor);
//! * the **adjoint** circuit derived *and* compiled (the `Ext` path rebuilds
//!   the adjoint gate list per call);
//! * the ancilla index list used for post-selection.
//!
//! Application is normalisation-free: the block action `v ↦ (A/α)v` is
//! linear, so the input is used as-is (no normalise/renormalise round trip).
//! [`BlockEncodingExecutor::apply_batch`] applies the one compiled circuit to
//! many inputs with the executor's coarse-grained batch fan-out.
//!
//! Both engines run the simulator's circuit-optimizer pass by default
//! (`qls_sim::fuse`: gate fusion + diagonal merging), so structured
//! encodings with long gate lists (LCU, FABLE, tridiagonal) execute as a
//! handful of dense sweeps; [`BlockEncodingExecutor::with_opt_level`] retains
//! the unoptimized one-op-per-gate form as the equivalence oracle.

use crate::block_encoding::BlockEncoding;
use num_complex::Complex64;
use qls_sim::{ExecMode, OptLevel, QuantumExecutor, StateVector};

/// A block-encoding compiled once (forward and adjoint) for repeated and
/// batched application.
#[derive(Debug, Clone)]
pub struct BlockEncodingExecutor {
    forward: QuantumExecutor,
    adjoint: QuantumExecutor,
    num_data_qubits: usize,
    num_ancilla_qubits: usize,
    alpha: f64,
    /// Ancilla qubit indices (`n..n+a`), precomputed for post-selection.
    ancillas: Vec<usize>,
}

impl BlockEncodingExecutor {
    /// Compile `be`'s circuit and its adjoint exactly once, at the default
    /// optimization level (gate fusion on, [`OptLevel::Fuse`]).
    pub fn new<B: BlockEncoding + ?Sized>(be: &B) -> Self {
        Self::with_opt_level(be, OptLevel::default())
    }

    /// [`BlockEncodingExecutor::new`] at an explicit [`OptLevel`]
    /// (`OptLevel::None` keeps the compiled form one-op-per-gate — the
    /// unoptimized oracle/baseline).
    pub fn with_opt_level<B: BlockEncoding + ?Sized>(be: &B, opt_level: OptLevel) -> Self {
        Self::with_exec_mode(be, opt_level, ExecMode::Flat)
    }

    /// [`BlockEncodingExecutor::with_opt_level`] at an explicit
    /// [`ExecMode`]: `ExecMode::Sharded` runs both compiled circuits
    /// (forward and adjoint) through the sharded register engine
    /// (`qls_sim::shard`), with fusion biased toward low-qubit support to
    /// minimize exchange rounds.
    pub fn with_exec_mode<B: BlockEncoding + ?Sized>(
        be: &B,
        opt_level: OptLevel,
        mode: ExecMode,
    ) -> Self {
        let n = be.num_data_qubits();
        let total = be.total_qubits();
        BlockEncodingExecutor {
            forward: QuantumExecutor::with_exec_mode(be.circuit(), opt_level, mode),
            adjoint: QuantumExecutor::with_exec_mode(&be.circuit().adjoint(), opt_level, mode),
            num_data_qubits: n,
            num_ancilla_qubits: be.num_ancilla_qubits(),
            alpha: be.alpha(),
            ancillas: (n..total).collect(),
        }
    }

    /// The execution mode of the compiled engines.
    pub fn exec_mode(&self) -> ExecMode {
        self.forward.exec_mode()
    }

    /// Number of data qubits `n`.
    pub fn num_data_qubits(&self) -> usize {
        self.num_data_qubits
    }

    /// Number of ancilla qubits `a`.
    pub fn num_ancilla_qubits(&self) -> usize {
        self.num_ancilla_qubits
    }

    /// The sub-normalisation `α` with `(⟨0|U|0⟩) = A/α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total qubits of the compiled circuit.
    pub fn total_qubits(&self) -> usize {
        self.num_data_qubits + self.num_ancilla_qubits
    }

    /// Embed a data-register vector into the full register (ancillas `|0⟩`).
    fn embed(&self, data: &[Complex64]) -> StateVector {
        assert_eq!(
            data.len(),
            1usize << self.num_data_qubits,
            "data vector dimension mismatch"
        );
        crate::block_encoding::embed_data(data, self.total_qubits())
    }

    /// Project the ancillas of an executed register back onto `|0⟩` and
    /// return the data block.
    fn project(&self, mut state: StateVector) -> Vec<Complex64> {
        crate::block_encoding::project_data(&mut state, self.num_data_qubits, &self.ancillas)
    }

    /// Apply the raw block action `v ↦ (A/α)v` (linear, no normalisation).
    pub fn apply(&self, data: &[Complex64]) -> Vec<Complex64> {
        let mut state = self.embed(data);
        self.forward.run_in_place(&mut state);
        self.project(state)
    }

    /// Apply the adjoint block `v ↦ (A†/α)v` through the pre-compiled adjoint
    /// circuit.
    pub fn apply_adjoint(&self, data: &[Complex64]) -> Vec<Complex64> {
        let mut state = self.embed(data);
        self.adjoint.run_in_place(&mut state);
        self.project(state)
    }

    /// Apply `v ↦ (A/α)v` to every input, fanning out across the batch (see
    /// [`QuantumExecutor::run_batch`]).  Results are identical to mapping
    /// [`BlockEncodingExecutor::apply`] over the inputs.
    pub fn apply_batch(&self, inputs: &[Vec<Complex64>]) -> Vec<Vec<Complex64>> {
        let mut states: Vec<StateVector> = inputs.iter().map(|v| self.embed(v)).collect();
        self.forward.run_batch(&mut states);
        states.into_iter().map(|s| self.project(s)).collect()
    }

    /// Success probability of post-selecting the ancillas on `|0⟩` when the
    /// data register holds `ψ`: `‖(A/α)ψ‖² / ‖ψ‖²`.
    pub fn success_probability(&self, data: &[Complex64]) -> f64 {
        let norm2: f64 = data.iter().map(|a| a.norm_sqr()).sum();
        if norm2 == 0.0 {
            return 0.0;
        }
        let out = self.apply(data);
        out.iter().map(|a| a.norm_sqr()).sum::<f64>() / norm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_encoding::BlockEncodingExt;
    use crate::dilation::DilationBlockEncoding;
    use qls_linalg::Matrix;
    use qls_sim::circuit_compile_count;

    fn test_encoding() -> DilationBlockEncoding {
        let a = Matrix::from_f64_slice(
            4,
            4,
            &[
                0.31, -0.12, 0.05, 0.2, //
                0.07, 0.44, -0.3, 0.01, //
                -0.2, 0.15, 0.25, 0.09, //
                0.11, -0.04, 0.18, 0.36,
            ],
        );
        DilationBlockEncoding::new(&a, 1.0)
    }

    #[test]
    fn engine_matches_ext_apply() {
        let be = test_encoding();
        let engine = BlockEncodingExecutor::new(&be);
        let v: Vec<Complex64> = (0..4)
            .map(|i| Complex64::new(0.3 * i as f64 - 0.4, 0.1))
            .collect();
        let via_engine = engine.apply(&v);
        let via_ext = be.apply(&v);
        for (x, y) in via_engine.iter().zip(&via_ext) {
            assert!((x - y).norm() < 1e-12);
        }
        let adj_engine = engine.apply_adjoint(&v);
        let adj_ext = be.apply_adjoint(&v);
        for (x, y) in adj_engine.iter().zip(&adj_ext) {
            assert!((x - y).norm() < 1e-12);
        }
    }

    #[test]
    fn engine_compiles_once_across_many_applies() {
        let be = test_encoding();
        let engine = BlockEncodingExecutor::new(&be);
        let inputs: Vec<Vec<Complex64>> = (0..5)
            .map(|k| {
                (0..4)
                    .map(|i| Complex64::new((i + k) as f64 * 0.1, 0.0))
                    .collect()
            })
            .collect();
        let before = circuit_compile_count();
        for v in &inputs {
            let _ = engine.apply(v);
            let _ = engine.apply_adjoint(v);
        }
        let batched = engine.apply_batch(&inputs);
        assert_eq!(
            circuit_compile_count(),
            before,
            "apply/apply_batch must not recompile"
        );
        for (b, v) in batched.iter().zip(&inputs) {
            let single = engine.apply(v);
            for (x, y) in b.iter().zip(&single) {
                assert!((x - y).norm() < 1e-14);
            }
        }
    }

    #[test]
    fn fused_engine_matches_unoptimized_engine_on_gate_level_encoding() {
        // The LCU encoding has a real multi-gate circuit, so fusion actually
        // rewrites it; both engines must agree to 1e-12 on the block action.
        let a = Matrix::from_f64_slice(
            4,
            4,
            &[
                0.3, -0.1, 0.0, 0.2, 0.1, 0.4, -0.2, 0.0, 0.0, -0.2, 0.25, 0.1, 0.2, 0.0, 0.1, 0.35,
            ],
        );
        let be = crate::lcu::LcuBlockEncoding::new(&a, 1e-13);
        let fused = BlockEncodingExecutor::new(&be);
        let raw = BlockEncodingExecutor::with_opt_level(&be, qls_sim::OptLevel::None);
        let v: Vec<Complex64> = (0..4)
            .map(|i| Complex64::new(0.25 * i as f64 - 0.3, 0.1 * i as f64))
            .collect();
        for (x, y) in fused.apply(&v).iter().zip(&raw.apply(&v)) {
            assert!((x - y).norm() < 1e-12);
        }
        for (x, y) in fused.apply_adjoint(&v).iter().zip(&raw.apply_adjoint(&v)) {
            assert!((x - y).norm() < 1e-12);
        }
    }

    #[test]
    fn success_probability_matches_ext() {
        let be = test_encoding();
        let engine = BlockEncodingExecutor::new(&be);
        let v = vec![
            Complex64::new(1.0, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(0.0, 0.0),
            Complex64::new(0.0, 0.0),
        ];
        assert!((engine.success_probability(&v) - be.success_probability(&v)).abs() < 1e-12);
        assert_eq!(
            engine.success_probability(&[Complex64::new(0.0, 0.0); 4]),
            0.0
        );
    }
}
