//! The block-encoding abstraction.
//!
//! A block-encoding of a matrix `A ∈ C^{2^n × 2^n}` is a unitary `U` on
//! `n + a` qubits such that `(⟨0|_a ⊗ I) U (|0⟩_a ⊗ I) = A/α` for some
//! sub-normalisation `α ≥ ‖A‖₂` (Section II-A1 of the paper).  Every concrete
//! construction in this crate (LCU, FABLE, tridiagonal, dilation) implements
//! the [`BlockEncoding`] trait; the QSVT layer consumes the trait, so
//! switching block-encodings never touches the solver.
//!
//! Register convention: the **data** register occupies the low `n` qubits and
//! the **ancillas** the high `a` qubits, so the `A/α` block is the top-left
//! `2^n × 2^n` block of the circuit's unitary.

use num_complex::Complex64;
use qls_linalg::Matrix;
use qls_sim::{circuit_unitary, CMatrix, Circuit, StateVector};

/// A unitary circuit that embeds `A/α` in its `⟨0|_a … |0⟩_a` block.
pub trait BlockEncoding {
    /// Number of data qubits `n` (the encoded matrix is `2^n × 2^n`).
    fn num_data_qubits(&self) -> usize;
    /// Number of ancilla qubits `a`.
    fn num_ancilla_qubits(&self) -> usize;
    /// The sub-normalisation factor `α` with `(⟨0|U|0⟩) = A/α`.
    fn alpha(&self) -> f64;
    /// The encoding circuit on `n + a` qubits (data = low qubits).
    fn circuit(&self) -> &Circuit;

    /// Total number of qubits of the encoding circuit.
    fn total_qubits(&self) -> usize {
        self.num_data_qubits() + self.num_ancilla_qubits()
    }

    /// Human-readable name of the construction (for reports).
    fn method_name(&self) -> &'static str {
        "block-encoding"
    }
}

/// Extension methods shared by all block-encodings (verification and direct
/// application, both implemented through the simulator).
pub trait BlockEncodingExt: BlockEncoding {
    /// Extract the encoded matrix `α · (⟨0|_a ⊗ I) U (|0⟩_a ⊗ I)` by building
    /// the circuit unitary (exponential in the register size — use on small
    /// instances / in tests).
    fn encoded_matrix(&self) -> CMatrix {
        let u = circuit_unitary(self.circuit());
        let dim = 1usize << self.num_data_qubits();
        let mut block = u.block(0, 0, dim, dim);
        block.scale(Complex64::new(self.alpha(), 0.0));
        block
    }

    /// Maximum absolute entry-wise deviation between the encoded matrix and a
    /// reference real matrix.
    fn encoding_error(&self, reference: &Matrix<f64>) -> f64 {
        self.encoded_matrix()
            .max_abs_diff(&CMatrix::from_real(reference))
    }

    /// Apply `A/α` to a data-register vector by running the circuit on
    /// `|0⟩_a ⊗ |ψ⟩` and projecting the ancillas back onto `|0⟩_a`
    /// (no renormalisation — this is the raw block action, which is what the
    /// QSVT algebra needs).  The block action is linear, so the input is used
    /// as-is (no normalise/renormalise round trip).
    ///
    /// One-shot convenience: the circuit is compiled on every call.  Code
    /// that applies the same encoding repeatedly (or to many inputs at once)
    /// should build a [`crate::executor::BlockEncodingExecutor`] instead,
    /// which compiles the forward *and* adjoint circuit exactly once.
    fn apply(&self, data: &[Complex64]) -> Vec<Complex64> {
        embed_run_project(
            self.circuit(),
            self.num_data_qubits(),
            self.total_qubits(),
            data,
        )
    }

    /// Apply the *adjoint* block `A†/α` to a data-register vector (runs the
    /// adjoint circuit).  One-shot convenience, like
    /// [`BlockEncodingExt::apply`]: the adjoint circuit is re-derived and
    /// compiled per call — use a
    /// [`crate::executor::BlockEncodingExecutor`] for repeated application.
    fn apply_adjoint(&self, data: &[Complex64]) -> Vec<Complex64> {
        embed_run_project(
            &self.circuit().adjoint(),
            self.num_data_qubits(),
            self.total_qubits(),
            data,
        )
    }

    /// Success probability of post-selecting the ancillas on `|0⟩` when the
    /// data register holds the normalised vector `ψ`: `‖(A/α)ψ‖²`.
    fn success_probability(&self, data: &[Complex64]) -> f64 {
        let norm2: f64 = data.iter().map(|a| a.norm_sqr()).sum();
        if norm2 == 0.0 {
            return 0.0;
        }
        let out = self.apply(data);
        out.iter().map(|a| a.norm_sqr()).sum::<f64>() / norm2
    }
}

impl<T: BlockEncoding + ?Sized> BlockEncodingExt for T {}

/// Embed a data-register vector on the low qubits of a `total_qubits`-wide
/// register, ancillas in `|0⟩`, **without normalising** (the block action is
/// linear).  Shared by the `Ext` one-shot helpers, the
/// [`crate::executor::BlockEncodingExecutor`] engine and the QSVT layer —
/// the single place that pins the "data low, ancillas high" convention.
pub fn embed_data(data: &[Complex64], total_qubits: usize) -> StateVector {
    assert!(data.len().is_power_of_two(), "data length must be 2^n");
    assert!(data.len() <= 1usize << total_qubits, "register too small");
    let mut amps = vec![Complex64::new(0.0, 0.0); 1usize << total_qubits];
    amps[..data.len()].copy_from_slice(data);
    StateVector::from_amplitudes_unchecked(amps)
}

/// Project the given ancilla qubits back onto `|0⟩` (no renormalisation —
/// the raw block action) and return the low `2^num_data_qubits` data block.
/// Counterpart of [`embed_data`].
pub fn project_data(
    state: &mut StateVector,
    num_data_qubits: usize,
    ancillas: &[usize],
) -> Vec<Complex64> {
    state.project_zeros(ancillas);
    state.amplitudes()[..1usize << num_data_qubits].to_vec()
}

/// Shared body of [`BlockEncodingExt::apply`] / `apply_adjoint`: embed the
/// data on the low qubits (ancillas `|0⟩`), run the circuit, project the
/// ancillas back onto `|0⟩` and return the data block.  Linear in `data`.
fn embed_run_project(
    circuit: &Circuit,
    num_data_qubits: usize,
    total_qubits: usize,
    data: &[Complex64],
) -> Vec<Complex64> {
    assert_eq!(
        data.len(),
        1usize << num_data_qubits,
        "data vector dimension mismatch"
    );
    let mut sv = embed_data(data, total_qubits);
    sv.apply_circuit(circuit);
    project_data(
        &mut sv,
        num_data_qubits,
        &(num_data_qubits..total_qubits).collect::<Vec<_>>(),
    )
}

/// Check that a circuit really is a block-encoding of `reference` with the
/// claimed `alpha`, returning the maximum entry-wise error (test helper shared
/// by the concrete constructions).
pub fn verify_block_encoding<B: BlockEncoding>(be: &B, reference: &Matrix<f64>) -> f64 {
    assert!(
        circuit_unitary(be.circuit()).is_unitary(1e-10),
        "block-encoding circuit is not unitary"
    );
    be.encoding_error(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dilation::DilationBlockEncoding;
    use qls_linalg::Matrix;

    #[test]
    fn ext_apply_matches_encoded_matrix() {
        let a = Matrix::from_f64_slice(2, 2, &[0.4, 0.1, -0.2, 0.3]);
        let be = DilationBlockEncoding::new(&a, 1.0);
        let encoded = be.encoded_matrix();
        let v = vec![Complex64::new(0.6, 0.0), Complex64::new(-0.8, 0.0)];
        let via_apply = be.apply(&v);
        let via_matrix = encoded.matvec(&v);
        for (x, y) in via_apply.iter().zip(&via_matrix) {
            assert!((x - y / be.alpha()).norm() < 1e-12);
        }
    }

    #[test]
    fn success_probability_matches_norm_reduction() {
        let a = Matrix::from_f64_slice(2, 2, &[0.5, 0.0, 0.0, 0.1]);
        let be = DilationBlockEncoding::new(&a, 1.0);
        let v = vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, 0.0)];
        // (A/alpha) e_0 = 0.5 e_0, success probability 0.25.
        assert!((be.success_probability(&v) - 0.25).abs() < 1e-12);
    }
}
