//! Exact unitary-dilation block-encoding.
//!
//! For any matrix `A` with `‖A‖₂ ≤ α` the Halmos dilation
//!
//! ```text
//!       ⎡  A/α              √(I − (A/α)(A/α)†) ⎤
//!  U =  ⎢                                      ⎥
//!       ⎣ √(I − (A/α)†(A/α))        −(A/α)†    ⎦
//! ```
//!
//! is unitary and block-encodes `A/α` with a **single ancilla qubit**.  The
//! square roots are computed classically from the SVD of `A`, and the whole
//! `2N × 2N` unitary enters the circuit as one multi-qubit gate.
//!
//! This is the *emulation-mode* block-encoding of the reproduction (see the
//! substitution table in DESIGN.md): it is numerically exact and cheap to
//! simulate, which makes it the right substrate for the convergence
//! experiments (Figs. 3–5) where the paper itself treats the block-encoding as
//! a black box and counts only the number of calls to it.  Gate-level resource
//! estimates use the structured encodings (LCU / FABLE / tridiagonal) instead.

use crate::block_encoding::BlockEncoding;
use num_complex::Complex64;
use qls_linalg::{Matrix, Svd};
use qls_sim::{CMatrix, Circuit, Gate};

/// Exact one-ancilla block-encoding built from the SVD of `A`.
#[derive(Debug, Clone)]
pub struct DilationBlockEncoding {
    circuit: Circuit,
    num_data_qubits: usize,
    alpha: f64,
}

impl DilationBlockEncoding {
    /// Build the dilation of `A/α`.  `alpha` must satisfy `alpha ≥ ‖A‖₂`;
    /// passing `alpha = 0.0` selects `α = max(1, ‖A‖₂)` automatically.
    pub fn new(a: &Matrix<f64>, alpha: f64) -> Self {
        assert!(a.is_square(), "dilation needs a square matrix");
        let dim = a.nrows();
        assert!(dim.is_power_of_two(), "matrix dimension must be 2^n");
        let n = dim.trailing_zeros() as usize;

        let svd = Svd::new(a);
        let norm = svd.norm2();
        let alpha = if alpha <= 0.0 {
            norm.max(1.0)
        } else {
            assert!(
                alpha >= norm - 1e-12,
                "alpha = {alpha} is below the spectral norm {norm}"
            );
            alpha
        };

        // Contraction C = A/alpha = U_s (Σ/alpha) V_sᵀ.
        // √(I − C C†) = U_s √(I − (Σ/α)²) U_sᵀ, √(I − C†C) = V_s √(…) V_sᵀ.
        let scaled_sigma: Vec<f64> = svd.sigma.iter().map(|&s| s / alpha).collect();
        let sqrt_residual: Vec<f64> = scaled_sigma
            .iter()
            .map(|&s| (1.0 - s * s).max(0.0).sqrt())
            .collect();

        let u_s = &svd.u;
        let v_s = &svd.v;
        let with_diag = |q: &Matrix<f64>, d: &[f64]| -> Matrix<f64> {
            // q * diag(d) * qᵀ
            let mut qd = q.clone();
            for j in 0..dim {
                for i in 0..dim {
                    qd[(i, j)] *= d[j];
                }
            }
            qd.matmul(&q.transpose())
        };
        let c = {
            // U_s diag(σ/α) V_sᵀ
            let mut us = u_s.clone();
            for j in 0..dim {
                for i in 0..dim {
                    us[(i, j)] *= scaled_sigma[j];
                }
            }
            us.matmul(&v_s.transpose())
        };
        let top_right = with_diag(u_s, &sqrt_residual);
        let bottom_left = with_diag(v_s, &sqrt_residual);

        // Assemble the 2N x 2N unitary.  Ancilla = the highest qubit, so the
        // top-left block (ancilla 0 -> 0) is C.
        let full = CMatrix::from_fn(2 * dim, 2 * dim, |i, j| {
            let (bi, ii) = (i / dim, i % dim);
            let (bj, jj) = (j / dim, j % dim);
            let v = match (bi, bj) {
                (0, 0) => c[(ii, jj)],
                (0, 1) => top_right[(ii, jj)],
                (1, 0) => bottom_left[(ii, jj)],
                _ => -c[(jj, ii)], // −C† (real matrix: transpose)
            };
            Complex64::new(v, 0.0)
        });
        debug_assert!(full.is_unitary(1e-8), "dilation failed to be unitary");

        let mut circuit = Circuit::new(n + 1);
        let targets: Vec<usize> = (0..=n).collect();
        circuit.gate(Gate::Unitary(full), &targets);

        DilationBlockEncoding {
            circuit,
            num_data_qubits: n,
            alpha,
        }
    }

    /// Build a block-encoding of the **adjoint** `A†/α` (what the QSVT-based
    /// linear solver actually consumes, per Section II-A4 of the paper).
    pub fn of_adjoint(a: &Matrix<f64>, alpha: f64) -> Self {
        Self::new(&a.transpose(), alpha)
    }
}

impl BlockEncoding for DilationBlockEncoding {
    fn num_data_qubits(&self) -> usize {
        self.num_data_qubits
    }
    fn num_ancilla_qubits(&self) -> usize {
        1
    }
    fn alpha(&self) -> f64 {
        self.alpha
    }
    fn circuit(&self) -> &Circuit {
        &self.circuit
    }
    fn method_name(&self) -> &'static str {
        "unitary dilation (exact, emulation mode)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_encoding::{verify_block_encoding, BlockEncodingExt};
    use qls_linalg::generate::{
        random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn encodes_diagonal_matrix_exactly() {
        let a = Matrix::from_diag(&[0.9, -0.5]);
        let be = DilationBlockEncoding::new(&a, 1.0);
        assert_eq!(be.num_ancilla_qubits(), 1);
        assert_eq!(be.alpha(), 1.0);
        assert!(verify_block_encoding(&be, &a) < 1e-12);
    }

    #[test]
    fn encodes_random_matrix_with_automatic_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let a = random_matrix_with_cond(
            8,
            20.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let be = DilationBlockEncoding::new(&a, 0.0);
        assert!(be.alpha() >= 1.0);
        assert!(verify_block_encoding(&be, &a) < 1e-10);
    }

    #[test]
    fn adjoint_encoding_encodes_transpose() {
        let a = Matrix::from_f64_slice(2, 2, &[0.1, 0.7, -0.3, 0.2]);
        let be = DilationBlockEncoding::of_adjoint(&a, 1.0);
        assert!(verify_block_encoding(&be, &a.transpose()) < 1e-12);
    }

    #[test]
    fn larger_alpha_shrinks_encoded_block() {
        let a = Matrix::from_diag(&[0.5, 0.25]);
        let be2 = DilationBlockEncoding::new(&a, 2.0);
        let block = be2.encoded_matrix();
        // encoded_matrix multiplies back by alpha, so it must equal A again.
        assert!(block.max_abs_diff(&CMatrix::from_real(&a)) < 1e-12);
        // And the raw block is A/2.
        let raw = qls_sim::circuit_unitary(be2.circuit()).block(0, 0, 2, 2);
        assert!((raw[(0, 0)].re - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn alpha_below_norm_rejected() {
        let a = Matrix::from_diag(&[0.9, 0.1]);
        let _ = DilationBlockEncoding::new(&a, 0.5);
    }

    #[test]
    fn apply_computes_scaled_matvec() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let a = random_matrix_with_cond(
            4,
            5.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let be = DilationBlockEncoding::new(&a, 2.0);
        let v: Vec<Complex64> = (0..4)
            .map(|i| Complex64::new(0.2 * i as f64 + 0.1, 0.0))
            .collect();
        let out = be.apply(&v);
        // Expected: (A/2) v.
        let av = a.matvec(&qls_linalg::Vector::from_f64_slice(
            &v.iter().map(|c| c.re).collect::<Vec<_>>(),
        ));
        for i in 0..4 {
            assert!((out[i].re - av[i] / 2.0).abs() < 1e-12);
            assert!(out[i].im.abs() < 1e-12);
        }
    }
}
