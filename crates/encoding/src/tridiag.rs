//! Block-encoding of the 1-D Poisson (tridiagonal) matrix of Eq. (7).
//!
//! Section III-C4 of the paper solves the finite-difference Poisson equation
//! and uses the analytic block-encoding of Ty et al. (Ref. [37], the circuit
//! of the paper's Fig. 2), whose cost is `O(n)` primitive gates at
//! double-logarithmic depth and which "requires no classical cost" because the
//! circuit is known in closed form.
//!
//! **Substitution note (see DESIGN.md):** the concrete circuit simulated here
//! is built from the generic LCU machinery applied to the (structured, 5-term)
//! Pauli-like decomposition of the tridiagonal matrix; the *resource model*
//! exposed by [`TridiagBlockEncoding::analytic_resources`] follows the
//! published counts of Ref. [37] so the Table-II reproduction reports the
//! costs the paper's use case assumes.  Both describe the same encoded
//! operator, `tridiag(-1, 2, -1)/α`; only the gate-level realisation differs.

use crate::block_encoding::BlockEncoding;
use crate::lcu::LcuBlockEncoding;
use qls_linalg::{poisson_1d, Matrix, TridiagonalMatrix};
use qls_sim::Circuit;
use serde::Serialize;

/// Analytic gate-count model of the Fig. 2 / Ref. [37] tridiagonal
/// block-encoding.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TridiagAnalyticResources {
    /// Number of data qubits n.
    pub data_qubits: usize,
    /// Ancilla qubits used by the published circuit.
    pub ancilla_qubits: usize,
    /// Primitive (CNOT + single-qubit) gate count, O(n).
    pub primitive_gates: usize,
    /// Circuit depth, O(log²(n)) ("double-logarithmic" in the matrix size N).
    pub depth: usize,
    /// T-gate estimate for the fault-tolerant cost rows of Table II.
    pub t_count: usize,
}

/// Block-encoding of the `N = 2^n` Poisson matrix `tridiag(-1, 2, -1)`
/// (unscaled stencil; the `1/h²` factor of Eq. (7) is a scalar the classical
/// side tracks separately since block-encodings are insensitive to positive
/// rescaling of the right-hand side and solution).
#[derive(Debug, Clone)]
pub struct TridiagBlockEncoding {
    inner: LcuBlockEncoding,
    data_qubits: usize,
    matrix: TridiagonalMatrix<f64>,
}

impl TridiagBlockEncoding {
    /// Build the encoding for `n` data qubits (matrix order `N = 2^n`).
    pub fn new(n: usize) -> Self {
        // The Poisson matrix is symmetric, so A† = A and the same encoding
        // serves the QSVT of A†.
        Self::from_tridiagonal(&poisson_1d::<f64>(1 << n, false))
    }

    /// Build the encoding of an arbitrary tridiagonal matrix **directly from
    /// its three diagonals** — no dense round-trip: the Pauli decomposition
    /// walks the `n + 1` occupied XOR diagonals only, so the classical
    /// preprocessing is `O(4^n)` instead of the dense `O(8^n)`.  The order
    /// must be a power of two (`N = 2^n`, `n ≥ 1`).
    ///
    /// The encoded operator is `T` itself; for a nonsymmetric `T` inside a
    /// QSVT-of-`A†` pipeline, pass the transposed diagonals.
    pub fn from_tridiagonal(t: &TridiagonalMatrix<f64>) -> Self {
        let order = t.order();
        assert!(
            order >= 2 && order.is_power_of_two(),
            "tridiagonal order must be 2^n with n >= 1"
        );
        let n = order.trailing_zeros() as usize;
        let inner = LcuBlockEncoding::of_tridiagonal(t, 1e-14);
        TridiagBlockEncoding {
            inner,
            data_qubits: n,
            matrix: t.clone(),
        }
    }

    /// The tridiagonal matrix being encoded.
    pub fn tridiagonal(&self) -> &TridiagonalMatrix<f64> {
        &self.matrix
    }

    /// The dense matrix being encoded (for verification and the classical
    /// reference solve).
    pub fn dense_matrix(&self) -> Matrix<f64> {
        self.matrix.to_dense()
    }

    /// The analytic resource counts of the published circuit (Ref. [37]),
    /// used by the Table-II cost model.
    pub fn analytic_resources(&self) -> TridiagAnalyticResources {
        let n = self.data_qubits;
        // Ref. [37]: O(n) multi-controlled gates realised with conditionally
        // clean ancillae ([24]) → ≈ 16n T per layer, 3 layers (shift, shift†,
        // diagonal), depth O(log² n).
        let primitive = 30 * n + 20;
        let depth = {
            let ln = ((n.max(2)) as f64).log2().ceil() as usize;
            (ln * ln).max(1) * 8
        };
        TridiagAnalyticResources {
            data_qubits: n,
            ancilla_qubits: 2,
            primitive_gates: primitive,
            depth,
            t_count: 48 * n + 28,
        }
    }
}

impl BlockEncoding for TridiagBlockEncoding {
    fn num_data_qubits(&self) -> usize {
        self.inner.num_data_qubits()
    }
    fn num_ancilla_qubits(&self) -> usize {
        self.inner.num_ancilla_qubits()
    }
    fn alpha(&self) -> f64 {
        self.inner.alpha()
    }
    fn circuit(&self) -> &Circuit {
        self.inner.circuit()
    }
    fn method_name(&self) -> &'static str {
        "tridiagonal (Poisson) block-encoding"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_encoding::verify_block_encoding;

    #[test]
    fn encodes_poisson_matrix_for_two_and_three_qubits() {
        for n in [2usize, 3] {
            let be = TridiagBlockEncoding::new(n);
            let reference = be.dense_matrix();
            assert_eq!(be.num_data_qubits(), n);
            let err = verify_block_encoding(&be, &reference);
            assert!(err < 1e-9, "n = {n}: encoding error {err}");
        }
    }

    #[test]
    fn alpha_at_least_spectral_norm() {
        let be = TridiagBlockEncoding::new(3);
        let norm = qls_linalg::Svd::new(&be.dense_matrix()).norm2();
        assert!(be.alpha() >= norm - 1e-10);
        // The spectrum of tridiag(-1,2,-1) lies in (0,4).
        assert!(norm < 4.0);
    }

    #[test]
    fn analytic_resources_scale_linearly() {
        let r3 = TridiagBlockEncoding::new(3).analytic_resources();
        let r6 = TridiagBlockEncoding::new(6).analytic_resources();
        assert!(r6.primitive_gates > r3.primitive_gates);
        assert!(r6.t_count > r3.t_count);
        // O(n): doubling n roughly doubles the primitive gate count.
        let ratio = r6.primitive_gates as f64 / r3.primitive_gates as f64;
        assert!(ratio < 3.0);
        // Depth grows much slower than the gate count (polylog).
        assert!(r6.depth < r6.primitive_gates);
    }

    #[test]
    fn general_tridiagonal_constructor_encodes_without_densifying() {
        // A nonsymmetric, non-Toeplitz tridiagonal through the structured
        // constructor: the encoded block must match the dense reference.
        let t = qls_linalg::TridiagonalMatrix::new(
            vec![0.4, -0.9, 1.1],
            vec![1.5, -0.5, 2.0, 0.75],
            vec![-0.3, 0.8, -1.2],
        );
        let be = TridiagBlockEncoding::from_tridiagonal(&t);
        assert_eq!(be.num_data_qubits(), 2);
        assert_eq!(be.tridiagonal(), &t);
        let err = verify_block_encoding(&be, &t.to_dense());
        assert!(err < 1e-9, "encoding error {err}");
    }

    #[test]
    fn structured_poisson_constructor_matches_new() {
        // `new(n)` now routes through the diagonal-driven decomposition;
        // the encoded operator must still be the Poisson matrix.
        let from_t =
            TridiagBlockEncoding::from_tridiagonal(&qls_linalg::poisson_1d::<f64>(8, false));
        let via_new = TridiagBlockEncoding::new(3);
        assert_eq!(from_t.alpha(), via_new.alpha());
        assert_eq!(
            from_t.circuit().gate_count(),
            via_new.circuit().gate_count()
        );
    }

    #[test]
    fn symmetric_matrix_means_adjoint_is_same() {
        let be = TridiagBlockEncoding::new(2);
        let dense = be.dense_matrix();
        assert!(dense.is_symmetric(1e-12));
    }
}
